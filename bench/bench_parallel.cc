// Copyright 2026 The ARSP Authors.
//
// Intra-query parallel executor bench: serial vs 8-worker solves of the
// same query, exported as BENCH_parallel.json for the CI perf gate.
//
//   Parallel/NBA/SerialVs8    — the Fig. 6 NBA-like configuration (d = 4,
//     c = 3), the solver-hot-path workload bench_kernels gates.
//   Parallel/Scale/SerialVs8  — bench_scale's synthetic dataset (~100K
//     instances at ARSP_BENCH_SCALE=1; =100 is the paper-scale 10M run).
//
// Each entry runs both modes back to back and exports:
//   * serial_ns / parallel_ns — self-measured timings (bench_diff's
//     "_ns" gate: calibration-normalized, regressions fail, improvements
//     pass — so a 1-core-measured parallel_ns baseline stays green on
//     machines with real parallelism);
//   * exact counters (arsp_size, dominance_tests, tasks_spawned,
//     parallel_workers) — deterministic by the merge contract, gated for
//     equality; the bench itself also CHECKs the parallel probability
//     vector is memcmp-identical to the serial one;
//   * steals_info — scheduling-dependent steal count, exported ungated.
//
// The core budget is pinned to 8 (SetCoreBudgetTotalForTesting) so the
// executor always gets 8 workers regardless of the host's core count —
// counters stay machine-independent, and on a small CI box the parallel
// timing is an honest oversubscribed run (see ARCHITECTURE.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/task_arena.h"
#include "src/core/solver.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {
namespace {

using bench_util::MakeWrRegion;
using bench_util::MustCreate;
using bench_util::MustSolve;
using bench_util::ScaledM;

constexpr int kWorkers = 8;

// Serially dependent xorshift64 chain — the same calibration entry every
// gated export carries (bench_diff normalizes ns/op ratios by it).
void BM_Calibrate_Xorshift64(benchmark::State& state) {
  uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    for (int i = 0; i < (1 << 16); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Calibrate_Xorshift64);

// The Fig. 6 NBA-like configuration (bench_kernels' hot-path workload).
const UncertainDataset& NbaDataset() {
  static const auto* dataset =
      new UncertainDataset(GenerateNbaLike(ScaledM(250), 4, 1003, nullptr));
  return *dataset;
}

// bench_scale's dataset: ~100K instances at scale 1, 10M at scale 100.
const UncertainDataset& ScaleDataset() {
  static const auto* dataset = new UncertainDataset(bench_util::MakeSynthetic(
      Distribution::kIndependent, ScaledM(2000), 50, 3, 0.2, 0.0));
  return *dataset;
}

double NsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One serial + one kWorkers solve per iteration over a prebuilt context;
// exports the per-mode minimum (the exporter's noise-robust collapse) and
// CHECKs bit-identity every iteration.
void RunSerialVsParallel(benchmark::State& state,
                         const UncertainDataset& dataset, int c) {
  const PreferenceRegion region = MakeWrRegion(dataset.dim(), c);
  ExecutionContext context(dataset, region);
  auto serial_solver = MustCreate("kdtt+");
  auto parallel_solver = MustCreate(
      "kdtt+", SolverOptions().SetInt("parallelism", kWorkers));
  double serial_ns = std::numeric_limits<double>::infinity();
  double parallel_ns = std::numeric_limits<double>::infinity();
  ArspResult serial_result, parallel_result;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    serial_result = MustSolve(*serial_solver, context);
    const auto t1 = std::chrono::steady_clock::now();
    parallel_result = MustSolve(*parallel_solver, context);
    serial_ns = std::min(
        serial_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
    parallel_ns = std::min(parallel_ns, NsSince(t1));
    // The deterministic-merge contract, enforced in the loop: the parallel
    // probability vector is bitwise the serial one.
    ARSP_CHECK_MSG(
        serial_result.instance_probs.size() ==
                parallel_result.instance_probs.size() &&
            std::memcmp(serial_result.instance_probs.data(),
                        parallel_result.instance_probs.data(),
                        serial_result.instance_probs.size() *
                            sizeof(double)) == 0,
        "parallel result diverged from serial");
    benchmark::DoNotOptimize(parallel_result.instance_probs.data());
  }
  state.counters["n"] = static_cast<double>(dataset.num_instances());
  state.counters["m"] = static_cast<double>(dataset.num_objects());
  state.counters["arsp_size"] =
      static_cast<double>(CountNonZero(parallel_result));
  state.counters["dominance_tests"] =
      static_cast<double>(serial_result.dominance_tests);
  state.counters["tasks_spawned"] =
      static_cast<double>(parallel_result.tasks_spawned);
  state.counters["parallel_workers"] =
      static_cast<double>(parallel_result.parallel_workers);
  // Scheduling-dependent; the "_info" suffix exempts it from the gate.
  state.counters["steals_info"] =
      static_cast<double>(parallel_result.tasks_stolen);
  state.counters["serial_ns"] = serial_ns;
  state.counters["parallel_ns"] = parallel_ns;
  state.counters["speedup_info"] =
      parallel_ns > 0.0 ? serial_ns / parallel_ns : 0.0;
}

void BM_Parallel_Nba(benchmark::State& state) {
  RunSerialVsParallel(state, NbaDataset(), 3);
}
BENCHMARK(BM_Parallel_Nba)->Name("Parallel/NBA/SerialVs8")
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_Scale(benchmark::State& state) {
  RunSerialVsParallel(state, ScaleDataset(), 2);
}
BENCHMARK(BM_Parallel_Scale)->Name("Parallel/Scale/SerialVs8")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  // Pin the budget so the executor always gets kWorkers workers: counters
  // stay machine-independent and the parallel timing is honest even when
  // the host has fewer cores (oversubscribed, never silently serial).
  arsp::internal::SetCoreBudgetTotalForTesting(arsp::kWorkers);
  return arsp::bench_util::BenchMain(argc, argv);
}
