// Copyright 2026 The ARSP Authors.
//
// Fig. 5 (r)–(t): the same ARSP algorithms under IM (interactively learned)
// linear constraints on IND data, sweeping m, d and c. The key difference
// from WR is that the preference region's vertex count |V| grows with c
// (reported as the `vertices` counter), which drives QDTT+'s dimensional
// blow-up — the paper's explanation for its failure at d ≥ 5 / large c.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace arsp {
namespace {

using bench_util::AlgoCaps;
using bench_util::AlgoName;
using bench_util::kLinearAlgos;
using bench_util::MakeImRegion;
using bench_util::MakeSynthetic;
using bench_util::RunAlgo;
using bench_util::ScaledM;

void RunCase(benchmark::State& state, int m, int cnt, int dim, int c,
             const std::string& algo) {
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kIndependent, m, cnt, dim, 0.2, 0.0);
  const PreferenceRegion region = MakeImRegion(dim, c);
  // Quadrant-style fan-out is exponential in the vertex count (the
  // registry's cost flag); the paper's QDTT+ curve similarly disappears
  // once IM vertex counts explode.
  if ((AlgoCaps(algo) & kCapExponentialInVertices) != 0 &&
      region.num_vertices() > 24) {
    state.SkipWithError("quadrant fan-out infeasible at this vertex count");
    return;
  }
  int arsp_size = 0;
  for (auto _ : state) {
    const ArspResult result = RunAlgo(algo, dataset, region);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] = dataset.num_instances();
  state.counters["vertices"] = region.num_vertices();
  state.counters["arsp_size"] = arsp_size;
}

void Register(const std::string& name, int m, int cnt, int dim, int c,
              const std::string& algo) {
  benchmark::RegisterBenchmark(
      (name + "/" + AlgoName(algo)).c_str(),
      [=](benchmark::State& state) { RunCase(state, m, cnt, dim, c, algo); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

void RegisterAll() {
  // ---- Fig. 5 (r): vary m, d=4, c=3.
  for (int base_m : {128, 256, 512, 1024}) {
    const int m = ScaledM(base_m);
    for (const char* algo : kLinearAlgos) {
      if ((AlgoCaps(algo) & kCapQuadraticTime) != 0 && m * 20 / 2 > 16000) {
        continue;
      }
      Register("Fig5r_IM_vary_m/m=" + std::to_string(m), m, 20, 4, 3, algo);
    }
  }
  // ---- Fig. 5 (s): vary d, c = d-1.
  for (int d : {2, 3, 4, 5, 6}) {
    for (const char* algo : kLinearAlgos) {
      Register("Fig5s_IM_vary_d/d=" + std::to_string(d), ScaledM(256), 10, d,
               d - 1, algo);
    }
  }
  // ---- Fig. 5 (t): vary c, d=4.
  for (int c : {2, 3, 4, 5, 6, 7}) {
    for (const char* algo : kLinearAlgos) {
      Register("Fig5t_IM_vary_c/c=" + std::to_string(c), ScaledM(256), 10, 4,
               c, algo);
    }
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterAll();
  return arsp::bench_util::BenchMain(argc, argv);
}
