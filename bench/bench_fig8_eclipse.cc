// Copyright 2026 The ARSP Authors.
//
// Fig. 8: eclipse query processing on certain IND datasets — DUAL-S versus
// QUAD [2] (the quadtree intersection index, rebuilt from the paper's
// description; index construction is preprocessing and excluded from query
// time, as in the original evaluation). A plain O(s²) pairwise resolver is
// included as a third reference series.
//   (a) vary n at d = 3, q = [0.36, 2.75]
//   (b) vary d at n = 2^14
//   (c) vary the ratio range q at n = 2^14, d = 3
// Counters report skyline / eclipse sizes and QUAD's index statistics.
// The paper's shape: DUAL-S wins, the gap grows with d, and QUAD is far
// more sensitive to the ratio range q.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/certain_rskyline.h"
#include "src/eclipse/eclipse.h"
#include "src/eclipse/quad_index.h"

namespace arsp {
namespace {

using bench_util::Scale;

enum class EclipseAlgo { kQuad, kDualS, kPairwise };

const char* Name(EclipseAlgo algo) {
  switch (algo) {
    case EclipseAlgo::kQuad:
      return "QUAD";
    case EclipseAlgo::kDualS:
      return "DUAL-S";
    case EclipseAlgo::kPairwise:
      return "PAIRWISE";
  }
  return "?";
}

std::vector<Point> MakePoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.Uniform01();
    points.push_back(std::move(p));
  }
  return points;
}

WeightRatioConstraints MakeQ(int dim, double lo, double hi) {
  std::vector<std::pair<double, double>> ranges(
      static_cast<size_t>(dim - 1), {lo, hi});
  return WeightRatioConstraints::Create(std::move(ranges)).value();
}

// Per-dataset prepared state: all three contestants build their structures
// once (the paper excludes preprocessing from the Fig. 8 query times); only
// Query calls are timed.
struct Prepared {
  std::vector<Point> points;
  std::vector<int> skyline;
  std::unique_ptr<QuadEclipseIndex> quad;
  std::unique_ptr<DualSEclipseIndex> dual_s;
};

const Prepared& CachedPrepared(int n, int dim) {
  static std::map<std::pair<int, int>, std::unique_ptr<Prepared>> cache;
  auto key = std::make_pair(n, dim);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto prepared = std::make_unique<Prepared>();
    prepared->points =
        MakePoints(n, dim, 0xec1157u + static_cast<uint64_t>(dim));
    prepared->skyline = ComputeSkyline(prepared->points);
    prepared->quad = std::make_unique<QuadEclipseIndex>(prepared->points);
    prepared->dual_s = std::make_unique<DualSEclipseIndex>(prepared->points);
    it = cache.emplace(key, std::move(prepared)).first;
  }
  return *it->second;
}

void RunCase(benchmark::State& state, int n, int dim, double lo, double hi,
             EclipseAlgo algo) {
  const Prepared& prepared = CachedPrepared(n, dim);
  const WeightRatioConstraints wr = MakeQ(dim, lo, hi);
  size_t eclipse_size = 0;
  switch (algo) {
    case EclipseAlgo::kQuad:
      for (auto _ : state) {
        eclipse_size = prepared.quad->Query(wr).size();
        benchmark::DoNotOptimize(eclipse_size);
      }
      state.counters["quad_nodes"] = prepared.quad->num_nodes();
      state.counters["quad_height"] = prepared.quad->height();
      state.counters["hyperplanes"] = prepared.quad->num_hyperplanes();
      break;
    case EclipseAlgo::kDualS:
      for (auto _ : state) {
        eclipse_size = prepared.dual_s->Query(wr).size();
        benchmark::DoNotOptimize(eclipse_size);
      }
      break;
    case EclipseAlgo::kPairwise:
      for (auto _ : state) {
        eclipse_size =
            ResolveEclipsePairwise(prepared.points, prepared.skyline, wr)
                .size();
        benchmark::DoNotOptimize(eclipse_size);
      }
      break;
  }
  state.counters["n"] = n;
  state.counters["skyline"] = prepared.skyline.size();
  state.counters["eclipse"] = eclipse_size;
}

void Register(const std::string& name, int n, int dim, double lo, double hi) {
  for (EclipseAlgo algo :
       {EclipseAlgo::kQuad, EclipseAlgo::kDualS, EclipseAlgo::kPairwise}) {
    benchmark::RegisterBenchmark(
        (name + "/" + Name(algo)).c_str(),
        [=](benchmark::State& state) {
          RunCase(state, n, dim, lo, hi, algo);
        })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

void RegisterAll() {
  const int base = static_cast<int>((1 << 14) * Scale());
  // ---- Fig. 8 (a): vary n, d=3.
  for (int shift : {-4, -2, 0, 2, 4}) {
    const int n = std::max(256, shift >= 0 ? base << shift : base >> -shift);
    Register("Fig8a_vary_n/n=" + std::to_string(n), n, 3, 0.36, 2.75);
  }
  // ---- Fig. 8 (b): vary d at n = base.
  for (int d : {2, 3, 4, 5, 6}) {
    Register("Fig8b_vary_d/d=" + std::to_string(d), std::max(256, base), d,
             0.36, 2.75);
  }
  // ---- Fig. 8 (c): vary q at n = base, d=3 (the paper's four ranges).
  const std::vector<std::pair<double, double>> kRanges = {
      {0.84, 1.19}, {0.58, 1.73}, {0.36, 2.75}, {0.18, 5.67}};
  for (size_t i = 0; i < kRanges.size(); ++i) {
    Register("Fig8c_vary_q/q=" + std::to_string(i + 1), std::max(256, base),
             3, kRanges[i].first, kRanges[i].second);
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterAll();
  return arsp::bench_util::BenchMain(argc, argv);
}
