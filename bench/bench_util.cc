// Copyright 2026 The ARSP Authors.

#include "bench/bench_util.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/prefs/constraint_generators.h"
#include "src/simd/kernels.h"

namespace arsp {
namespace bench_util {

std::unique_ptr<ArspSolver> MustCreate(const std::string& algo,
                                       const SolverOptions& options) {
  StatusOr<std::unique_ptr<ArspSolver>> solver =
      SolverRegistry::Create(algo, options);
  ARSP_CHECK_MSG(solver.ok(), "%s", solver.status().ToString().c_str());
  return std::move(solver).value();
}

ArspResult MustSolve(ArspSolver& solver, ExecutionContext& context) {
  StatusOr<ArspResult> result = solver.Solve(context);
  ARSP_CHECK_MSG(result.ok(), "%s", result.status().ToString().c_str());
  return std::move(result).value();
}

std::string AlgoName(const std::string& algo) {
  return MustCreate(algo)->display_name();
}

uint32_t AlgoCaps(const std::string& algo) {
  // Memoized: RunAlgo asks for caps inside timed benchmark loops.
  static auto* cache = new std::map<std::string, uint32_t>();
  const auto it = cache->find(algo);
  if (it != cache->end()) return it->second;
  const uint32_t caps = MustCreate(algo)->capabilities();
  (*cache)[algo] = caps;
  return caps;
}

ArspEngine& SharedEngine() {
  static auto* engine = new ArspEngine();
  return *engine;
}

ArspResult RunAlgo(const std::string& algo, const UncertainDataset& dataset,
                   const PreferenceRegion& region,
                   const WeightRatioConstraints* wr) {
  ArspEngine& engine = SharedEngine();
  // The caller owns the dataset for the duration of the call; register it
  // without copying and drop it before returning.
  const DatasetHandle handle = engine.AddDataset(
      std::shared_ptr<const UncertainDataset>(&dataset,
                                              [](const UncertainDataset*) {}));
  QueryRequest request;
  request.dataset = handle;
  if (AlgoCaps(algo) & kCapRequiresWeightRatios) {
    ARSP_CHECK_MSG(wr != nullptr, "%s requires weight ratio constraints",
                   algo.c_str());
    request.constraints = ConstraintSpec::WeightRatios(*wr);
  } else {
    request.constraints = ConstraintSpec::Region(region);
  }
  request.solver = algo;
  // Benchmarks measure repeated cold solves: no result cache, no pooled
  // preprocessing.
  request.use_cache = false;
  request.pool_context = false;
  StatusOr<QueryResponse> response = engine.Solve(request);
  ARSP_CHECK_MSG(response.ok(), "%s", response.status().ToString().c_str());
  ARSP_CHECK(engine.DropDataset(handle).ok());
  // Moves instead of copying (this call holds the only reference since
  // caching is off) — the timed benchmark loop never pays an O(n) copy.
  return ArspEngine::TakeResult(std::move(*response));
}

DatasetHandle SharedHandle(const UncertainDataset& full) {
  // Benchmarks pass function-local statics, so the address identifies the
  // dataset for the process lifetime; handles are never dropped.
  static auto* handles = new std::map<const UncertainDataset*, DatasetHandle>();
  const auto it = handles->find(&full);
  if (it != handles->end()) return it->second;
  const DatasetHandle handle = SharedEngine().AddDataset(
      std::shared_ptr<const UncertainDataset>(&full,
                                              [](const UncertainDataset*) {}));
  return handles->emplace(&full, handle).first->second;
}

DatasetHandle SharedPrefixHandle(const UncertainDataset& full, int count) {
  static auto* views =
      new std::map<std::pair<const UncertainDataset*, int>, DatasetHandle>();
  const auto key = std::make_pair(&full, count);
  const auto it = views->find(key);
  if (it != views->end()) return it->second;
  StatusOr<DatasetHandle> handle =
      SharedEngine().AddView(SharedHandle(full), ViewSpec::Prefix(count));
  ARSP_CHECK_MSG(handle.ok(), "%s", handle.status().ToString().c_str());
  return views->emplace(key, *handle).first->second;
}

ArspResult RunAlgoOnHandle(const std::string& algo, DatasetHandle handle,
                           const PreferenceRegion& region,
                           const WeightRatioConstraints* wr) {
  ArspEngine& engine = SharedEngine();
  QueryRequest request;
  request.dataset = handle;
  if (AlgoCaps(algo) & kCapRequiresWeightRatios) {
    ARSP_CHECK_MSG(wr != nullptr, "%s requires weight ratio constraints",
                   algo.c_str());
    request.constraints = ConstraintSpec::WeightRatios(*wr);
  } else {
    request.constraints = ConstraintSpec::Region(region);
  }
  request.solver = algo;
  // The warm view path: pooled contexts (views derive from the base's, so
  // a sweep shares one set of full indexes) but no result cache — every
  // iteration still runs the solver.
  request.use_cache = false;
  request.pool_context = true;
  StatusOr<QueryResponse> response = engine.Solve(request);
  ARSP_CHECK_MSG(response.ok(), "%s", response.status().ToString().c_str());
  return ArspEngine::TakeResult(std::move(*response));
}

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("ARSP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.01 ? v : 0.01;
  }();
  return scale;
}

int ScaledM(int base) {
  return std::max(16, static_cast<int>(base * Scale()));
}

UncertainDataset MakeSynthetic(Distribution dist, int num_objects, int cnt,
                               int dim, double l, double phi) {
  SyntheticConfig config;
  config.num_objects = num_objects;
  config.max_instances = cnt;
  config.dim = dim;
  config.region_length = l;
  config.phi = phi;
  config.distribution = dist;
  // Seed depends on the workload shape so different sweep points use
  // different (but reproducible) data.
  config.seed = 0x9e3779b9u ^ (static_cast<uint64_t>(num_objects) << 20) ^
                (static_cast<uint64_t>(cnt) << 10) ^
                (static_cast<uint64_t>(dim) << 4) ^
                static_cast<uint64_t>(dist);
  return GenerateSynthetic(config);
}

PreferenceRegion MakeWrRegion(int dim, int c) {
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(dim, c));
  ARSP_CHECK(region.ok());
  return std::move(region).value();
}

PreferenceRegion MakeImRegion(int dim, int c, uint64_t seed) {
  Rng rng(seed);
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeInteractiveConstraints(dim, c, rng));
  ARSP_CHECK(region.ok());
  return std::move(region).value();
}

std::string Label(const std::string& panel, const std::string& series,
                  const std::string& point) {
  return panel + "/" + series + "/" + point;
}

namespace {

// Minimal JSON string escaping for benchmark names (quotes, backslashes,
// control characters); names are ASCII labels so this is already overkill.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// %.17g prints doubles round-trip exactly and without locale surprises.
std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Forwards to the console reporter for display and collects every
// completed run; Finalize writes the arsp-bench-v1 export. Repeated runs
// of one benchmark (--benchmark_repetitions) collapse to the MINIMUM
// ns/op — the standard noise-robust statistic for a shared CI container,
// where the distribution is best-case-plus-interference. Counters must be
// identical across repetitions (deterministic work), so keeping the first
// is exact — except "_ns"-suffixed counters, which are timings a benchmark
// measured itself (bench_scale's build_ns / load_ns) and collapse to the
// minimum like ns_per_op.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      const std::string name = run.benchmark_name();
      const double ns_per_op =
          run.iterations > 0 ? run.real_accumulated_time * 1e9 /
                                   static_cast<double>(run.iterations)
                             : 0.0;
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        Entry entry;
        entry.ns_per_op = ns_per_op;
        entry.iterations = run.iterations;
        for (const auto& [counter_name, counter] : run.counters) {
          entry.counters.emplace_back(counter_name, counter.value);
        }
        order_.push_back(name);
        entries_.emplace(name, std::move(entry));
      } else {
        if (ns_per_op < it->second.ns_per_op) {
          it->second.ns_per_op = ns_per_op;
          it->second.iterations = run.iterations;
        }
        for (auto& [counter_name, value] : it->second.counters) {
          if (counter_name.size() > 3 &&
              counter_name.compare(counter_name.size() - 3, 3, "_ns") == 0) {
            const auto cit = run.counters.find(counter_name);
            if (cit != run.counters.end() && cit->second.value < value) {
              value = cit->second.value;
            }
          }
        }
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n",
                   path_.c_str());
    } else {
      const char* rev = std::getenv("ARSP_GIT_REV");
      out << "{\"schema\":\"arsp-bench-v1\",\"arch\":\""
          << simd::ActiveArchName() << "\",\"scale\":" << JsonNumber(Scale())
          << ",\"git_rev\":\"" << JsonEscape(rev != nullptr ? rev : "unknown")
          << "\"}\n";
      for (const std::string& name : order_) {
        const Entry& entry = entries_[name];
        out << "{\"name\":\"" << JsonEscape(name)
            << "\",\"ns_per_op\":" << JsonNumber(entry.ns_per_op)
            << ",\"iterations\":" << entry.iterations << ",\"counters\":{";
        bool first = true;
        for (const auto& [counter_name, value] : entry.counters) {
          if (!first) out << ",";
          first = false;
          out << "\"" << JsonEscape(counter_name)
              << "\":" << JsonNumber(value);
        }
        out << "}}\n";
      }
    }
    ConsoleReporter::Finalize();
  }

 private:
  struct Entry {
    double ns_per_op = 0.0;
    int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::string path_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;  // first-seen order for stable output
};

}  // namespace

int BenchMain(int argc, char** argv) {
  std::string json_path;
  if (const char* env = std::getenv("ARSP_BENCH_JSON")) json_path = env;
  // Strip --json[=PATH] before benchmark::Initialize sees (and rejects) it.
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);  // argv contract: argv[argc] == nullptr
  int new_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&new_argc, args.data());
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonExportReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_util
}  // namespace arsp
