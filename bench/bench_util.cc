// Copyright 2026 The ARSP Authors.

#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/bnb_algorithm.h"
#include "src/core/dual_algorithm.h"
#include "src/core/kdtt_algorithm.h"
#include "src/core/loop_algorithm.h"
#include "src/core/qdtt_algorithm.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {
namespace bench_util {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kLoop:
      return "LOOP";
    case Algo::kKdtt:
      return "KDTT";
    case Algo::kKdttPlus:
      return "KDTT+";
    case Algo::kQdttPlus:
      return "QDTT+";
    case Algo::kBnb:
      return "B&B";
    case Algo::kDual:
      return "DUAL";
  }
  return "?";
}

ArspResult RunAlgo(Algo algo, const UncertainDataset& dataset,
                   const PreferenceRegion& region,
                   const WeightRatioConstraints* wr) {
  switch (algo) {
    case Algo::kLoop:
      return ComputeArspLoop(dataset, region);
    case Algo::kKdtt:
      return ComputeArspKdtt(dataset, region, {.integrated = false});
    case Algo::kKdttPlus:
      return ComputeArspKdtt(dataset, region, {.integrated = true});
    case Algo::kQdttPlus:
      return ComputeArspQdtt(dataset, region);
    case Algo::kBnb:
      return ComputeArspBnb(dataset, region);
    case Algo::kDual:
      ARSP_CHECK_MSG(wr != nullptr,
                     "DUAL requires weight ratio constraints");
      return ComputeArspDual(dataset, *wr);
  }
  ARSP_FATAL("unknown algorithm");
}

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("ARSP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.01 ? v : 0.01;
  }();
  return scale;
}

int ScaledM(int base) {
  return std::max(16, static_cast<int>(base * Scale()));
}

UncertainDataset MakeSynthetic(Distribution dist, int num_objects, int cnt,
                               int dim, double l, double phi) {
  SyntheticConfig config;
  config.num_objects = num_objects;
  config.max_instances = cnt;
  config.dim = dim;
  config.region_length = l;
  config.phi = phi;
  config.distribution = dist;
  // Seed depends on the workload shape so different sweep points use
  // different (but reproducible) data.
  config.seed = 0x9e3779b9u ^ (static_cast<uint64_t>(num_objects) << 20) ^
                (static_cast<uint64_t>(cnt) << 10) ^
                (static_cast<uint64_t>(dim) << 4) ^
                static_cast<uint64_t>(dist);
  return GenerateSynthetic(config);
}

PreferenceRegion MakeWrRegion(int dim, int c) {
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(dim, c));
  ARSP_CHECK(region.ok());
  return std::move(region).value();
}

PreferenceRegion MakeImRegion(int dim, int c, uint64_t seed) {
  Rng rng(seed);
  auto region = PreferenceRegion::FromLinearConstraints(
      MakeInteractiveConstraints(dim, c, rng));
  ARSP_CHECK(region.ok());
  return std::move(region).value();
}

std::string Label(const std::string& panel, const std::string& series,
                  const std::string& point) {
  return panel + "/" + series + "/" + point;
}

}  // namespace bench_util
}  // namespace arsp
