// Copyright 2026 The ARSP Authors.
//
// Shared infrastructure for the paper-reproduction benchmarks: registry-
// driven algorithm execution (names match SolverRegistry; display names
// match the paper's figures), workload construction per §V-A, and a global
// scale knob.
//
// Scaling: the paper's defaults (m = 16K, cnt = 400 → ~3.2M instances on a
// 24-thread Xeon with 256 GB RAM) are far beyond a CI container budget. The
// benchmarks default to m = 512, cnt = 20 and sweep proportionally; set
// ARSP_BENCH_SCALE=4 (or any factor) to grow every cardinality sweep.
// Relative algorithm behaviour — the paper's actual claims — is preserved;
// EXPERIMENTS.md records the shape comparison per figure.

#ifndef ARSP_BENCH_BENCH_UTIL_H_
#define ARSP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>

#include "src/core/arsp_result.h"
#include "src/core/engine.h"
#include "src/core/solver.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/generators.h"

namespace arsp {
namespace bench_util {

/// Registry names of the algorithms in the linear-constraint experiments
/// (Figs. 5 and 6). Any name from SolverRegistry::Names() works everywhere
/// a benchmark takes an algorithm.
inline constexpr const char* kLinearAlgos[] = {"loop", "kdtt", "kdtt+",
                                               "qdtt+", "bnb"};

/// Paper-style display name from the registry ("LOOP", "KDTT+", "B&B").
std::string AlgoName(const std::string& algo);

/// Capability flags (SolverCaps) of a registered solver; benchmarks use the
/// cost-class flags to skip infeasible sweep points without naming
/// algorithms.
uint32_t AlgoCaps(const std::string& algo);

/// The shared ArspEngine every benchmark driver routes through.
ArspEngine& SharedEngine();

/// Runs a registered solver on the dataset through SharedEngine. `wr` is
/// required for solvers with kCapRequiresWeightRatios and ignored
/// otherwise. Result caching and context pooling are disabled so each call
/// pays (and measures) preprocessing + solve, like a cold query.
ArspResult RunAlgo(const std::string& algo, const UncertainDataset& dataset,
                   const PreferenceRegion& region,
                   const WeightRatioConstraints* wr = nullptr);

/// Registers `full` with SharedEngine (once per distinct dataset address —
/// callers pass function-local statics) and returns its handle.
DatasetHandle SharedHandle(const UncertainDataset& full);

/// Engine-held prefix view over `full` exposing its first `count` objects;
/// memoized per (dataset, count), so an m% sweep registers each view once.
DatasetHandle SharedPrefixHandle(const UncertainDataset& full, int count);

/// Runs a registered solver against an engine handle (dataset or view).
/// Context pooling is ON and result caching OFF: iterations measure the
/// warm view path — zero-copy score spans and shared indexes derived from
/// the base context — which is the point of the Fig. 6 m% sweeps. The
/// first call on a base pays the one full build; every prefix view after
/// it is delta work only.
ArspResult RunAlgoOnHandle(const std::string& algo, DatasetHandle handle,
                           const PreferenceRegion& region,
                           const WeightRatioConstraints* wr = nullptr);

/// Creates a configured solver or aborts — benchmark setup is trusted code.
std::unique_ptr<ArspSolver> MustCreate(const std::string& algo,
                                       const SolverOptions& options = {});

/// Solves or aborts; for drivers that reuse one solver/context pair.
ArspResult MustSolve(ArspSolver& solver, ExecutionContext& context);

/// Global sweep scale from ARSP_BENCH_SCALE (default 1.0, min 0.01).
double Scale();

/// m scaled by ARSP_BENCH_SCALE and rounded to at least 16.
int ScaledM(int base);

/// Synthetic dataset per the paper's §V-A procedure with benchmark seeds.
UncertainDataset MakeSynthetic(Distribution dist, int num_objects, int cnt,
                               int dim, double l, double phi);

/// The WR preference region with c constraints in d dimensions.
PreferenceRegion MakeWrRegion(int dim, int c);

/// The IM preference region with c constraints in d dimensions (fixed seed).
PreferenceRegion MakeImRegion(int dim, int c, uint64_t seed = 12345);

/// Label like "Fig5a/IND/KDTT+/m=512".
std::string Label(const std::string& panel, const std::string& series,
                  const std::string& point);

/// Shared driver entry point: every bench/*.cc main() is
/// `RegisterAll(); return bench_util::BenchMain(argc, argv);`.
///
/// On top of the standard Google Benchmark flags it adds a machine-readable
/// export for the CI perf gate: `--json PATH` (or `--json=PATH`, or the
/// ARSP_BENCH_JSON environment variable) writes one line of JSON per
/// completed benchmark in the stable "arsp-bench-v1" schema that
/// tools/bench_diff.cc consumes:
///
///   {"schema":"arsp-bench-v1","arch":"avx2","scale":1,"git_rev":"..."}
///   {"name":"...","ns_per_op":1234.5,"iterations":1,
///    "counters":{"n":100,"exact_evals":42}}
///
/// The header line records the kernel dispatch arch (simd::ActiveArchName),
/// ARSP_BENCH_SCALE, and the git revision from ARSP_GIT_REV (or "unknown").
/// Skipped/errored benchmarks are not exported. Console output is
/// unaffected; the flag is stripped before benchmark::Initialize.
int BenchMain(int argc, char** argv);

}  // namespace bench_util
}  // namespace arsp

#endif  // ARSP_BENCH_BENCH_UTIL_H_
