// Copyright 2026 The ARSP Authors.
//
// Shared infrastructure for the paper-reproduction benchmarks: an algorithm
// registry matching the paper's names (LOOP, KDTT, KDTT+, QDTT+, B&B, DUAL),
// workload construction per §V-A, and a global scale knob.
//
// Scaling: the paper's defaults (m = 16K, cnt = 400 → ~3.2M instances on a
// 24-thread Xeon with 256 GB RAM) are far beyond a CI container budget. The
// benchmarks default to m = 512, cnt = 20 and sweep proportionally; set
// ARSP_BENCH_SCALE=4 (or any factor) to grow every cardinality sweep.
// Relative algorithm behaviour — the paper's actual claims — is preserved;
// EXPERIMENTS.md records the shape comparison per figure.

#ifndef ARSP_BENCH_BENCH_UTIL_H_
#define ARSP_BENCH_BENCH_UTIL_H_

#include <string>

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/generators.h"

namespace arsp {
namespace bench_util {

/// ARSP algorithms under benchmark, named as in the paper's figures.
enum class Algo { kLoop, kKdtt, kKdttPlus, kQdttPlus, kBnb, kDual };

/// Paper-style display name ("LOOP", "KDTT+", ...).
const char* AlgoName(Algo algo);

/// All algorithms of the linear-constraint experiments (Figs. 5 and 6).
inline constexpr Algo kLinearAlgos[] = {Algo::kLoop, Algo::kKdtt,
                                        Algo::kKdttPlus, Algo::kQdttPlus,
                                        Algo::kBnb};

/// Runs `algo` on the dataset. `wr` is required for Algo::kDual and ignored
/// otherwise.
ArspResult RunAlgo(Algo algo, const UncertainDataset& dataset,
                   const PreferenceRegion& region,
                   const WeightRatioConstraints* wr = nullptr);

/// Global sweep scale from ARSP_BENCH_SCALE (default 1.0, min 0.01).
double Scale();

/// m scaled by ARSP_BENCH_SCALE and rounded to at least 16.
int ScaledM(int base);

/// Synthetic dataset per the paper's §V-A procedure with benchmark seeds.
UncertainDataset MakeSynthetic(Distribution dist, int num_objects, int cnt,
                               int dim, double l, double phi);

/// The WR preference region with c constraints in d dimensions.
PreferenceRegion MakeWrRegion(int dim, int c);

/// The IM preference region with c constraints in d dimensions (fixed seed).
PreferenceRegion MakeImRegion(int dim, int c, uint64_t seed = 12345);

/// Label like "Fig5a/IND/KDTT+/m=512".
std::string Label(const std::string& panel, const std::string& series,
                  const std::string& point);

}  // namespace bench_util
}  // namespace arsp

#endif  // ARSP_BENCH_BENCH_UTIL_H_
