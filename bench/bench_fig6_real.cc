// Copyright 2026 The ARSP Authors.
//
// Fig. 6: ARSP algorithms on the simulated real datasets.
//   (a) IIP-like, vary m% of 19,668 single-instance records (ϕ = 1: B&B's
//       pruning set stays empty and it degenerates toward LOOP, the paper's
//       observation);
//   (b) CAR-like, vary m% of the model count;
//   (c) NBA-like, vary m% of the player count;
//   (d) NBA-like, vary d ∈ 2..8;
//   (e) NBA-like, vary c ∈ 1..7.
// Simulators replace the proprietary datasets — see DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace arsp {
namespace {

using bench_util::AlgoCaps;
using bench_util::AlgoName;
using bench_util::kLinearAlgos;
using bench_util::MakeWrRegion;
using bench_util::RunAlgo;
using bench_util::RunAlgoOnHandle;
using bench_util::Scale;
using bench_util::SharedEngine;
using bench_util::SharedPrefixHandle;

// Base cardinalities, scaled down from the real datasets' sizes
// (IIP 19,668 records; CAR 184,810 cars; NBA 354,698 records of 1,878
// players) to container scale. ARSP_BENCH_SCALE grows them.
int IipRecords() { return std::max(200, static_cast<int>(8000 * Scale())); }
int CarModels() { return std::max(50, static_cast<int>(600 * Scale())); }
int NbaPlayers() { return std::max(30, static_cast<int>(250 * Scale())); }

const UncertainDataset& IipFull() {
  static const UncertainDataset dataset = GenerateIipLike(IipRecords(), 1001);
  return dataset;
}
const UncertainDataset& CarFull() {
  static const UncertainDataset dataset = GenerateCarLike(CarModels(), 1002);
  return dataset;
}
UncertainDataset NbaFull(int dim) {
  return GenerateNbaLike(NbaPlayers(), dim, 1003, nullptr);
}
// The m% panel shares one engine-registered dataset across all prefixes
// (views need the base to stay alive), so d=4 NBA data is a static here.
const UncertainDataset& NbaFull4() {
  static const UncertainDataset dataset = NbaFull(4);
  return dataset;
}

void RunCase(benchmark::State& state, const UncertainDataset& dataset, int c,
             const std::string& algo) {
  if ((AlgoCaps(algo) & kCapQuadraticTime) != 0 &&
      dataset.num_instances() > 20000) {
    state.SkipWithError(
        "quadratic solver over 20K instances exceeds the harness budget");
    return;
  }
  const PreferenceRegion region = MakeWrRegion(dataset.dim(), c);
  int arsp_size = 0;
  for (auto _ : state) {
    const ArspResult result = RunAlgo(algo, dataset, region);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] = dataset.num_instances();
  state.counters["m"] = dataset.num_objects();
  state.counters["arsp_size"] = arsp_size;
}

// The m% panels run on engine-held prefix views instead of TakeObjects
// copies: no instance payloads are duplicated, and the pooled view
// contexts derive from the base dataset's, so one sweep performs a single
// full index build / SV(·) mapping plus per-prefix delta work — the cost
// model the paper's Fig. 6 actually varies.
void RunPrefixCase(benchmark::State& state, const UncertainDataset& full,
                   int pct, int c, const std::string& algo) {
  const int count = std::max(1, full.num_objects() * pct / 100);
  const DatasetHandle handle = SharedPrefixHandle(full, count);
  const DatasetView view = SharedEngine().view(handle);
  if ((AlgoCaps(algo) & kCapQuadraticTime) != 0 &&
      view.num_instances() > 20000) {
    state.SkipWithError(
        "quadratic solver over 20K instances exceeds the harness budget");
    return;
  }
  const PreferenceRegion region = MakeWrRegion(view.dim(), c);
  int arsp_size = 0;
  for (auto _ : state) {
    const ArspResult result = RunAlgoOnHandle(algo, handle, region);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] = view.num_instances();
  state.counters["m"] = view.num_objects();
  state.counters["arsp_size"] = arsp_size;
}

void RegisterAll() {
  // ---- Fig. 6 (a): IIP-like, vary m% (engine-held prefix views).
  for (int pct : {20, 40, 60, 80, 100}) {
    for (const char* algo : kLinearAlgos) {
      benchmark::RegisterBenchmark(
          ("Fig6a_IIP/m%=" + std::to_string(pct) + "/" + AlgoName(algo)).c_str(),
          [pct, algo = std::string(algo)](benchmark::State& state) {
            RunPrefixCase(state, IipFull(), pct, 1, algo);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // ---- Fig. 6 (b): CAR-like, vary m% (engine-held prefix views).
  for (int pct : {20, 40, 60, 80, 100}) {
    for (const char* algo : kLinearAlgos) {
      benchmark::RegisterBenchmark(
          ("Fig6b_CAR/m%=" + std::to_string(pct) + "/" + AlgoName(algo)).c_str(),
          [pct, algo = std::string(algo)](benchmark::State& state) {
            RunPrefixCase(state, CarFull(), pct, 3, algo);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // ---- Fig. 6 (c): NBA-like (d=4), vary m% (engine-held prefix views).
  for (int pct : {20, 40, 60, 80, 100}) {
    for (const char* algo : kLinearAlgos) {
      benchmark::RegisterBenchmark(
          ("Fig6c_NBA/m%=" + std::to_string(pct) + "/" + AlgoName(algo)).c_str(),
          [pct, algo = std::string(algo)](benchmark::State& state) {
            RunPrefixCase(state, NbaFull4(), pct, 3, algo);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // ---- Fig. 6 (d): NBA-like, vary d.
  for (int d : {2, 3, 4, 5, 6, 8}) {
    for (const char* algo : kLinearAlgos) {
      benchmark::RegisterBenchmark(
          ("Fig6d_NBA/d=" + std::to_string(d) + "/" + AlgoName(algo)).c_str(),
          [d, algo = std::string(algo)](benchmark::State& state) {
            RunCase(state, NbaFull(d), d - 1, algo);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // ---- Fig. 6 (e): NBA-like (d=8), vary c.
  for (int c : {1, 3, 5, 7}) {
    for (const char* algo : kLinearAlgos) {
      benchmark::RegisterBenchmark(
          ("Fig6e_NBA/c=" + std::to_string(c) + "/" + AlgoName(algo)).c_str(),
          [c, algo = std::string(algo)](benchmark::State& state) {
            RunCase(state, NbaFull(8), c, algo);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterAll();
  return arsp::bench_util::BenchMain(argc, argv);
}
