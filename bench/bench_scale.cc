// Copyright 2026 The ARSP Authors.
//
// Out-of-core scale bench: the build-vs-load split behind the .arsp
// snapshot format (src/io/snapshot.h), exported as BENCH_scale.json for the
// CI perf gate. Measures, on one synthetic dataset:
//
//   Scale/BuildIndexes    — the in-memory cost a cold start pays without a
//     snapshot: both spatial index builds over the dataset.
//   Scale/PackSnapshot    — arsp_pack's hot loop: serialize columns +
//     prebuilt index arenas + checksums to a snapshot file.
//   Scale/LoadSnapshot    — the out-of-core path: mmap + validate + borrow;
//     O(sections), not O(instances).
//   Scale/LoadVsBuild     — both paths back to back, exporting build_ns /
//     load_ns counters (bench_diff's _ns-suffix counters are gated like
//     timings, calibration-normalized) plus the deterministic bytes_mapped.
//   Scale/Query{InMemory,FromSnapshot} — identical warm solves over the
//     heap-built and snapshot-served dataset; their deterministic work
//     counters (arsp_size, dominance_tests) must match exactly — the
//     bit-identity contract, enforced by the perf gate's counter check.
//
// Sizing: ~100K instances at ARSP_BENCH_SCALE=1 (CI default). The paper
// -scale 10M-instance run is ARSP_BENCH_SCALE=100 — see the acceptance
// numbers in ARCHITECTURE.md ("Storage & snapshots").

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/mem.h"
#include "src/core/solver.h"
#include "src/index/kdtree.h"
#include "src/index/rtree.h"
#include "src/io/snapshot.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {
namespace {

using bench_util::MakeWrRegion;
using bench_util::MustCreate;
using bench_util::MustSolve;
using bench_util::ScaledM;

// Serially dependent xorshift64 chain — the same calibration entry every
// gated export carries (bench_diff normalizes ns/op ratios by it).
void BM_Calibrate_Xorshift64(benchmark::State& state) {
  uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    for (int i = 0; i < (1 << 16); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Calibrate_Xorshift64);

// ~100K instances at scale 1 (m=2000 objects x cnt=50); ARSP_BENCH_SCALE
// scales m, so =100 reaches the paper-scale 10M instances.
const UncertainDataset& ScaleDataset() {
  static const auto* dataset = new UncertainDataset(bench_util::MakeSynthetic(
      Distribution::kIndependent, ScaledM(2000), 50, 3, 0.2, 0.0));
  return *dataset;
}

std::string SnapshotPath() {
  static const std::string* path = [] {
    const char* tmp = std::getenv("TMPDIR");
    return new std::string(std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/arsp_bench_scale.arsp");
  }();
  return *path;
}

// The query benches' preference region. The snapshot ships pre-mapped
// scores for exactly this region, so the snapshot-served query is fully
// zero-copy: kdtt+ reads its score span straight from the mapping (a
// snapshot_hit) instead of re-mapping in memory.
const PreferenceRegion& BenchRegion() {
  static const auto* region = new PreferenceRegion(MakeWrRegion(3, 2));
  return *region;
}

snapshot::SnapshotWriteOptions PackOptions() {
  snapshot::SnapshotWriteOptions options;
  options.scores_region = &BenchRegion();
  return options;
}

// Packs ScaleDataset() once; every load-side bench reads this file.
const std::string& PackedOnce() {
  static const std::string* path = [] {
    const Status st =
        snapshot::WriteSnapshot(ScaleDataset(), SnapshotPath(), PackOptions());
    ARSP_CHECK_MSG(st.ok(), "pack failed: %s", st.ToString().c_str());
    return new std::string(SnapshotPath());
  }();
  return *path;
}

double NsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_Scale_BuildIndexes(benchmark::State& state) {
  const UncertainDataset& dataset = ScaleDataset();
  const DatasetView view(dataset);
  for (auto _ : state) {
    const KdTree kd = KdTree::FromView(view);
    const RTree rt = RTree::BulkLoadFromView(view);
    benchmark::DoNotOptimize(kd.size());
    benchmark::DoNotOptimize(rt.size());
  }
  state.counters["n"] = static_cast<double>(dataset.num_instances());
  state.counters["m"] = static_cast<double>(dataset.num_objects());
}
BENCHMARK(BM_Scale_BuildIndexes)->Unit(benchmark::kMillisecond);

void BM_Scale_PackSnapshot(benchmark::State& state) {
  const UncertainDataset& dataset = ScaleDataset();
  for (auto _ : state) {
    const Status st =
        snapshot::WriteSnapshot(dataset, SnapshotPath(), PackOptions());
    ARSP_CHECK(st.ok());
  }
}
BENCHMARK(BM_Scale_PackSnapshot)->Unit(benchmark::kMillisecond);

void BM_Scale_LoadSnapshot(benchmark::State& state) {
  const std::string& path = PackedOnce();
  size_t bytes_mapped = 0;
  for (auto _ : state) {
    auto loaded = snapshot::LoadSnapshot(path);
    ARSP_CHECK(loaded.ok());
    bytes_mapped = loaded->bytes_mapped;
    benchmark::DoNotOptimize(loaded->dataset->num_instances());
  }
  // Deterministic for a fixed scale: the snapshot layout is a pure function
  // of the dataset, so a drift here means the format changed.
  state.counters["bytes_mapped"] = static_cast<double>(bytes_mapped);
}
BENCHMARK(BM_Scale_LoadSnapshot)->Unit(benchmark::kMillisecond);

// Both cold-start paths in one entry, so their ratio travels in a single
// export line: build_ns (index construction) vs load_ns (mmap + validate).
// The _ns suffix puts these under bench_diff's normalized timing gate; a
// snapshot load regressing toward build cost fails CI.
void BM_Scale_LoadVsBuild(benchmark::State& state) {
  const UncertainDataset& dataset = ScaleDataset();
  const DatasetView view(dataset);
  const std::string& path = PackedOnce();
  // Per-iteration minima, the same noise-robust collapse the exporter
  // applies across repetitions.
  double build_ns = std::numeric_limits<double>::infinity();
  double load_ns = std::numeric_limits<double>::infinity();
  size_t bytes_mapped = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const KdTree kd = KdTree::FromView(view);
    const RTree rt = RTree::BulkLoadFromView(view);
    benchmark::DoNotOptimize(kd.size());
    benchmark::DoNotOptimize(rt.size());
    const auto t1 = std::chrono::steady_clock::now();
    auto loaded = snapshot::LoadSnapshot(path);
    ARSP_CHECK(loaded.ok());
    benchmark::DoNotOptimize(loaded->dataset->num_instances());
    build_ns = std::min(
        build_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
    load_ns = std::min(load_ns, NsSince(t1));
    bytes_mapped = loaded->bytes_mapped;
  }
  state.counters["build_ns"] = build_ns;
  state.counters["load_ns"] = load_ns;
  state.counters["bytes_mapped"] = static_cast<double>(bytes_mapped);
}
BENCHMARK(BM_Scale_LoadVsBuild)->Unit(benchmark::kMillisecond);

// Warm query work must be identical however the dataset got into memory:
// the two entries below export the same deterministic counters, and the
// perf gate's exact-equality check turns any divergence into a CI failure.
void RunScaleQuery(benchmark::State& state, ExecutionContext& context) {
  auto solver = MustCreate("kdtt+");
  ArspResult result;
  for (auto _ : state) {
    result = MustSolve(*solver, context);
    benchmark::DoNotOptimize(result.instance_probs.data());
  }
  state.counters["arsp_size"] = static_cast<double>(CountNonZero(result));
  state.counters["dominance_tests"] =
      static_cast<double>(result.dominance_tests);
}

void BM_Scale_QueryInMemory(benchmark::State& state) {
  static auto* context = new ExecutionContext(ScaleDataset(), BenchRegion());
  RunScaleQuery(state, *context);
}
BENCHMARK(BM_Scale_QueryInMemory)->Unit(benchmark::kMillisecond);

void BM_Scale_QueryFromSnapshot(benchmark::State& state) {
  static auto* context = [] {
    auto loaded = snapshot::LoadSnapshot(PackedOnce());
    ARSP_CHECK(loaded.ok());
    return new ExecutionContext(DatasetView(loaded->dataset), BenchRegion());
  }();
  RunScaleQuery(state, *context);
  // Nonzero proves the score span is served from the mapping (the packed
  // region's vertex hash matched); deterministic for a fixed scale.
  state.counters["index_bytes_mapped"] =
      static_cast<double>(context->IndexMemoryFootprint().mapped);
}
BENCHMARK(BM_Scale_QueryFromSnapshot)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  const int rc = arsp::bench_util::BenchMain(argc, argv);
  // Peak RSS is machine state, not a gated counter — print it for the
  // 10M-instance acceptance runs (ARSP_BENCH_SCALE=100).
  std::fprintf(stderr, "peak_rss_mb=%.1f\n",
               static_cast<double>(arsp::PeakRssBytes()) / (1024.0 * 1024.0));
  return rc;
}
