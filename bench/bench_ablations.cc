// Copyright 2026 The ARSP Authors.
//
// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * ENUM's exponential blow-up (why the paper's Fig. 5 reports INF),
//   * Theorem-5 O(d) F-dominance test vs the Theorem-2 vertex test,
//   * KDTT+ fused construction vs KDTT build-then-traverse,
//   * the §III-B space-partitioning remark (KDTT+ / QDTT+ / MWTT fan-outs),
//   * B&B with and without the Theorem-3/4 pruning set,
//   * R-tree fan-out sensitivity of B&B,
//   * empirical scaling on the Theorem-1 OV reduction instances (the
//     quadratic hardness wall).
//
// Every ARSP run goes through the SolverRegistry: the ablation axes are the
// solvers' typed options (integrated, fanout, pruning, rtree_fanout), not
// separate entry points.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/ov_reduction.h"
#include "src/core/solver.h"
#include "src/prefs/fdominance.h"

namespace arsp {
namespace {

using bench_util::MakeSynthetic;
using bench_util::MakeWrRegion;
using bench_util::MustCreate;
using bench_util::MustSolve;

// ---- ENUM blow-up: doubling m multiplies worlds by cnt+1. -----------------
void BM_EnumBlowup(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kIndependent, m, 3, 2, 0.2, 0.0);
  const PreferenceRegion region = MakeWrRegion(2, 1);
  const auto solver =
      MustCreate("enum", SolverOptions().SetDouble("max_worlds", 1e9));
  ExecutionContext context(dataset, region);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountNonZero(MustSolve(*solver, context)));
  }
  state.counters["worlds"] = dataset.NumPossibleWorlds();
}
BENCHMARK(BM_EnumBlowup)->DenseRange(4, 14, 2)->Unit(benchmark::kMillisecond);

// ---- F-dominance test cost: Theorem 2 vs Theorem 5. -----------------------
void BM_FDominanceVertexTest(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<double, double>> ranges;
  for (int i = 0; i < d - 1; ++i) ranges.emplace_back(0.5, 2.0);
  const auto wr = WeightRatioConstraints::Create(ranges).value();
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);
  std::vector<Point> pts;
  for (int i = 0; i < 1024; ++i) {
    Point p(d);
    for (int k = 0; k < d; ++k) p[k] = rng.Uniform01();
    pts.push_back(std::move(p));
  }
  size_t i = 0;
  for (auto _ : state) {
    const bool dom = FDominatesVertex(pts[i % 1024], pts[(i + 7) % 1024],
                                      region.vertices());
    benchmark::DoNotOptimize(dom);
    ++i;
  }
  state.counters["vertices"] = region.num_vertices();
}
BENCHMARK(BM_FDominanceVertexTest)->DenseRange(2, 8, 2);

void BM_FDominanceRatioTest(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<double, double>> ranges;
  for (int i = 0; i < d - 1; ++i) ranges.emplace_back(0.5, 2.0);
  const auto wr = WeightRatioConstraints::Create(ranges).value();
  std::vector<Point> pts;
  for (int i = 0; i < 1024; ++i) {
    Point p(d);
    for (int k = 0; k < d; ++k) p[k] = rng.Uniform01();
    pts.push_back(std::move(p));
  }
  size_t i = 0;
  for (auto _ : state) {
    const bool dom =
        FDominatesWeightRatio(pts[i % 1024], pts[(i + 7) % 1024], wr);
    benchmark::DoNotOptimize(dom);
    ++i;
  }
}
BENCHMARK(BM_FDominanceRatioTest)->DenseRange(2, 8, 2);

// ---- KDTT construction fusion ablation. -----------------------------------
void BM_KdttConstruction(benchmark::State& state) {
  const bool integrated = state.range(0) == 1;
  // CORR data prunes aggressively near the origin — the regime where fusing
  // construction with traversal pays (paper Fig. 5c).
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kCorrelated, bench_util::ScaledM(512), 20, 4, 0.2, 0.0);
  const PreferenceRegion region = MakeWrRegion(4, 3);
  const auto solver = MustCreate(integrated ? "kdtt+" : "kdtt");
  ExecutionContext context(dataset, region);
  int64_t nodes = 0;
  for (auto _ : state) {
    const ArspResult result = MustSolve(*solver, context);
    nodes = result.nodes_visited;
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
  state.SetLabel(integrated ? "KDTT+ (fused)" : "KDTT (build-then-traverse)");
}
BENCHMARK(BM_KdttConstruction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ---- Space-partitioning tree ablation: the §III-B remark. ------------------
// KDTT+ (binary kd splits) vs QDTT+ (quadrants) vs MWTT fan-out sweep, all
// as registered solvers sharing one ExecutionContext per workload.
void BM_PartitioningTree(benchmark::State& state, const std::string& algo,
                         const SolverOptions& options,
                         const std::string& label) {
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kIndependent, bench_util::ScaledM(512), 20, 4, 0.2, 0.0);
  const PreferenceRegion region = MakeWrRegion(4, 3);
  const auto solver = MustCreate(algo, options);
  ExecutionContext context(dataset, region);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountNonZero(MustSolve(*solver, context)));
  }
  state.SetLabel(label);
}

void RegisterPartitioningTree() {
  benchmark::RegisterBenchmark(
      "BM_PartitioningTree/kdtt+", [](benchmark::State& state) {
        BM_PartitioningTree(state, "kdtt+", {}, "KDTT+ (binary kd)");
      })->Unit(benchmark::kMillisecond)->Iterations(1);
  benchmark::RegisterBenchmark(
      "BM_PartitioningTree/qdtt+", [](benchmark::State& state) {
        BM_PartitioningTree(state, "qdtt+", {}, "QDTT+ (quadrants)");
      })->Unit(benchmark::kMillisecond)->Iterations(1);
  for (int fanout : {4, 8, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("BM_PartitioningTree/mwtt_fanout=" + std::to_string(fanout)).c_str(),
        [fanout](benchmark::State& state) {
          BM_PartitioningTree(state, "mwtt",
                              SolverOptions().SetInt("fanout", fanout),
                              "MWTT fanout=" + std::to_string(fanout));
        })->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

// ---- B&B pruning-set ablation. ---------------------------------------------
void BM_BnbPruning(benchmark::State& state) {
  const bool pruning = state.range(0) == 1;
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kIndependent, bench_util::ScaledM(512), 20, 4, 0.2, 0.0);
  const PreferenceRegion region = MakeWrRegion(4, 3);
  const auto solver =
      MustCreate("bnb", SolverOptions().SetBool("pruning", pruning));
  ExecutionContext context(dataset, region);
  int64_t pruned = 0;
  for (auto _ : state) {
    const ArspResult result = MustSolve(*solver, context);
    pruned = result.nodes_pruned;
    benchmark::DoNotOptimize(pruned);
  }
  state.counters["pruned"] = static_cast<double>(pruned);
  state.SetLabel(pruning ? "with Theorem-3/4 pruning" : "pruning disabled");
}
BENCHMARK(BM_BnbPruning)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ---- B&B R-tree fan-out sensitivity. ----------------------------------------
void BM_BnbFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const UncertainDataset dataset = MakeSynthetic(
      Distribution::kIndependent, bench_util::ScaledM(256), 10, 4, 0.2, 0.0);
  const PreferenceRegion region = MakeWrRegion(4, 3);
  const auto solver =
      MustCreate("bnb", SolverOptions().SetInt("rtree_fanout", fanout));
  ExecutionContext context(dataset, region);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountNonZero(MustSolve(*solver, context)));
  }
}
BENCHMARK(BM_BnbFanout)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// ---- Goal pushdown ablation: bound-based pruning vs post-hoc slicing. -------
// The same derived query (top-10 objects, or objects with Pr_rsky >= 0.5)
// on the Fig. 6 NBA-like config, answered by KDTT+ through the engine with
// goal pushdown on vs off. Context pooling is on and result caching off, so
// iterations measure the warm solve the goal actually changes.
void BM_GoalPushdown(benchmark::State& state) {
  const bool pushdown = state.range(0) == 1;
  const bool threshold_goal = state.range(1) == 1;
  static const UncertainDataset& dataset = *new UncertainDataset(
      GenerateNbaLike(bench_util::ScaledM(250), 4, 1003, nullptr));
  QueryRequest request;
  request.dataset = bench_util::SharedHandle(dataset);
  request.constraints = ConstraintSpec::Region(MakeWrRegion(4, 3));
  request.solver = "kdtt+";
  request.use_cache = false;
  request.allow_pushdown = pushdown;
  if (threshold_goal) {
    request.derived.kind = DerivedKind::kObjectsAboveThreshold;
    request.derived.threshold = 0.5;
  } else {
    request.derived.kind = DerivedKind::kTopKObjects;
    request.derived.k = 10;
  }
  int64_t refinements = 0;
  int64_t objects_pruned = 0;
  for (auto _ : state) {
    auto response = bench_util::SharedEngine().Solve(request);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    refinements = response->stats.bound_refinements;
    objects_pruned = response->stats.objects_pruned;
    benchmark::DoNotOptimize(response->ranked);
  }
  state.counters["bound_refinements"] = static_cast<double>(refinements);
  state.counters["objects_pruned"] = static_cast<double>(objects_pruned);
  state.counters["n"] = dataset.num_instances();
  state.SetLabel(std::string(threshold_goal ? "threshold>=0.5" : "top-10") +
                 (pushdown ? " / pushdown" : " / post-hoc"));
}
BENCHMARK(BM_GoalPushdown)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// ---- OV hardness wall: the Theorem-1 reduction instances. -------------------
void BM_OvReductionScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = 8;  // c log n flavour
  const OvInstance ov = MakeRandomOvInstance(n, d, 0.5, 99);
  const UncertainDataset dataset = BuildOvDataset(ov);
  const PreferenceRegion region = PreferenceRegion::FullSimplex(d);
  const auto solver = MustCreate("kdtt+");
  ExecutionContext context(dataset, region);
  bool found = false;
  for (auto _ : state) {
    const ArspResult result = MustSolve(*solver, context);
    found = OvPairExists(result, dataset);
    benchmark::DoNotOptimize(found);
  }
  state.counters["n"] = n;
  state.counters["pair_found"] = found ? 1 : 0;
}
BENCHMARK(BM_OvReductionScaling)->RangeMultiplier(2)->Range(256, 4096)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterPartitioningTree();
  return arsp::bench_util::BenchMain(argc, argv);
}
