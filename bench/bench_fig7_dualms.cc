// Copyright 2026 The ARSP Authors.
//
// Fig. 7 (b): the specialized d = 2 DUAL-MS structure versus KDTT+ on the
// IIP-like dataset under weight ratio constraints, varying m%. Reported per
// point:
//   * DUAL-MS query time (the benchmark's wall time),
//   * preprocess_s — the quadratic preprocessing cost (counter, seconds),
//   * index_mib    — the quadratic memory cost (counter),
//   * the KDTT+ time for the same query as a separate series (KDTT+ gets a
//     zero-skyline-probability prefilter, matching the paper's setup).
// The paper's conclusion to reproduce: queries become faster than KDTT+,
// but preprocessing time and memory are orders of magnitude larger.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/core/dual2d_ms.h"
#include "src/core/skyline_probability.h"
#include "src/core/solver.h"
#include "src/prefs/preference_region.h"

namespace arsp {
namespace {

using bench_util::Scale;

int IipRecords() { return std::max(200, static_cast<int>(4000 * Scale())); }

const UncertainDataset& IipFull() {
  static const UncertainDataset dataset = GenerateIipLike(IipRecords(), 77);
  return dataset;
}

// Shared per-m% preprocessing so the build cost is paid once per subset and
// reported as a counter. Prefixes are zero-copy DatasetViews over the full
// dataset — only the quadratic angular index itself is materialized.
struct PreparedIndex {
  DatasetView subset;
  std::unique_ptr<Dual2dMs> index;
  double preprocess_seconds = 0.0;
};

DatasetView PrefixView(int pct) {
  auto view = DatasetView::Create(
      IipFull(),
      ViewSpec::Prefix(std::max(1, IipFull().num_objects() * pct / 100)));
  ARSP_CHECK_MSG(view.ok(), "%s", view.status().ToString().c_str());
  return std::move(view).value();
}

PreparedIndex* Prepare(int pct) {
  static std::map<int, std::unique_ptr<PreparedIndex>> cache;
  auto it = cache.find(pct);
  if (it != cache.end()) return it->second.get();
  auto prepared = std::make_unique<PreparedIndex>();
  prepared->subset = PrefixView(pct);
  Stopwatch sw;
  auto built = Dual2dMs::Build(prepared->subset);
  ARSP_CHECK_MSG(built.ok(), "%s", built.status().ToString().c_str());
  prepared->preprocess_seconds = sw.ElapsedSeconds();
  prepared->index = std::make_unique<Dual2dMs>(std::move(built).value());
  return cache.emplace(pct, std::move(prepared)).first->second.get();
}

void BM_DualMsQuery(benchmark::State& state, int pct) {
  PreparedIndex* prepared = Prepare(pct);
  int arsp_size = 0;
  for (auto _ : state) {
    const ArspResult result = prepared->index->Query(0.5, 2.0);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] = prepared->subset.num_instances();
  state.counters["arsp_size"] = arsp_size;
  state.counters["preprocess_s"] = prepared->preprocess_seconds;
  state.counters["index_mib"] =
      static_cast<double>(prepared->index->MemoryBytes()) / (1 << 20);
}

void BM_KdttPlusQuery(benchmark::State& state, int pct) {
  const DatasetHandle handle = bench_util::SharedPrefixHandle(
      IipFull(), std::max(1, IipFull().num_objects() * pct / 100));
  const auto wr = WeightRatioConstraints::Create({{0.5, 2.0}}).value();
  const PreferenceRegion region = PreferenceRegion::FromWeightRatios(wr);
  int arsp_size = 0;
  for (auto _ : state) {
    // The engine-held view path: KDTT+'s SV(·) mapping is a zero-copy
    // window over the base context's one full mapping, so what remains per
    // query is the traversal — the honest counterpart of DUAL-MS's
    // amortized-preprocessing queries.
    const ArspResult result =
        bench_util::RunAlgoOnHandle("kdtt+", handle, region, &wr);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] =
      bench_util::SharedEngine().view(handle).num_instances();
  state.counters["arsp_size"] = arsp_size;
}

void RegisterAll() {
  for (int pct : {20, 40, 60, 80, 100}) {
    benchmark::RegisterBenchmark(
        ("Fig7b_IIP/m%=" + std::to_string(pct) + "/DUAL-MS").c_str(),
        [pct](benchmark::State& state) { BM_DualMsQuery(state, pct); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Fig7b_IIP/m%=" + std::to_string(pct) + "/KDTT+").c_str(),
        [pct](benchmark::State& state) { BM_KdttPlusQuery(state, pct); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterAll();
  return arsp::bench_util::BenchMain(argc, argv);
}
