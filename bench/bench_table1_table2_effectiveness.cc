// Copyright 2026 The ARSP Authors.
//
// Tables I and II (§V-B): the effectiveness study on the NBA-like dataset.
// Prints both tables in the paper's format — top-14 players by rskyline
// probability (with aggregated-rskyline membership marked "*") and top-14
// by plain skyline probability — followed by the quantitative observations
// the paper draws from them. This binary is a reproduction report rather
// than a timing benchmark, so it prints directly.
//
//   $ ./bench_table1_table2_effectiveness

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/certain_rskyline.h"
#include "src/core/skyline_probability.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {
namespace {

int Run() {
  const int players = std::max(100, static_cast<int>(
      1878 * bench_util::Scale() / 4));
  std::vector<std::string> names;
  const UncertainDataset nba = GenerateNbaLike(players, 3, 2021, &names);

  // F = {ω1·Rebound + ω2·Assist + ω3·Point | ω1 >= ω2 >= ω3} (the paper's
  // Table-I function set).
  const auto region = PreferenceRegion::FromLinearConstraints(
      MakeWeakRankingConstraints(3, 2));
  ARSP_CHECK(region.ok());

  const ArspResult rsky = bench_util::RunAlgo("kdtt+", nba, *region);
  const ArspResult sky = ComputeAllSkylineProbabilities(nba);
  const std::vector<Point> averages = AggregateByMean(nba);
  const std::vector<int> aggregated = ComputeRskyline(averages, *region);

  std::printf("== Table I: top-14 players in rskyline probability ranking\n");
  std::printf("   (* = member of the aggregated rskyline, |agg| = %zu)\n",
              aggregated.size());
  const auto top_rsky = TopKObjects(rsky, nba, 14);
  for (const auto& [player, prob] : top_rsky) {
    const bool agg =
        std::binary_search(aggregated.begin(), aggregated.end(), player);
    std::printf("  %s %-12s Pr_rsky = %.3f\n", agg ? "*" : " ",
                names[static_cast<size_t>(player)].c_str(), prob);
  }

  std::printf("\n== Table II: top-14 players in skyline probability ranking\n");
  const auto top_sky = TopKObjects(sky, nba, 14);
  for (const auto& [player, prob] : top_sky) {
    std::printf("    %-12s Pr_sky = %.3f\n",
                names[static_cast<size_t>(player)].c_str(), prob);
  }

  // ---- The paper's observations, checked quantitatively. ----
  const std::vector<double> rsky_obj = ObjectProbabilities(rsky, nba);
  const std::vector<double> sky_obj = ObjectProbabilities(sky, nba);

  // (1) Pr_rsky <= Pr_sky for every object (F strengthens dominance).
  int violations = 0;
  for (int j = 0; j < nba.num_objects(); ++j) {
    if (rsky_obj[static_cast<size_t>(j)] >
        sky_obj[static_cast<size_t>(j)] + 1e-9) {
      ++violations;
    }
  }

  // (2) Top skyline players also rank high in rskyline (Jokic/Westbrook
  // effect): overlap of the two top-14 sets.
  int overlap = 0;
  for (const auto& [p1, _] : top_rsky) {
    for (const auto& [p2, __] : top_sky) {
      if (p1 == p2) ++overlap;
    }
  }

  // (3) A high-skyline player can collapse under F (Trae Young effect):
  // the largest rskyline-rank drop among the skyline top-20.
  std::vector<int> order(static_cast<size_t>(nba.num_objects()));
  std::iota(order.begin(), order.end(), 0);
  auto rank_of = [&](const std::vector<double>& probs) {
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return probs[static_cast<size_t>(a)] > probs[static_cast<size_t>(b)];
    });
    std::vector<int> rank(order.size());
    for (size_t r = 0; r < sorted.size(); ++r) {
      rank[static_cast<size_t>(sorted[r])] = static_cast<int>(r) + 1;
    }
    return rank;
  };
  const std::vector<int> rr = rank_of(rsky_obj);
  const std::vector<int> sr = rank_of(sky_obj);
  int drop_player = 0, drop = 0;
  for (int j = 0; j < nba.num_objects(); ++j) {
    if (sr[static_cast<size_t>(j)] <= 20 &&
        rr[static_cast<size_t>(j)] - sr[static_cast<size_t>(j)] > drop) {
      drop = rr[static_cast<size_t>(j)] - sr[static_cast<size_t>(j)];
      drop_player = j;
    }
  }

  std::printf("\n== Observations (paper §V-B)\n");
  std::printf("  Pr_rsky <= Pr_sky violations: %d (paper: 0 by theory)\n",
              violations);
  std::printf("  aggregated-rskyline members in rskyline top-14: %d of %zu\n",
              static_cast<int>(std::count_if(
                  top_rsky.begin(), top_rsky.end(),
                  [&](const auto& e) {
                    return std::binary_search(aggregated.begin(),
                                              aggregated.end(), e.first);
                  })),
              aggregated.size());
  std::printf("  top-14 overlap between Table I and Table II: %d players\n",
              overlap);
  std::printf(
      "  largest rank drop among skyline top-20: %s (skyline #%d -> "
      "rskyline #%d; paper: Trae Young #7 -> #31)\n",
      names[static_cast<size_t>(drop_player)].c_str(),
      sr[static_cast<size_t>(drop_player)],
      rr[static_cast<size_t>(drop_player)]);
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace arsp

int main() { return arsp::Run(); }
