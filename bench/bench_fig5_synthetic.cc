// Copyright 2026 The ARSP Authors.
//
// Fig. 5 (a)–(q): running time of LOOP / KDTT / KDTT+ / QDTT+ / B&B and the
// ARSP size on synthetic datasets under WR linear constraints, sweeping
//   (a–c) object cardinality m          (IND / ANTI / CORR)
//   (d–f) instance count cnt            (IND / ANTI / CORR)
//   (g–i) dimensionality d              (IND / ANTI / CORR)
//   (j–l) region length l               (IND / ANTI / CORR)
//   (m–o) truncated-object fraction ϕ   (IND / ANTI / CORR)
//   (p–q) constraint count c, d = 6     (IND / ANTI)
//
// ENUM is omitted from the sweeps: it exceeds any time limit beyond toy
// sizes (the paper's "INF" lines); bench_ablations shows its exponential
// blow-up explicitly. Counters: n = instances, arsp_size = non-zero results.
//
// Cardinalities are scaled down from the paper's 16K-object default; see
// bench_util.h and EXPERIMENTS.md. ARSP_BENCH_SCALE multiplies them.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace arsp {
namespace {

using bench_util::AlgoCaps;
using bench_util::AlgoName;
using bench_util::kLinearAlgos;
using bench_util::MakeSynthetic;
using bench_util::MakeWrRegion;
using bench_util::RunAlgo;
using bench_util::ScaledM;

constexpr Distribution kDists[] = {Distribution::kIndependent,
                                   Distribution::kAntiCorrelated,
                                   Distribution::kCorrelated};

struct Workload {
  Distribution dist;
  int m, cnt, dim;
  double l, phi;
  int c;  // number of WR constraints
};

void RunCase(benchmark::State& state, const Workload& w,
             const std::string& algo) {
  const UncertainDataset dataset =
      MakeSynthetic(w.dist, w.m, w.cnt, w.dim, w.l, w.phi);
  const PreferenceRegion region = MakeWrRegion(w.dim, w.c);
  int arsp_size = 0;
  for (auto _ : state) {
    const ArspResult result = RunAlgo(algo, dataset, region);
    arsp_size = CountNonZero(result);
    benchmark::DoNotOptimize(arsp_size);
  }
  state.counters["n"] = dataset.num_instances();
  state.counters["m"] = dataset.num_objects();
  state.counters["arsp_size"] = arsp_size;
}

void Register(const std::string& name, const Workload& w,
              const std::string& algo) {
  benchmark::RegisterBenchmark(
      (name + "/" + AlgoName(algo)).c_str(),
      [w, algo](benchmark::State& state) { RunCase(state, w, algo); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

// Quadratic solvers (the registry's cost flag, i.e. LOOP) stay off the
// largest inputs so the full harness fits a laptop budget (the paper
// similarly cuts curves at INF).
bool TooBig(const std::string& algo, const Workload& w) {
  return (AlgoCaps(algo) & kCapQuadraticTime) != 0 && w.m * w.cnt / 2 > 16000;
}

void RegisterAll() {
  // ---- Fig. 5 (a)-(c): vary m. Defaults: cnt=20, d=4, l=0.2, phi=0, c=3.
  for (Distribution dist : kDists) {
    for (int base_m : {128, 256, 512, 1024}) {
      const Workload w{dist, ScaledM(base_m), 20, 4, 0.2, 0.0, 3};
      for (const char* algo : kLinearAlgos) {
        if (TooBig(algo, w)) continue;
        Register("Fig5_vary_m/" + std::string(DistributionName(dist)) +
                     "/m=" + std::to_string(w.m),
                 w, algo);
      }
    }
  }

  // ---- Fig. 5 (d)-(f): vary cnt at m=512.
  for (Distribution dist : kDists) {
    for (int cnt : {5, 10, 20, 40}) {
      const Workload w{dist, ScaledM(512), cnt, 4, 0.2, 0.0, 3};
      for (const char* algo : kLinearAlgos) {
        if (TooBig(algo, w)) continue;
        Register("Fig5_vary_cnt/" + std::string(DistributionName(dist)) +
                     "/cnt=" + std::to_string(cnt),
                 w, algo);
      }
    }
  }

  // ---- Fig. 5 (g)-(i): vary d at m=256, cnt=10.
  for (Distribution dist : kDists) {
    for (int d : {2, 3, 4, 5, 6, 8}) {
      const Workload w{dist, ScaledM(256), 10, d, 0.2, 0.0, d - 1};
      for (const char* algo : kLinearAlgos) {
        Register("Fig5_vary_d/" + std::string(DistributionName(dist)) +
                     "/d=" + std::to_string(d),
                 w, algo);
      }
    }
  }

  // ---- Fig. 5 (j)-(l): vary region length l at m=512, cnt=10.
  for (Distribution dist : kDists) {
    for (double l : {0.1, 0.2, 0.4, 0.6}) {
      const Workload w{dist, ScaledM(512), 10, 4, l, 0.0, 3};
      for (const char* algo : kLinearAlgos) {
        Register("Fig5_vary_l/" + std::string(DistributionName(dist)) +
                     "/l=" + std::to_string(l).substr(0, 3),
                 w, algo);
      }
    }
  }

  // ---- Fig. 5 (m)-(o): vary phi at m=512, cnt=10.
  for (Distribution dist : kDists) {
    for (double phi : {0.0, 0.1, 0.4, 0.8}) {
      const Workload w{dist, ScaledM(512), 10, 4, 0.2, phi, 3};
      for (const char* algo : kLinearAlgos) {
        Register("Fig5_vary_phi/" + std::string(DistributionName(dist)) +
                     "/phi=" + std::to_string(phi).substr(0, 3),
                 w, algo);
      }
    }
  }

  // ---- Fig. 5 (p)-(q): vary c at d=6 (IND and ANTI).
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kAntiCorrelated}) {
    for (int c : {1, 2, 3, 4, 5}) {
      const Workload w{dist, ScaledM(256), 10, 6, 0.2, 0.0, c};
      for (const char* algo : kLinearAlgos) {
        Register("Fig5_vary_c/" + std::string(DistributionName(dist)) +
                     "/c=" + std::to_string(c),
                 w, algo);
      }
    }
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterAll();
  return arsp::bench_util::BenchMain(argc, argv);
}
