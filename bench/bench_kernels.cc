// Copyright 2026 The ARSP Authors.
//
// The perf-trajectory driver behind BENCH_solver_hotpath.json: SIMD kernel
// microbenchmarks (src/simd/) plus the solver hot path those kernels feed,
// on the Fig. 6 NBA-like configuration. CI regenerates this driver's --json
// export every run and feeds it to tools/bench_diff.cc against the
// committed baseline; see ARCHITECTURE.md ("SIMD kernel layer") for how to
// regenerate the baseline after an intentional perf change.
//
// The exported entries fall in three groups:
//   Calibrate/* — a serial scalar workload (xorshift chain) that measures
//     raw machine speed; bench_diff normalizes every ns/op ratio by it so
//     the gate compares shapes, not absolute container speed.
//   Kernel/*    — each simd kernel on fixed-size streams, through the
//     active dispatch table (ARSP_KERNEL overrides).
//   Hotpath/*   — whole solves on the Fig. 6 NBA config, exporting the
//     deterministic work counters (dominance_tests, nodes_visited,
//     arsp_size) that bench_diff checks for exact equality.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/aligned.h"
#include "src/common/rng.h"
#include "src/simd/kernels.h"
#include "src/uncertain/generators.h"

namespace arsp {
namespace {

using bench_util::AlgoName;
using bench_util::MakeWrRegion;
using bench_util::RunAlgo;
using bench_util::ScaledM;

// The solvers whose hot loops run through the kernel layer (LOOP is
// deliberately absent: it is unkerneled, quadratic, and would dominate the
// CI gate's runtime while measuring nothing about this layer).
constexpr const char* kKernelizedAlgos[] = {"kdtt", "kdtt+", "qdtt+", "mwtt",
                                            "bnb"};

// ------------------------------------------------------------- calibration

// Serially dependent xorshift64 chain: the compiler cannot vectorize or
// reassociate it, so its ns/op tracks scalar core speed on any machine and
// any dispatch arch. bench_diff divides every other entry's ns/op by this
// one before comparing against the baseline.
void BM_Calibrate_Xorshift64(benchmark::State& state) {
  uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    for (int i = 0; i < (1 << 16); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Calibrate_Xorshift64);

// ---------------------------------------------------------- kernel streams

constexpr int kStreamRows = 4096;  // instances per synthetic stream
constexpr int kStreamDim = 4;      // the Fig. 6 NBA mapped dimensionality

AlignedVector<double> RandomStream(int count, uint64_t seed) {
  Rng rng(seed);
  AlignedVector<double> out(static_cast<size_t>(count));
  for (double& v : out) v = rng.Uniform(0.0, 1.0);
  return out;
}

const AlignedVector<double>& Coords() {
  static const auto* coords =
      new AlignedVector<double>(RandomStream(kStreamRows * kStreamDim, 17));
  return *coords;
}

const std::vector<int>& Ids() {
  static const auto* ids = new std::vector<int>([] {
    std::vector<int> v(kStreamRows);
    for (int i = 0; i < kStreamRows; ++i) v[static_cast<size_t>(i)] = i;
    return v;
  }());
  return *ids;
}

void BM_Kernel_SumProbs(benchmark::State& state) {
  const AlignedVector<double> probs = RandomStream(kStreamRows, 23);
  for (auto _ : state) {
    const double sum = simd::Ops().SumProbs(probs.data(), kStreamRows);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Kernel_SumProbs);

void BM_Kernel_MapPoint(benchmark::State& state) {
  // d = 8 data dimensions onto d' = 4 region vertices, one call per point —
  // the shape MapViewInto issues (input points are not contiguous).
  constexpr int kDataDim = 8;
  const AlignedVector<double> points =
      RandomStream(kStreamRows * kDataDim, 29);
  const AlignedVector<double> vt = RandomStream(kDataDim * kStreamDim, 31);
  AlignedVector<double> out(kStreamDim);
  for (auto _ : state) {
    for (int i = 0; i < kStreamRows; ++i) {
      simd::Ops().MapPoint(points.data() + i * kDataDim, kDataDim, vt.data(),
                           kStreamDim, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Kernel_MapPoint);

void BM_Kernel_DominanceCount(benchmark::State& state) {
  const AlignedVector<double> q = RandomStream(kStreamDim, 37);
  for (auto _ : state) {
    const int count = simd::Ops().DominanceCount(Coords().data(), kStreamRows,
                                                 kStreamDim, q.data());
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Kernel_DominanceCount);

void BM_Kernel_DominatedMask(benchmark::State& state) {
  const AlignedVector<double> q = RandomStream(kStreamDim, 41);
  std::vector<unsigned char> mask(kStreamRows);
  for (auto _ : state) {
    simd::Ops().DominatedMask(Coords().data(), kStreamRows, kStreamDim,
                              q.data(), mask.data());
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_Kernel_DominatedMask);

void BM_Kernel_AnyRowDominates(benchmark::State& state) {
  // Worst case: the query dominates every row, so no row ever dominates it
  // and the scan never exits early.
  const AlignedVector<double> q(kStreamDim, -1.0);
  for (auto _ : state) {
    const bool any = simd::Ops().AnyRowDominates(Coords().data(), kStreamRows,
                                                 kStreamDim, q.data());
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_Kernel_AnyRowDominates);

void BM_Kernel_ClassifyCorners(benchmark::State& state) {
  const AlignedVector<double> pmin(kStreamDim, 0.3);
  const AlignedVector<double> pmax(kStreamDim, 0.7);
  std::vector<unsigned char> classes(kStreamRows);
  for (auto _ : state) {
    simd::Ops().ClassifyCorners(Coords().data(), kStreamDim, Ids().data(),
                                kStreamRows, pmin.data(), pmax.data(),
                                classes.data());
    benchmark::DoNotOptimize(classes.data());
  }
}
BENCHMARK(BM_Kernel_ClassifyCorners);

void BM_Kernel_ScoreCorners(benchmark::State& state) {
  for (auto _ : state) {
    AlignedVector<double> pmin(kStreamDim, 1e300);
    AlignedVector<double> pmax(kStreamDim, -1e300);
    simd::Ops().ScoreCorners(Coords().data(), kStreamDim, Ids().data(),
                             kStreamRows, pmin.data(), pmax.data());
    benchmark::DoNotOptimize(pmin.data());
    benchmark::DoNotOptimize(pmax.data());
  }
}
BENCHMARK(BM_Kernel_ScoreCorners);

void BM_Kernel_BoundSweepMask(benchmark::State& state) {
  const AlignedVector<double> lower = RandomStream(kStreamRows, 43);
  const AlignedVector<double> pending = RandomStream(kStreamRows, 47);
  const std::vector<unsigned char> decided(kStreamRows, 0);
  std::vector<unsigned char> mask(kStreamRows);
  for (auto _ : state) {
    simd::Ops().BoundSweepMask(lower.data(), pending.data(), decided.data(),
                               kStreamRows, 1.0, mask.data());
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_Kernel_BoundSweepMask);

// ------------------------------------------------- solver hot path (Fig. 6)

// The Fig. 6 NBA-like configuration: d = 4 player stats under the WR region
// with c = 3 constraints. Cold solves (no pooling, no cache) — exactly what
// the kernels accelerate end to end.
const UncertainDataset& NbaDataset() {
  static const auto* dataset =
      new UncertainDataset(GenerateNbaLike(ScaledM(250), 4, 1003, nullptr));
  return *dataset;
}

void RunHotpath(benchmark::State& state, const std::string& algo) {
  const UncertainDataset& dataset = NbaDataset();
  const PreferenceRegion region = MakeWrRegion(dataset.dim(), 3);
  ArspResult result;
  for (auto _ : state) {
    result = RunAlgo(algo, dataset, region);
    benchmark::DoNotOptimize(result.instance_probs.data());
  }
  // Deterministic work counters: bench_diff requires these to match the
  // committed baseline exactly (a drifted counter means the algorithm
  // changed, not just the machine).
  state.counters["n"] = static_cast<double>(dataset.num_instances());
  state.counters["m"] = static_cast<double>(dataset.num_objects());
  state.counters["arsp_size"] = static_cast<double>(CountNonZero(result));
  state.counters["dominance_tests"] =
      static_cast<double>(result.dominance_tests);
  state.counters["nodes_visited"] = static_cast<double>(result.nodes_visited);
}

void RegisterHotpath() {
  for (const char* algo : kKernelizedAlgos) {
    benchmark::RegisterBenchmark(
        ("Hotpath/NBA/" + AlgoName(algo)).c_str(),
        [algo = std::string(algo)](benchmark::State& state) {
          RunHotpath(state, algo);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace arsp

int main(int argc, char** argv) {
  arsp::RegisterHotpath();
  return arsp::bench_util::BenchMain(argc, argv);
}
