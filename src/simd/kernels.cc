// Copyright 2026 The ARSP Authors.
//
// Dispatch-table resolution: pick the best table the CPU supports, honor a
// one-time ARSP_KERNEL override, and expose the test hook that swaps the
// active table in-process. The resolved table lives behind one atomic
// pointer — a hot-loop call is an atomic load plus an indirect call, and
// kernels amortize that over a whole batch.

#include "src/simd/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace arsp {
namespace simd {
namespace {

std::atomic<const KernelOps*> g_active{nullptr};
std::once_flag g_init_once;

// Best table the machine supports, ignoring the override.
const KernelOps* NativeOps() {
  if (const KernelOps* avx2 = internal::Avx2OpsOrNull()) return avx2;
  if (const KernelOps* neon = internal::NeonOpsOrNull()) return neon;
  return &internal::ScalarOps();
}

void InitActive() {
  const KernelOps* chosen = NativeOps();
  if (const char* env = std::getenv("ARSP_KERNEL");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = &internal::ScalarOps();
    } else if (std::strcmp(env, "avx2") == 0 &&
               internal::Avx2OpsOrNull() != nullptr) {
      chosen = internal::Avx2OpsOrNull();
    } else if (std::strcmp(env, "neon") == 0 &&
               internal::NeonOpsOrNull() != nullptr) {
      chosen = internal::NeonOpsOrNull();
    } else {
      std::fprintf(stderr,
                   "arsp: ARSP_KERNEL=%s not supported on this machine; "
                   "using scalar kernels\n",
                   env);
      chosen = &internal::ScalarOps();
    }
  }
  g_active.store(chosen, std::memory_order_release);
}

const KernelOps* Active() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  std::call_once(g_init_once, InitActive);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* KernelArchName(KernelArch arch) {
  switch (arch) {
    case KernelArch::kScalar:
      return "scalar";
    case KernelArch::kAvx2:
      return "avx2";
    case KernelArch::kNeon:
      return "neon";
  }
  return "unknown";
}

const KernelOps& Ops() { return *Active(); }

KernelArch ActiveArch() { return Active()->arch; }

const char* ActiveArchName() { return KernelArchName(ActiveArch()); }

std::vector<KernelArch> SupportedArches() {
  std::vector<KernelArch> arches = {KernelArch::kScalar};
  if (internal::Avx2OpsOrNull() != nullptr) {
    arches.push_back(KernelArch::kAvx2);
  }
  if (internal::NeonOpsOrNull() != nullptr) {
    arches.push_back(KernelArch::kNeon);
  }
  return arches;
}

namespace internal {

bool SetArchForTesting(KernelArch arch) {
  const KernelOps* table = nullptr;
  switch (arch) {
    case KernelArch::kScalar:
      table = &ScalarOps();
      break;
    case KernelArch::kAvx2:
      table = Avx2OpsOrNull();
      break;
    case KernelArch::kNeon:
      table = NeonOpsOrNull();
      break;
  }
  if (table == nullptr) return false;
  Active();  // ensure the one-time init has run (keeps ARSP_KERNEL parsing
             // from clobbering a later override)
  g_active.store(table, std::memory_order_release);
  return true;
}

}  // namespace internal
}  // namespace simd
}  // namespace arsp
