// Copyright 2026 The ARSP Authors.
//
// Portable reference implementation of the kernel table. This file defines
// the semantics — the SIMD backends must match it bit for bit — so keep
// every loop here boring and explicit: strict-inequality min/max updates,
// the 4-accumulator sum spec, sequential per-output dot products.

#include <cstddef>

#include "src/simd/kernels.h"

namespace arsp {
namespace simd {
namespace {

inline const double* Row(const double* coords, int dim, int id) {
  return coords + static_cast<size_t>(id) * static_cast<size_t>(dim);
}

void ClassifyCornersScalar(const double* coords, int dim, const int* ids,
                           int count, const double* pmin, const double* pmax,
                           unsigned char* out) {
  for (int c = 0; c < count; ++c) {
    const double* row = Row(coords, dim, ids[c]);
    bool le_min = true;
    bool le_max = true;
    for (int k = 0; k < dim; ++k) {
      le_min &= !(row[k] > pmin[k]);
      le_max &= !(row[k] > pmax[k]);
    }
    out[c] = le_min ? kClassDominatesMin
                    : (le_max ? kClassDominatesMax : kClassDiscard);
  }
}

void ScoreCornersScalar(const double* coords, int dim, const int* ids,
                        int count, double* pmin, double* pmax) {
  for (int c = 0; c < count; ++c) {
    const double* row = Row(coords, dim, ids[c]);
    for (int k = 0; k < dim; ++k) {
      if (row[k] < pmin[k]) pmin[k] = row[k];
      if (row[k] > pmax[k]) pmax[k] = row[k];
    }
  }
}

void DominatedMaskScalar(const double* rows, int n, int dim, const double* q,
                         unsigned char* out) {
  for (int i = 0; i < n; ++i) {
    const double* row = Row(rows, dim, i);
    bool dominated = true;
    for (int k = 0; k < dim; ++k) dominated &= !(q[k] > row[k]);
    out[i] = dominated ? 1 : 0;
  }
}

int DominanceCountScalar(const double* rows, int n, int dim,
                         const double* q) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    const double* row = Row(rows, dim, i);
    bool dominates = true;
    for (int k = 0; k < dim; ++k) dominates &= !(row[k] > q[k]);
    count += dominates ? 1 : 0;
  }
  return count;
}

bool AnyRowDominatesScalar(const double* rows, int n, int dim,
                           const double* q) {
  for (int i = 0; i < n; ++i) {
    const double* row = Row(rows, dim, i);
    bool dominates = true;
    for (int k = 0; k < dim; ++k) dominates &= !(row[k] > q[k]);
    if (dominates) return true;
  }
  return false;
}

void MapPointScalar(const double* t, int d, const double* vt, int dprime,
                    double* out) {
  for (int k = 0; k < dprime; ++k) out[k] = 0.0;
  for (int j = 0; j < d; ++j) {
    const double tj = t[j];
    const double* vrow = vt + static_cast<size_t>(j) * static_cast<size_t>(
                                                           dprime);
    for (int k = 0; k < dprime; ++k) out[k] += tj * vrow[k];
  }
}

double SumProbsScalar(const double* probs, int n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += probs[i];
    l1 += probs[i + 1];
    l2 += probs[i + 2];
    l3 += probs[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) sum += probs[i];
  return sum;
}

void BoundSweepMaskScalar(const double* lower, const double* pending,
                          const unsigned char* decided, int m,
                          double threshold, unsigned char* out) {
  for (int j = 0; j < m; ++j) {
    out[j] = (decided[j] == 0 && lower[j] + pending[j] < threshold) ? 1 : 0;
  }
}

const KernelOps kScalarOps = {
    KernelArch::kScalar,    ClassifyCornersScalar, ScoreCornersScalar,
    DominatedMaskScalar,    DominanceCountScalar,  AnyRowDominatesScalar,
    MapPointScalar,         SumProbsScalar,        BoundSweepMaskScalar,
};

}  // namespace

namespace internal {

const KernelOps& ScalarOps() { return kScalarOps; }

}  // namespace internal
}  // namespace simd
}  // namespace arsp
