// Copyright 2026 The ARSP Authors.
//
// NEON kernel table (aarch64, where Advanced SIMD is baseline — no runtime
// probe needed). Two doubles per register, paired where the bit-identity
// spec is 4-wide: SumProbs keeps two 2-lane accumulators standing in for
// lanes 0..3 of the 4-accumulator spec. Dot products use explicit
// vmulq/vaddq (never vfmaq — fusing would change the rounding the scalar
// reference defines), and min/max use compare-and-select rather than
// vminq/vmaxq, whose IEEE minNum semantics would pick -0.0 over +0.0
// regardless of operand order and break ±0.0 tie identity.

#include "src/simd/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace arsp {
namespace simd {
namespace {

inline const double* Row(const double* coords, int dim, int id) {
  return coords + static_cast<size_t>(id) * static_cast<size_t>(dim);
}

// True iff row[k] > a[k] for some k < dim.
inline bool ViolatesAgainst(const double* row, const double* a, int dim) {
  uint64x2_t viol = vdupq_n_u64(0);
  int k = 0;
  for (; k + 2 <= dim; k += 2) {
    viol = vorrq_u64(viol, vcgtq_f64(vld1q_f64(row + k), vld1q_f64(a + k)));
  }
  bool any = (vgetq_lane_u64(viol, 0) | vgetq_lane_u64(viol, 1)) != 0;
  if (k < dim) any |= row[k] > a[k];
  return any;
}

void ClassifyCornersNeon(const double* coords, int dim, const int* ids,
                         int count, const double* pmin, const double* pmax,
                         unsigned char* out) {
  for (int c = 0; c < count; ++c) {
    const double* row = Row(coords, dim, ids[c]);
    uint64x2_t viol_min = vdupq_n_u64(0);
    uint64x2_t viol_max = vdupq_n_u64(0);
    int k = 0;
    for (; k + 2 <= dim; k += 2) {
      const float64x2_t r = vld1q_f64(row + k);
      viol_min = vorrq_u64(viol_min, vcgtq_f64(r, vld1q_f64(pmin + k)));
      viol_max = vorrq_u64(viol_max, vcgtq_f64(r, vld1q_f64(pmax + k)));
    }
    bool gt_min =
        (vgetq_lane_u64(viol_min, 0) | vgetq_lane_u64(viol_min, 1)) != 0;
    bool gt_max =
        (vgetq_lane_u64(viol_max, 0) | vgetq_lane_u64(viol_max, 1)) != 0;
    if (k < dim) {
      gt_min |= row[k] > pmin[k];
      gt_max |= row[k] > pmax[k];
    }
    out[c] = !gt_min ? kClassDominatesMin
                     : (!gt_max ? kClassDominatesMax : kClassDiscard);
  }
}

void ScoreCornersNeon(const double* coords, int dim, const int* ids,
                      int count, double* pmin, double* pmax) {
  int k = 0;
  for (; k + 2 <= dim; k += 2) {
    float64x2_t mn = vld1q_f64(pmin + k);
    float64x2_t mx = vld1q_f64(pmax + k);
    for (int c = 0; c < count; ++c) {
      const float64x2_t r = vld1q_f64(Row(coords, dim, ids[c]) + k);
      // Strict-inequality select: ties (incl. ±0.0) keep the incumbent.
      mn = vbslq_f64(vcltq_f64(r, mn), r, mn);
      mx = vbslq_f64(vcgtq_f64(r, mx), r, mx);
    }
    vst1q_f64(pmin + k, mn);
    vst1q_f64(pmax + k, mx);
  }
  if (k < dim) {
    for (int c = 0; c < count; ++c) {
      const double v = Row(coords, dim, ids[c])[k];
      if (v < pmin[k]) pmin[k] = v;
      if (v > pmax[k]) pmax[k] = v;
    }
  }
}

void DominatedMaskNeon(const double* rows, int n, int dim, const double* q,
                       unsigned char* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = ViolatesAgainst(q, Row(rows, dim, i), dim) ? 0 : 1;
  }
}

int DominanceCountNeon(const double* rows, int n, int dim, const double* q) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    count += ViolatesAgainst(Row(rows, dim, i), q, dim) ? 0 : 1;
  }
  return count;
}

bool AnyRowDominatesNeon(const double* rows, int n, int dim,
                         const double* q) {
  for (int i = 0; i < n; ++i) {
    if (!ViolatesAgainst(Row(rows, dim, i), q, dim)) return true;
  }
  return false;
}

void MapPointNeon(const double* t, int d, const double* vt, int dprime,
                  double* out) {
  const size_t stride = static_cast<size_t>(dprime);
  int k = 0;
  for (; k + 2 <= dprime; k += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    const double* col = vt + k;
    for (int j = 0; j < d; ++j) {
      // Explicit mul + add (not vfmaq): matches scalar per-term rounding.
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(t[j]),
                                     vld1q_f64(col + stride *
                                                         static_cast<size_t>(
                                                             j))));
    }
    vst1q_f64(out + k, acc);
  }
  if (k < dprime) {
    double acc = 0.0;
    for (int j = 0; j < d; ++j) {
      acc += t[j] * vt[stride * static_cast<size_t>(j) +
                       static_cast<size_t>(k)];
    }
    out[k] = acc;
  }
}

double SumProbsNeon(const double* probs, int n) {
  // Lanes 0..3 of the 4-accumulator spec as two 2-lane registers.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(probs + i));
    acc23 = vaddq_f64(acc23, vld1q_f64(probs + i + 2));
  }
  const double s01 = vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1);
  const double s23 = vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1);
  double sum = s01 + s23;
  for (; i < n; ++i) sum += probs[i];
  return sum;
}

void BoundSweepMaskNeon(const double* lower, const double* pending,
                        const unsigned char* decided, int m, double threshold,
                        unsigned char* out) {
  const float64x2_t thr = vdupq_n_f64(threshold);
  int j = 0;
  for (; j + 2 <= m; j += 2) {
    const float64x2_t upper =
        vaddq_f64(vld1q_f64(lower + j), vld1q_f64(pending + j));
    const uint64x2_t lt = vcltq_f64(upper, thr);
    out[j] = (decided[j] == 0 && vgetq_lane_u64(lt, 0) != 0) ? 1 : 0;
    out[j + 1] = (decided[j + 1] == 0 && vgetq_lane_u64(lt, 1) != 0) ? 1 : 0;
  }
  for (; j < m; ++j) {
    out[j] = (decided[j] == 0 && lower[j] + pending[j] < threshold) ? 1 : 0;
  }
}

const KernelOps kNeonOps = {
    KernelArch::kNeon,    ClassifyCornersNeon, ScoreCornersNeon,
    DominatedMaskNeon,    DominanceCountNeon,  AnyRowDominatesNeon,
    MapPointNeon,         SumProbsNeon,        BoundSweepMaskNeon,
};

}  // namespace

namespace internal {

const KernelOps* NeonOpsOrNull() { return &kNeonOps; }

}  // namespace internal
}  // namespace simd
}  // namespace arsp

#else  // !aarch64

namespace arsp {
namespace simd {
namespace internal {

const KernelOps* NeonOpsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace arsp

#endif
