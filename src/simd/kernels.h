// Copyright 2026 The ARSP Authors.
//
// Runtime-dispatched SIMD kernels for the solver hot path. The §III–§IV
// traversal loops — coordinate-dominance tests, the SV(·) score mapping,
// and the GoalPruner's bound sweeps — all walk the SoA streams laid out by
// ScoreBuffer/ScoreSpan; this layer gives each loop one batched, branch-
// light kernel with three interchangeable implementations:
//
//   * scalar — portable reference, always available;
//   * avx2   — x86-64, 4 doubles per lane group (compiled into every
//              x86-64 build, selected only when CPUID reports AVX2);
//   * neon   — aarch64, 2 doubles per register, paired to the same 4-lane
//              reduction spec as avx2.
//
// One implementation is selected at startup (CPUID on x86-64, baseline on
// aarch64) and can be overridden with ARSP_KERNEL=scalar|avx2|neon —
// unsupported overrides fall back to scalar with a one-line warning. Tests
// additionally switch in-process via internal::SetArchForTesting.
//
// Bit-identity contract: every implementation of a kernel must produce
// results bit-identical to the scalar reference on the same inputs —
// comparisons are exact by nature, min/max keep the accumulator on ties
// (matching scalar strict-inequality updates, including -0.0/+0.0), and
// floating-point sums fix both the association (the 4-accumulator spec of
// SumProbs, the per-output sequential sums of MapPoint) and the operation
// set (separate multiply and add; no FMA contraction — the build sets
// -ffp-contract=off so scalar code cannot silently fuse either). The
// registry-wide equivalence suite in tests/simd_kernel_test.cc asserts
// bit-identical ArspResults per dispatch arch on top of the per-kernel
// sweeps.
//
// Alignment contract: ScoreBuffer allocates its coord/prob streams on
// 64-byte boundaries (cache-line aligned, zero false sharing between
// buffers); kernels must NOT rely on it — spans may window a parent buffer
// at any row offset and callers pass arbitrary stack arrays — so every
// implementation uses unaligned loads. Alignment is a throughput hint, not
// a precondition.

#ifndef ARSP_SIMD_KERNELS_H_
#define ARSP_SIMD_KERNELS_H_

#include <vector>

namespace arsp {
namespace simd {

/// The dispatchable implementations.
enum class KernelArch {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Canonical lower-case name ("scalar", "avx2", "neon") — the values
/// ARSP_KERNEL accepts, and what --stats / the daemon report.
const char* KernelArchName(KernelArch arch);

/// Candidate classification against a node's corners (FilterAspCandidates):
/// row ⪯ pmin → kDominatesMin (enters the dominating set D), else
/// row ⪯ pmax → kDominatesMax (stays a candidate), else kDiscard.
inline constexpr unsigned char kClassDiscard = 0;
inline constexpr unsigned char kClassDominatesMax = 1;
inline constexpr unsigned char kClassDominatesMin = 2;

/// One batched kernel per hot loop. All row pointers address row-major
/// storage with `dim` contiguous doubles per row; `ids` arguments gather
/// rows through a permutation (ScoreSpan row ids), plain `rows` arguments
/// are dense. No pointer may alias an output.
struct KernelOps {
  KernelArch arch;

  /// out[c] ∈ {kClassDiscard, kClassDominatesMax, kClassDominatesMin} for
  /// row ids[c] of `coords` against corners pmin/pmax (each `dim` doubles).
  void (*ClassifyCorners)(const double* coords, int dim, const int* ids,
                          int count, const double* pmin, const double* pmax,
                          unsigned char* out);

  /// Tightens pmin/pmax (already initialized) over rows ids[0..count):
  /// strict-inequality replacement, so ties keep the incumbent value.
  void (*ScoreCorners)(const double* coords, int dim, const int* ids,
                       int count, double* pmin, double* pmax);

  /// out[i] = 1 iff q ⪯ rows[i] (row i is dominated by q), else 0.
  void (*DominatedMask)(const double* rows, int n, int dim, const double* q,
                        unsigned char* out);

  /// Number of rows with rows[i] ⪯ q (rows dominating q).
  int (*DominanceCount)(const double* rows, int n, int dim, const double* q);

  /// True iff some row satisfies rows[i] ⪯ q. May exit early.
  bool (*AnyRowDominates)(const double* rows, int n, int dim,
                          const double* q);

  /// Score mapping of one point: out[k] = Σ_j t[j] · vt[j·dprime + k] for
  /// k < dprime, each output summed in ascending j with separate
  /// multiply/add — bit-identical to Point::Dot against vertex k. `vt` is
  /// the dim-major (transposed) vertex matrix, which makes k the dense
  /// vector axis. Backs ScoreMapper::MapInto/MapView.
  void (*MapPoint)(const double* t, int d, const double* vt, int dprime,
                   double* out);

  /// Σ probs[0..n) under the fixed 4-accumulator spec: lane c accumulates
  /// elements with index ≡ c (mod 4), combined as (l0+l1)+(l2+l3), then
  /// the < 4 tail elements are added sequentially. Every arch implements
  /// exactly this association (NEON pairs two 2-lane registers), so sums
  /// are bit-identical everywhere. Backs the GoalPruner's per-object
  /// pending-mass accumulation. (ObjectProbabilities deliberately stays a
  /// sequential scalar sum — its order is a cross-layer exactness
  /// contract with GoalPruner::Finish.)
  double (*SumProbs)(const double* probs, int n);

  /// GoalPruner τ/threshold sweep: out[j] = 1 iff decided[j] == 0 and
  /// lower[j] + pending[j] < threshold, else 0.
  void (*BoundSweepMask)(const double* lower, const double* pending,
                         const unsigned char* decided, int m,
                         double threshold, unsigned char* out);
};

/// The active dispatch table. Resolved once (CPUID/auxval + ARSP_KERNEL)
/// on first use; subsequent calls are a single atomic load.
const KernelOps& Ops();

/// Arch of the active table.
KernelArch ActiveArch();

/// KernelArchName(ActiveArch()).
const char* ActiveArchName();

/// Every arch this binary can run on this machine, scalar first. What the
/// per-arch test sweeps iterate.
std::vector<KernelArch> SupportedArches();

namespace internal {

/// Forces the active dispatch table (tests sweeping arches in-process).
/// Returns false — leaving the table unchanged — when `arch` is not in
/// SupportedArches(). Not synchronized with concurrent solves: call it
/// only between solves, like the test suites do.
bool SetArchForTesting(KernelArch arch);

/// The portable reference table (always valid).
const KernelOps& ScalarOps();

/// Arch-specific tables; nullptr when the build target or the running CPU
/// lacks the instruction set.
const KernelOps* Avx2OpsOrNull();
const KernelOps* NeonOpsOrNull();

}  // namespace internal
}  // namespace simd
}  // namespace arsp

#endif  // ARSP_SIMD_KERNELS_H_
