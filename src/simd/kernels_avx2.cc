// Copyright 2026 The ARSP Authors.
//
// AVX2 kernel table (x86-64). Compiled into every x86-64 build via
// per-function target attributes — no global -mavx2, so the rest of the
// binary stays baseline and the table is only selected when CPUID reports
// AVX2 at runtime. Deliberately avoids FMA: the bit-identity contract
// requires the scalar multiply-then-add rounding, so every dot product is
// an explicit _mm256_mul_pd followed by _mm256_add_pd, and min/max use
// MINPD/MAXPD with the accumulator as the second operand (ties and ±0.0
// keep the incumbent, matching the scalar strict-inequality update).
//
// Comparison loops accumulate violation masks branchlessly across the
// 4-wide (then 2-wide, then scalar) dimension chunks and test once per
// row — the branch-per-coordinate pattern of the scalar DominatesWeak is
// exactly what this file exists to remove.

#include "src/simd/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#define ARSP_AVX2 __attribute__((target("avx2")))

namespace arsp {
namespace simd {
namespace {

inline const double* Row(const double* coords, int dim, int id) {
  return coords + static_cast<size_t>(id) * static_cast<size_t>(dim);
}

// Violation masks of `row` against two reference rows a and b over dim
// coordinates: sets *gt_a iff row[k] > a[k] for some k, likewise *gt_b.
ARSP_AVX2 inline void ViolationsAgainstTwo(const double* row, const double* a,
                                           const double* b, int dim,
                                           bool* gt_a, bool* gt_b) {
  __m256d viol_a4 = _mm256_setzero_pd();
  __m256d viol_b4 = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= dim; k += 4) {
    const __m256d r = _mm256_loadu_pd(row + k);
    viol_a4 = _mm256_or_pd(
        viol_a4, _mm256_cmp_pd(r, _mm256_loadu_pd(a + k), _CMP_GT_OQ));
    viol_b4 = _mm256_or_pd(
        viol_b4, _mm256_cmp_pd(r, _mm256_loadu_pd(b + k), _CMP_GT_OQ));
  }
  bool va = _mm256_movemask_pd(viol_a4) != 0;
  bool vb = _mm256_movemask_pd(viol_b4) != 0;
  if (k + 2 <= dim) {
    const __m128d r = _mm_loadu_pd(row + k);
    va |= _mm_movemask_pd(_mm_cmpgt_pd(r, _mm_loadu_pd(a + k))) != 0;
    vb |= _mm_movemask_pd(_mm_cmpgt_pd(r, _mm_loadu_pd(b + k))) != 0;
    k += 2;
  }
  if (k < dim) {
    va |= row[k] > a[k];
    vb |= row[k] > b[k];
  }
  *gt_a = va;
  *gt_b = vb;
}

// Violation mask of `row` against one reference row.
ARSP_AVX2 inline bool ViolatesAgainst(const double* row, const double* a,
                                      int dim) {
  __m256d viol4 = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= dim; k += 4) {
    viol4 = _mm256_or_pd(
        viol4, _mm256_cmp_pd(_mm256_loadu_pd(row + k),
                             _mm256_loadu_pd(a + k), _CMP_GT_OQ));
  }
  bool viol = _mm256_movemask_pd(viol4) != 0;
  if (k + 2 <= dim) {
    viol |= _mm_movemask_pd(_mm_cmpgt_pd(_mm_loadu_pd(row + k),
                                         _mm_loadu_pd(a + k))) != 0;
    k += 2;
  }
  if (k < dim) viol |= row[k] > a[k];
  return viol;
}

ARSP_AVX2 void ClassifyCornersAvx2(const double* coords, int dim,
                                   const int* ids, int count,
                                   const double* pmin, const double* pmax,
                                   unsigned char* out) {
  for (int c = 0; c < count; ++c) {
    const double* row = Row(coords, dim, ids[c]);
    bool gt_min, gt_max;
    ViolationsAgainstTwo(row, pmin, pmax, dim, &gt_min, &gt_max);
    out[c] = !gt_min ? kClassDominatesMin
                     : (!gt_max ? kClassDominatesMax : kClassDiscard);
  }
}

ARSP_AVX2 void ScoreCornersAvx2(const double* coords, int dim, const int* ids,
                                int count, double* pmin, double* pmax) {
  int k = 0;
  for (; k + 4 <= dim; k += 4) {
    __m256d mn = _mm256_loadu_pd(pmin + k);
    __m256d mx = _mm256_loadu_pd(pmax + k);
    for (int c = 0; c < count; ++c) {
      const __m256d r = _mm256_loadu_pd(Row(coords, dim, ids[c]) + k);
      mn = _mm256_min_pd(r, mn);  // returns mn on ties: incumbent wins
      mx = _mm256_max_pd(r, mx);
    }
    _mm256_storeu_pd(pmin + k, mn);
    _mm256_storeu_pd(pmax + k, mx);
  }
  if (k + 2 <= dim) {
    __m128d mn = _mm_loadu_pd(pmin + k);
    __m128d mx = _mm_loadu_pd(pmax + k);
    for (int c = 0; c < count; ++c) {
      const __m128d r = _mm_loadu_pd(Row(coords, dim, ids[c]) + k);
      mn = _mm_min_pd(r, mn);
      mx = _mm_max_pd(r, mx);
    }
    _mm_storeu_pd(pmin + k, mn);
    _mm_storeu_pd(pmax + k, mx);
    k += 2;
  }
  if (k < dim) {
    for (int c = 0; c < count; ++c) {
      const double v = Row(coords, dim, ids[c])[k];
      if (v < pmin[k]) pmin[k] = v;
      if (v > pmax[k]) pmax[k] = v;
    }
  }
}

ARSP_AVX2 void DominatedMaskAvx2(const double* rows, int n, int dim,
                                 const double* q, unsigned char* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = ViolatesAgainst(q, Row(rows, dim, i), dim) ? 0 : 1;
  }
}

ARSP_AVX2 int DominanceCountAvx2(const double* rows, int n, int dim,
                                 const double* q) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    count += ViolatesAgainst(Row(rows, dim, i), q, dim) ? 0 : 1;
  }
  return count;
}

ARSP_AVX2 bool AnyRowDominatesAvx2(const double* rows, int n, int dim,
                                   const double* q) {
  for (int i = 0; i < n; ++i) {
    if (!ViolatesAgainst(Row(rows, dim, i), q, dim)) return true;
  }
  return false;
}

ARSP_AVX2 void MapPointAvx2(const double* t, int d, const double* vt,
                            int dprime, double* out) {
  const size_t stride = static_cast<size_t>(dprime);
  int k = 0;
  for (; k + 4 <= dprime; k += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* col = vt + k;
    for (int j = 0; j < d; ++j) {
      const __m256d prod = _mm256_mul_pd(
          _mm256_set1_pd(t[j]), _mm256_loadu_pd(col + stride * static_cast<
                                                              size_t>(j)));
      acc = _mm256_add_pd(acc, prod);  // no FMA: scalar rounding per term
    }
    _mm256_storeu_pd(out + k, acc);
  }
  if (k + 2 <= dprime) {
    __m128d acc = _mm_setzero_pd();
    const double* col = vt + k;
    for (int j = 0; j < d; ++j) {
      acc = _mm_add_pd(acc,
                       _mm_mul_pd(_mm_set1_pd(t[j]),
                                  _mm_loadu_pd(col + stride *
                                                         static_cast<size_t>(
                                                             j))));
    }
    _mm_storeu_pd(out + k, acc);
    k += 2;
  }
  for (; k < dprime; ++k) {
    double acc = 0.0;
    for (int j = 0; j < d; ++j) {
      acc += t[j] * vt[stride * static_cast<size_t>(j) +
                       static_cast<size_t>(k)];
    }
    out[k] = acc;
  }
}

ARSP_AVX2 double SumProbsAvx2(const double* probs, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(probs + i));
  }
  // The fixed combine order of the 4-accumulator spec: (l0+l1)+(l2+l3).
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const double s01 =
      _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double s23 =
      _mm_cvtsd_f64(hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  double sum = s01 + s23;
  for (; i < n; ++i) sum += probs[i];
  return sum;
}

ARSP_AVX2 void BoundSweepMaskAvx2(const double* lower, const double* pending,
                                  const unsigned char* decided, int m,
                                  double threshold, unsigned char* out) {
  const __m256d thr = _mm256_set1_pd(threshold);
  int j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d upper = _mm256_add_pd(_mm256_loadu_pd(lower + j),
                                        _mm256_loadu_pd(pending + j));
    const int bits = _mm256_movemask_pd(_mm256_cmp_pd(upper, thr,
                                                      _CMP_LT_OQ));
    out[j] = (decided[j] == 0 && (bits & 1)) ? 1 : 0;
    out[j + 1] = (decided[j + 1] == 0 && (bits & 2)) ? 1 : 0;
    out[j + 2] = (decided[j + 2] == 0 && (bits & 4)) ? 1 : 0;
    out[j + 3] = (decided[j + 3] == 0 && (bits & 8)) ? 1 : 0;
  }
  for (; j < m; ++j) {
    out[j] = (decided[j] == 0 && lower[j] + pending[j] < threshold) ? 1 : 0;
  }
}

const KernelOps kAvx2Ops = {
    KernelArch::kAvx2,    ClassifyCornersAvx2, ScoreCornersAvx2,
    DominatedMaskAvx2,    DominanceCountAvx2,  AnyRowDominatesAvx2,
    MapPointAvx2,         SumProbsAvx2,        BoundSweepMaskAvx2,
};

}  // namespace

namespace internal {

const KernelOps* Avx2OpsOrNull() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

}  // namespace internal
}  // namespace simd
}  // namespace arsp

#else  // !x86-64

namespace arsp {
namespace simd {
namespace internal {

const KernelOps* Avx2OpsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace arsp

#endif
