// Copyright 2026 The ARSP Authors.
//
// The .arsp columnar snapshot format — the out-of-core half of the data
// plane. A snapshot holds everything a daemon needs to serve a dataset:
// the dataset's columns, its tight bounds, both spatial indexes as flat
// arenas (KdTree and RTree node pools, exactly the in-memory layout), an
// optional pre-mapped score section tagged with the preference region's
// vertex hash, and optional object display names.
//
// Layout (all integers little-endian; the endian marker rejects foreign
// byte orders rather than translating them):
//
//   +--------------------+ 0
//   | SnapshotHeader     |  64 bytes: magic, version, endian, table size,
//   |                    |  content hash (the dataset fingerprint)
//   +--------------------+ 64
//   | SectionEntry[k]    |  32 bytes each: id, offset, length, FNV-1a
//   +--------------------+  checksum of the section bytes
//   | sections ...       |  each starting on a 64-byte boundary
//   +--------------------+
//
// Because every section is the exact byte image of a Column<T> arena, a
// load is: mmap the file, validate the table (and checksums, unless
// disabled), and point borrowed Columns at the mapped bytes. No parsing,
// no copying — the kernel pages data in on first touch, so a 10M-instance
// dataset serves queries with resident memory far below its file size.
//
// The content hash doubles as the daemon's registry fingerprint for
// snapshot-sourced LOAD_DATASET requests: two files with identical section
// content hash identically regardless of path or mtime.

#ifndef ARSP_IO_SNAPSHOT_H_
#define ARSP_IO_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

class PreferenceRegion;

namespace snapshot {

inline constexpr char kMagic[8] = {'A', 'R', 'S', 'P', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kEndianMarker = 0x01020304u;
inline constexpr size_t kSectionAlignment = 64;

/// Section ids. Order in the file follows this numbering; unknown ids in a
/// newer-minor file are skipped by readers (forward-compatible sections).
enum SectionId : uint32_t {
  kMeta = 1,             ///< SnapshotMeta (fixed 64-byte POD)
  kBounds = 2,           ///< 2·dim doubles: bounds min row, max row
  kCoords = 3,           ///< n × dim doubles, row-major
  kProbs = 4,            ///< n doubles
  kInstanceObjects = 5,  ///< n int32
  kObjectStarts = 6,     ///< m + 1 int32
  kObjectProbs = 7,      ///< m doubles
  kKdNodes = 8,          ///< KdNode pool
  kKdBounds = 9,         ///< kd node bounds, 2·dim doubles per node
  kKdItemCoords = 10,    ///< n × dim doubles (build order)
  kKdItemWeights = 11,   ///< n doubles
  kKdItemIds = 12,       ///< n int32
  kRtNodes = 13,         ///< RtNode pool
  kRtBounds = 14,        ///< rt node bounds, 2·dim doubles per node
  kRtKids = 15,          ///< rt kid slots, (max_entries + 1) int32 per node
  kRtEntryCoords = 16,   ///< n × dim doubles (leaf order)
  kRtEntryWeights = 17,  ///< n doubles
  kRtEntryIds = 18,      ///< n int32
  kScoreCoords = 19,     ///< n × mapped_dim doubles (optional)
  kScoreProbs = 20,      ///< n doubles (optional)
  kScoreObjects = 21,    ///< n int32 (optional)
  kNames = 22,           ///< '\n'-joined object names (optional)
};

/// Fixed 64-byte file header.
struct SnapshotHeader {
  char magic[8];
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t section_count = 0;
  uint32_t reserved = 0;
  uint64_t content_hash = 0;  ///< FNV-1a over the section table bytes
  uint8_t pad[32] = {};
};
static_assert(sizeof(SnapshotHeader) == 64, "header layout is part of the format");

/// One section table entry (32 bytes).
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;    ///< absolute byte offset; 64-byte aligned
  uint64_t length = 0;    ///< bytes
  uint64_t checksum = 0;  ///< FNV-1a over the section bytes
};
static_assert(sizeof(SectionEntry) == 32, "table layout is part of the format");

/// Dataset-shape metadata (fixed 64-byte POD in section kMeta).
struct SnapshotMeta {
  int32_t dim = 0;
  int32_t num_instances = 0;
  int32_t num_objects = 0;
  int32_t kd_leaf_size = 0;
  int32_t kd_num_nodes = 0;
  int32_t rt_fanout = 0;
  int32_t rt_num_nodes = 0;
  int32_t rt_root = -1;
  int32_t score_mapped_dim = 0;  ///< 0 when no score sections are present
  uint32_t flags = 0;            ///< kFlagHasScores | kFlagHasNames
  uint64_t score_vertex_hash = 0;
  uint8_t pad[16] = {};
};
static_assert(sizeof(SnapshotMeta) == 64, "meta layout is part of the format");

inline constexpr uint32_t kFlagHasScores = 1u << 0;
inline constexpr uint32_t kFlagHasNames = 1u << 1;

/// FNV-1a-64 over a byte range; the checksum and fingerprint primitive.
uint64_t Fnv1a(const void* data, size_t length,
               uint64_t seed = 1469598103934665603ull);

/// A read-only file mapping: POSIX mmap when available, a heap read
/// fallback otherwise. Loaded snapshots pin one of these via the dataset's
/// backing slot; borrowed columns point into data().
class MmapFile {
 public:
  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  static StatusOr<std::shared_ptr<const MmapFile>> Open(
      const std::string& path);

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  /// True when the file is kernel-mapped (pages on demand); false on the
  /// heap-read fallback (fully resident).
  bool mapped() const { return mapped_; }

 private:
  MmapFile() = default;
  void* addr_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

struct SnapshotWriteOptions {
  int kd_leaf_size = 16;
  int rtree_fanout = 16;
  /// When set, the writer pre-maps every instance through the region's
  /// ScoreMapper and ships the score columns, tagged with the mapper's
  /// vertex hash. Queries whose region hashes identically mmap their
  /// scores; all other queries map in memory as usual.
  const PreferenceRegion* scores_region = nullptr;
  /// Object display names ('\n' is reserved); empty = no names section.
  std::vector<std::string> object_names;
};

/// Builds both indexes over `dataset` and writes a version-1 snapshot.
/// The dataset must be in-memory (owned columns are not required, but the
/// writer reads every column once to checksum and serialize it).
Status WriteSnapshot(const UncertainDataset& dataset, const std::string& path,
                     const SnapshotWriteOptions& options = {});

struct SnapshotLoadOptions {
  /// Verify every section's FNV-1a checksum before use. Costs one
  /// sequential read of the file; structural validation (table bounds,
  /// section sizes, index shape) always runs regardless.
  bool verify_checksums = true;
};

/// A loaded snapshot: the dataset (columns borrowed from the mapping,
/// indexes and any score section attached), plus identity and size.
struct LoadedSnapshot {
  std::shared_ptr<const UncertainDataset> dataset;
  std::vector<std::string> object_names;  ///< empty when none were written
  uint64_t fingerprint = 0;               ///< header content hash
  size_t bytes_mapped = 0;                ///< file size backing the columns
  bool mapped = false;                    ///< false on the read fallback
};

/// Maps `path` and assembles the dataset with zero copy. InvalidArgument
/// on any malformed, truncated, foreign-endian, wrong-version, or (with
/// verification on) corrupted file.
StatusOr<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                      const SnapshotLoadOptions& options = {});

}  // namespace snapshot

/// Friend of UncertainDataset: assembles datasets around borrowed columns
/// for the snapshot loader.
class SnapshotLoader {
 public:
  static StatusOr<snapshot::LoadedSnapshot> Load(
      const std::string& path, const snapshot::SnapshotLoadOptions& options);
};

}  // namespace arsp

#endif  // ARSP_IO_SNAPSHOT_H_
