// Copyright 2026 The ARSP Authors.

#include "src/io/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/index/kdtree.h"
#include "src/index/rtree.h"
#include "src/prefs/score_mapper.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {
namespace snapshot {

uint64_t Fnv1a(const void* data, size_t length, uint64_t seed) {
  uint64_t h = seed;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < length; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ------------------------------------------------------------------ MmapFile

MmapFile::~MmapFile() {
  if (addr_ == nullptr) return;
  if (mapped_) {
    ::munmap(addr_, size_);
  } else {
    ::operator delete(addr_, std::align_val_t(kSectionAlignment));
  }
}

StatusOr<std::shared_ptr<const MmapFile>> MmapFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat('" + path + "'): " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("'" + path + "' is empty");
  }

  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->size_ = size;
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr != MAP_FAILED) {
    file->addr_ = addr;
    file->mapped_ = true;
    ::close(fd);
    return std::shared_ptr<const MmapFile>(std::move(file));
  }

  // Read fallback (filesystems without mmap support): fully resident, but
  // the loaded snapshot behaves identically.
  file->addr_ = ::operator new(size, std::align_val_t(kSectionAlignment));
  file->mapped_ = false;
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, static_cast<char*>(file->addr_) + done,
                               size - done);
    if (got <= 0) {
      const std::string err = got < 0 ? std::strerror(errno) : "short read";
      ::close(fd);
      return Status::Internal("read('" + path + "'): " + err);
    }
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  return std::shared_ptr<const MmapFile>(std::move(file));
}

// -------------------------------------------------------------------- writer

namespace {

struct SectionBlob {
  uint32_t id = 0;
  const void* data = nullptr;
  size_t length = 0;
};

size_t AlignUp(size_t v) {
  return (v + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

Status WriteFile(const std::string& path,
                 const SnapshotHeader& header,
                 const std::vector<SectionEntry>& table,
                 const std::vector<SectionBlob>& blobs) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot create '" + path +
                            "': " + std::strerror(errno));
  }
  const auto put = [out](const void* data, size_t length) {
    return length == 0 || std::fwrite(data, 1, length, out) == length;
  };
  static constexpr char kZeros[kSectionAlignment] = {};
  bool ok = put(&header, sizeof(header)) &&
            put(table.data(), table.size() * sizeof(SectionEntry));
  size_t pos = sizeof(header) + table.size() * sizeof(SectionEntry);
  for (size_t i = 0; ok && i < blobs.size(); ++i) {
    const size_t pad = table[i].offset - pos;
    ok = put(kZeros, pad) && put(blobs[i].data, blobs[i].length);
    pos = table[i].offset + blobs[i].length;
  }
  if (std::fclose(out) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const UncertainDataset& dataset, const std::string& path,
                     const SnapshotWriteOptions& options) {
  const int d = dataset.dim();
  const int n = dataset.num_instances();
  const int m = dataset.num_objects();
  if (d < 1) {
    return Status::InvalidArgument("cannot snapshot an unbuilt dataset");
  }
  if (!options.object_names.empty() &&
      static_cast<int>(options.object_names.size()) != m) {
    return Status::InvalidArgument("object_names must have one entry per "
                                   "object");
  }

  // Build the artifacts the snapshot ships. Index builds follow the exact
  // in-memory paths, so a loaded snapshot answers queries bit-identically
  // to a fresh build over the same data.
  const DatasetView view(dataset);
  const KdTree kdtree = KdTree::FromView(view, options.kd_leaf_size);
  const RTree rtree = RTree::BulkLoadFromView(view, options.rtree_fanout);

  ScoreBuffer scores;
  uint64_t vertex_hash = 0;
  int mapped_dim = 0;
  const bool has_scores = options.scores_region != nullptr;
  if (has_scores) {
    const ScoreMapper mapper(*options.scores_region);
    scores = mapper.MapView(view);
    vertex_hash = mapper.VertexHash();
    mapped_dim = mapper.mapped_dim();
  }

  std::string names_blob;
  const bool has_names = !options.object_names.empty();
  for (size_t j = 0; j < options.object_names.size(); ++j) {
    if (options.object_names[j].find('\n') != std::string::npos) {
      return Status::InvalidArgument("object names must not contain newlines");
    }
    if (j > 0) names_blob.push_back('\n');
    names_blob += options.object_names[j];
  }

  std::vector<double> bounds_rows(static_cast<size_t>(2 * d));
  if (n > 0) {
    for (int k = 0; k < d; ++k) {
      bounds_rows[static_cast<size_t>(k)] = dataset.bounds().min_corner()[k];
      bounds_rows[static_cast<size_t>(d + k)] = dataset.bounds().max_corner()[k];
    }
  } else {
    for (int k = 0; k < d; ++k) {
      bounds_rows[static_cast<size_t>(k)] =
          std::numeric_limits<double>::infinity();
      bounds_rows[static_cast<size_t>(d + k)] =
          -std::numeric_limits<double>::infinity();
    }
  }

  SnapshotMeta meta;
  meta.dim = d;
  meta.num_instances = n;
  meta.num_objects = m;
  meta.kd_leaf_size = options.kd_leaf_size;
  meta.kd_num_nodes = kdtree.num_nodes();
  meta.rt_fanout = options.rtree_fanout;
  meta.rt_num_nodes = rtree.num_nodes();
  meta.rt_root = rtree.root_id();
  meta.score_mapped_dim = mapped_dim;
  meta.flags = (has_scores ? kFlagHasScores : 0u) |
               (has_names ? kFlagHasNames : 0u);
  meta.score_vertex_hash = vertex_hash;

  std::vector<SectionBlob> blobs;
  const auto add = [&blobs](uint32_t id, const void* data, size_t length) {
    blobs.push_back(SectionBlob{id, data, length});
  };
  const auto add_col = [&add](uint32_t id, const auto& column) {
    add(id, column.data(), column.bytes());
  };
  add(kMeta, &meta, sizeof(meta));
  add(kBounds, bounds_rows.data(), bounds_rows.size() * sizeof(double));
  add_col(kCoords, dataset.coords_column());
  add_col(kProbs, dataset.probs_column());
  add_col(kInstanceObjects, dataset.instance_objects_column());
  add_col(kObjectStarts, dataset.object_starts_column());
  add_col(kObjectProbs, dataset.object_probs_column());
  add_col(kKdNodes, kdtree.nodes_column());
  add_col(kKdBounds, kdtree.node_bounds_column());
  add_col(kKdItemCoords, kdtree.item_coords_column());
  add_col(kKdItemWeights, kdtree.item_weights_column());
  add_col(kKdItemIds, kdtree.item_ids_column());
  add_col(kRtNodes, rtree.nodes_column());
  add_col(kRtBounds, rtree.node_bounds_column());
  add_col(kRtKids, rtree.node_kids_column());
  add_col(kRtEntryCoords, rtree.entry_coords_column());
  add_col(kRtEntryWeights, rtree.entry_weights_column());
  add_col(kRtEntryIds, rtree.entry_ids_column());
  if (has_scores) {
    add_col(kScoreCoords, scores.coords);
    add_col(kScoreProbs, scores.probs);
    add_col(kScoreObjects, scores.objects);
  }
  if (has_names) add(kNames, names_blob.data(), names_blob.size());

  // Lay out the section table, checksum each section, then fingerprint the
  // table itself — the content hash covers every section's id, placement,
  // and checksum, so it identifies the full content.
  std::vector<SectionEntry> table(blobs.size());
  size_t offset =
      sizeof(SnapshotHeader) + blobs.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < blobs.size(); ++i) {
    offset = AlignUp(offset);
    table[i].id = blobs[i].id;
    table[i].offset = offset;
    table[i].length = blobs[i].length;
    table[i].checksum = Fnv1a(blobs[i].data, blobs[i].length);
    offset += blobs[i].length;
  }

  SnapshotHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.endian = kEndianMarker;
  header.section_count = static_cast<uint32_t>(blobs.size());
  header.content_hash =
      Fnv1a(table.data(), table.size() * sizeof(SectionEntry));

  return WriteFile(path, header, table, blobs);
}

// -------------------------------------------------------------------- loader

StatusOr<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                      const SnapshotLoadOptions& options) {
  return SnapshotLoader::Load(path, options);
}

}  // namespace snapshot

namespace {

using snapshot::SectionEntry;
using snapshot::SnapshotHeader;
using snapshot::SnapshotMeta;

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed snapshot: " + what);
}

}  // namespace

StatusOr<snapshot::LoadedSnapshot> SnapshotLoader::Load(
    const std::string& path, const snapshot::SnapshotLoadOptions& options) {
  auto file_or = snapshot::MmapFile::Open(path);
  if (!file_or.ok()) return file_or.status();
  std::shared_ptr<const snapshot::MmapFile> file = std::move(*file_or);
  const uint8_t* base = file->data();
  const size_t size = file->size();

  // ---- header
  if (size < sizeof(SnapshotHeader)) return Malformed("truncated header");
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, snapshot::kMagic, sizeof(snapshot::kMagic)) !=
      0) {
    return Malformed("bad magic (not an .arsp snapshot)");
  }
  if (header.endian != snapshot::kEndianMarker) {
    return Malformed("foreign byte order");
  }
  if (header.version != snapshot::kVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(header.version) +
        " (this build reads version " + std::to_string(snapshot::kVersion) +
        ")");
  }
  if (header.section_count == 0 || header.section_count > 4096) {
    return Malformed("implausible section count");
  }
  const size_t table_bytes =
      static_cast<size_t>(header.section_count) * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > size) {
    return Malformed("truncated section table");
  }

  // ---- section table (always fingerprint-checked: it is cheap and the
  // content hash is the registry identity)
  std::vector<SectionEntry> table(header.section_count);
  std::memcpy(table.data(), base + sizeof(SnapshotHeader), table_bytes);
  if (snapshot::Fnv1a(table.data(), table_bytes) != header.content_hash) {
    return Malformed("section table does not match the header hash");
  }
  std::unordered_map<uint32_t, const SectionEntry*> by_id;
  for (const SectionEntry& entry : table) {
    if (entry.offset % snapshot::kSectionAlignment != 0 ||
        entry.offset < sizeof(SnapshotHeader) + table_bytes ||
        entry.offset > size || entry.length > size - entry.offset) {
      return Malformed("section " + std::to_string(entry.id) +
                       " is out of bounds");
    }
    if (!by_id.emplace(entry.id, &entry).second) {
      return Malformed("duplicate section " + std::to_string(entry.id));
    }
  }
  const auto find = [&by_id](uint32_t id) -> const SectionEntry* {
    const auto it = by_id.find(id);
    return it == by_id.end() ? nullptr : it->second;
  };
  const auto require = [&find](uint32_t id,
                               const SectionEntry** out) -> Status {
    *out = find(id);
    if (*out == nullptr) {
      return Malformed("missing section " + std::to_string(id));
    }
    return Status::OK();
  };

  if (options.verify_checksums) {
    for (const SectionEntry& entry : table) {
      if (snapshot::Fnv1a(base + entry.offset, entry.length) !=
          entry.checksum) {
        return Malformed("section " + std::to_string(entry.id) +
                         " failed its checksum");
      }
    }
  }

  // ---- meta + structural validation: every section length must match the
  // shape meta declares, so the borrowed columns below can never read past
  // their section even if file content is garbage.
  const SectionEntry* meta_entry = nullptr;
  ARSP_RETURN_IF_ERROR(require(snapshot::kMeta, &meta_entry));
  if (meta_entry->length != sizeof(SnapshotMeta)) {
    return Malformed("meta section has the wrong size");
  }
  SnapshotMeta meta;
  std::memcpy(&meta, base + meta_entry->offset, sizeof(meta));
  if (meta.dim < 1 || meta.num_instances < 0 || meta.num_objects < 0 ||
      meta.kd_num_nodes < 0 || meta.rt_num_nodes < 0 || meta.rt_fanout < 2 ||
      meta.score_mapped_dim < 0) {
    return Malformed("implausible meta shape");
  }
  const size_t d = static_cast<size_t>(meta.dim);
  const size_t n = static_cast<size_t>(meta.num_instances);
  const size_t m = static_cast<size_t>(meta.num_objects);

  const auto expect = [&require](uint32_t id, size_t count_bytes,
                                 const SectionEntry** out) -> Status {
    ARSP_RETURN_IF_ERROR(require(id, out));
    if ((*out)->length != count_bytes) {
      return Malformed("section " + std::to_string(id) +
                       " length disagrees with the meta shape");
    }
    return Status::OK();
  };

  const SectionEntry* bounds_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kBounds, 2 * d * sizeof(double), &bounds_s));
  const SectionEntry* coords_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kCoords, n * d * sizeof(double), &coords_s));
  const SectionEntry* probs_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kProbs, n * sizeof(double), &probs_s));
  const SectionEntry* iobj_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kInstanceObjects, n * sizeof(int32_t), &iobj_s));
  const SectionEntry* starts_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kObjectStarts, (m + 1) * sizeof(int32_t), &starts_s));
  const SectionEntry* oprobs_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kObjectProbs, m * sizeof(double), &oprobs_s));

  const size_t kd_nodes = static_cast<size_t>(meta.kd_num_nodes);
  const SectionEntry* kd_nodes_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kKdNodes, kd_nodes * sizeof(KdNode), &kd_nodes_s));
  const SectionEntry* kd_bounds_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kKdBounds, kd_nodes * 2 * d * sizeof(double), &kd_bounds_s));
  const SectionEntry* kd_coords_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kKdItemCoords, n * d * sizeof(double), &kd_coords_s));
  const SectionEntry* kd_weights_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kKdItemWeights, n * sizeof(double), &kd_weights_s));
  const SectionEntry* kd_ids_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kKdItemIds, n * sizeof(int32_t), &kd_ids_s));

  const size_t rt_nodes = static_cast<size_t>(meta.rt_num_nodes);
  const size_t rt_cap = static_cast<size_t>(meta.rt_fanout) + 1;
  const SectionEntry* rt_nodes_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtNodes, rt_nodes * sizeof(RtNode), &rt_nodes_s));
  const SectionEntry* rt_bounds_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtBounds, rt_nodes * 2 * d * sizeof(double), &rt_bounds_s));
  const SectionEntry* rt_kids_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtKids, rt_nodes * rt_cap * sizeof(int32_t), &rt_kids_s));
  const SectionEntry* rt_coords_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtEntryCoords, n * d * sizeof(double), &rt_coords_s));
  const SectionEntry* rt_weights_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtEntryWeights, n * sizeof(double), &rt_weights_s));
  const SectionEntry* rt_ids_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kRtEntryIds, n * sizeof(int32_t), &rt_ids_s));

  const auto f64 = [base](const SectionEntry* entry) {
    return Column<double>::Borrowed(
        reinterpret_cast<const double*>(base + entry->offset),
        entry->length / sizeof(double));
  };
  const auto i32 = [base](const SectionEntry* entry) {
    return Column<int32_t>::Borrowed(
        reinterpret_cast<const int32_t*>(base + entry->offset),
        entry->length / sizeof(int32_t));
  };

  // Object ranges are dereferenced unguarded by every solver, so their
  // monotonicity is a structural invariant, not a content detail.
  {
    const int32_t* starts =
        reinterpret_cast<const int32_t*>(base + starts_s->offset);
    if (starts[0] != 0 || starts[m] != static_cast<int32_t>(n)) {
      return Malformed("object starts do not cover the instance range");
    }
    for (size_t j = 0; j < m; ++j) {
      if (starts[j + 1] < starts[j]) {
        return Malformed("object starts are not monotonic");
      }
    }
  }

  auto dataset = std::make_shared<UncertainDataset>();
  dataset->dim_ = meta.dim;
  dataset->coords_ = f64(coords_s);
  dataset->probs_ = f64(probs_s);
  dataset->instance_objects_ = i32(iobj_s);
  dataset->object_starts_ = i32(starts_s);
  dataset->object_probs_ = f64(oprobs_s);
  if (n > 0) {
    const double* rows =
        reinterpret_cast<const double*>(base + bounds_s->offset);
    Point lo(meta.dim), hi(meta.dim);
    for (int k = 0; k < meta.dim; ++k) {
      lo[k] = rows[k];
      hi[k] = rows[meta.dim + k];
    }
    dataset->bounds_ = Mbr(std::move(lo), std::move(hi));
  } else {
    dataset->bounds_ = Mbr::Empty(meta.dim);
  }

  auto kdtree = std::make_shared<const KdTree>(
      KdTree::FromFlat(meta.dim, f64(kd_coords_s), f64(kd_weights_s),
                       i32(kd_ids_s), Column<KdNode>::Borrowed(
                           reinterpret_cast<const KdNode*>(
                               base + kd_nodes_s->offset),
                           kd_nodes),
                       f64(kd_bounds_s)));
  auto rtree = std::make_shared<const RTree>(RTree::FromFlat(
      meta.dim, meta.rt_fanout, meta.rt_root, meta.num_instances,
      Column<RtNode>::Borrowed(
          reinterpret_cast<const RtNode*>(base + rt_nodes_s->offset),
          rt_nodes),
      f64(rt_bounds_s), i32(rt_kids_s), f64(rt_coords_s), f64(rt_weights_s),
      i32(rt_ids_s)));
  dataset->AttachIndexes(std::move(kdtree), std::move(rtree), meta.rt_fanout);

  if (meta.flags & snapshot::kFlagHasScores) {
    const size_t dprime = static_cast<size_t>(meta.score_mapped_dim);
    const SectionEntry* sc_coords_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kScoreCoords, n * dprime * sizeof(double), &sc_coords_s));
    const SectionEntry* sc_probs_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kScoreProbs, n * sizeof(double), &sc_probs_s));
    const SectionEntry* sc_objects_s = nullptr;
  ARSP_RETURN_IF_ERROR(expect(snapshot::kScoreObjects, n * sizeof(int32_t), &sc_objects_s));
    auto scores = std::make_shared<AttachedScores>();
    scores->vertex_hash = meta.score_vertex_hash;
    scores->mapped_dim = meta.score_mapped_dim;
    scores->coords = f64(sc_coords_s);
    scores->probs = f64(sc_probs_s);
    scores->objects = i32(sc_objects_s);
    dataset->AttachScores(std::move(scores));
  }

  snapshot::LoadedSnapshot loaded;
  if (meta.flags & snapshot::kFlagHasNames) {
    const SectionEntry* names_s = nullptr;
    ARSP_RETURN_IF_ERROR(require(snapshot::kNames, &names_s));
    const char* blob = reinterpret_cast<const char*>(base + names_s->offset);
    const std::string joined(blob, names_s->length);
    size_t start = 0;
    while (loaded.object_names.size() < m) {
      const size_t split = joined.find('\n', start);
      if (split == std::string::npos) {
        loaded.object_names.push_back(joined.substr(start));
        start = joined.size() + 1;
        break;
      }
      loaded.object_names.push_back(joined.substr(start, split - start));
      start = split + 1;
    }
    if (loaded.object_names.size() != m) {
      return Malformed("names section does not have one name per object");
    }
  }

  dataset->set_backing(file);
  loaded.dataset = std::move(dataset);
  loaded.fingerprint = header.content_hash;
  loaded.bytes_mapped = size;
  loaded.mapped = file->mapped();
  return loaded;
}

}  // namespace arsp
