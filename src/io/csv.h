// Copyright 2026 The ARSP Authors.
//
// CSV import/export so the library is usable on real datasets without
// writing C++: uncertain datasets load from a simple instance-per-row
// format, results export per instance or per object.

#ifndef ARSP_IO_CSV_H_
#define ARSP_IO_CSV_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/arsp_result.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Parses an uncertain dataset from CSV text.
///
/// Format: one instance per row,
///     object,prob,attr1,attr2,...,attrD
/// where `object` is an arbitrary string key grouping instances into
/// uncertain objects (first appearance fixes the object order), `prob` is
/// the instance's existence probability, and all rows must agree on D.
/// Lines starting with '#' and blank lines are skipped. If `header` is
/// true, the first data line is skipped as a header.
///
/// On success, `object_names` (if non-null) receives the object key for
/// each object id.
StatusOr<UncertainDataset> ParseUncertainDatasetCsv(
    const std::string& text, bool header = false,
    std::vector<std::string>* object_names = nullptr);

/// Reads and parses a CSV file (see ParseUncertainDatasetCsv).
StatusOr<UncertainDataset> LoadUncertainDatasetCsv(
    const std::string& path, bool header = false,
    std::vector<std::string>* object_names = nullptr);

/// Renders per-instance results as CSV:
///     object,instance,prob,pr_rsky
/// `object_names` is optional (object ids are used when absent).
std::string FormatArspResultCsv(
    const ArspResult& result, const UncertainDataset& dataset,
    const std::vector<std::string>* object_names = nullptr);

/// Renders per-object results as CSV sorted by descending probability:
///     object,pr_rsky
std::string FormatObjectResultCsv(
    const ArspResult& result, const UncertainDataset& dataset,
    const std::vector<std::string>* object_names = nullptr);

/// Writes text to a file.
Status WriteTextFile(const std::string& path, const std::string& text);

/// Strips leading/trailing spaces, tabs, and carriage returns — the
/// whitespace convention shared by CSV parsing and CLI batch files.
std::string Trim(const std::string& s);

}  // namespace arsp

#endif  // ARSP_IO_CSV_H_
