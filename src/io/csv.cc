// Copyright 2026 The ARSP Authors.

#include "src/io/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace arsp {

namespace {

// Splits one CSV line on commas (no quoting — attribute data is numeric).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

// Strict double parse with leading/trailing whitespace tolerance. Rejects
// non-finite values: strtod happily parses "nan"/"inf", which would poison
// every downstream comparison (dominance tests, tree bounds) — a malformed
// file must fail at the parse boundary, not corrupt a running daemon.
bool ParseDouble(const std::string& text, double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE || !std::isfinite(*out)) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

}  // namespace

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

StatusOr<UncertainDataset> ParseUncertainDatasetCsv(
    const std::string& text, bool header,
    std::vector<std::string>* object_names) {
  std::stringstream stream(text);
  std::string line;
  int line_number = 0;
  bool skipped_header = !header;
  int dim = -1;

  // Preserve first-appearance object order.
  std::map<std::string, int> object_ids;
  std::vector<std::string> names;
  std::vector<std::vector<Point>> points;
  std::vector<std::vector<double>> probs;
  std::vector<double> totals;  ///< running Σp per object, for line errors

  while (std::getline(stream, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(trimmed);
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected object,prob,attr1[,...] (got " +
          std::to_string(fields.size()) + " fields)");
    }
    const int row_dim = static_cast<int>(fields.size()) - 2;
    if (dim < 0) {
      dim = row_dim;
    } else if (row_dim != dim) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(dim) + " attributes, got " + std::to_string(row_dim));
    }

    const std::string key = Trim(fields[0]);
    if (key.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": empty object key");
    }
    double prob = 0.0;
    if (!ParseDouble(fields[1], &prob)) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad probability '" + fields[1] + "'");
    }
    // Range checks live here, not only in UncertainDatasetBuilder, so the
    // error names the offending line instead of an anonymous object index.
    if (prob <= 0.0 || prob > 1.0) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": probability " +
          fields[1] + " outside (0, 1]");
    }
    Point p(dim);
    for (int k = 0; k < dim; ++k) {
      double v = 0.0;
      if (!ParseDouble(fields[static_cast<size_t>(k) + 2], &v)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": bad attribute '" +
            fields[static_cast<size_t>(k) + 2] + "'");
      }
      p[k] = v;
    }

    auto [it, inserted] =
        object_ids.emplace(key, static_cast<int>(names.size()));
    if (inserted) {
      names.push_back(key);
      points.emplace_back();
      probs.emplace_back();
      totals.push_back(0.0);
    }
    // The builder re-validates Σp ≤ 1, but only this loop still knows which
    // row crossed the bound — fail here with the line and the object key.
    totals[static_cast<size_t>(it->second)] += prob;
    if (totals[static_cast<size_t>(it->second)] > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": probabilities of '" +
          key + "' sum to " +
          std::to_string(totals[static_cast<size_t>(it->second)]) +
          " (> 1)");
    }
    points[static_cast<size_t>(it->second)].push_back(std::move(p));
    probs[static_cast<size_t>(it->second)].push_back(prob);
  }

  if (dim < 0) {
    return Status::InvalidArgument("no data rows found");
  }
  UncertainDatasetBuilder builder(dim);
  for (size_t j = 0; j < names.size(); ++j) {
    builder.AddObject(std::move(points[j]), std::move(probs[j]));
  }
  auto dataset = builder.Build();
  if (!dataset.ok()) return dataset.status();
  if (object_names != nullptr) *object_names = std::move(names);
  return std::move(dataset).value();
}

StatusOr<UncertainDataset> LoadUncertainDatasetCsv(
    const std::string& path, bool header,
    std::vector<std::string>* object_names) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseUncertainDatasetCsv(buffer.str(), header, object_names);
}

std::string FormatArspResultCsv(
    const ArspResult& result, const UncertainDataset& dataset,
    const std::vector<std::string>* object_names) {
  ARSP_CHECK(static_cast<int>(result.instance_probs.size()) ==
             dataset.num_instances());
  std::string out = "object,instance,prob,pr_rsky\n";
  char buf[128];
  for (int i = 0; i < dataset.num_instances(); ++i) {
    const int object_id = dataset.object_of(i);
    const std::string name =
        object_names != nullptr
            ? (*object_names)[static_cast<size_t>(object_id)]
            : std::to_string(object_id);
    std::snprintf(buf, sizeof(buf), "%s,%d,%.17g,%.17g\n", name.c_str(), i,
                  dataset.prob(i),
                  result.instance_probs[static_cast<size_t>(i)]);
    out += buf;
  }
  return out;
}

std::string FormatObjectResultCsv(
    const ArspResult& result, const UncertainDataset& dataset,
    const std::vector<std::string>* object_names) {
  std::string out = "object,pr_rsky\n";
  char buf[128];
  for (const auto& [object, prob] : TopKObjects(result, dataset, -1)) {
    const std::string name =
        object_names != nullptr ? (*object_names)[static_cast<size_t>(object)]
                                : std::to_string(object);
    std::snprintf(buf, sizeof(buf), "%s,%.17g\n", name.c_str(), prob);
    out += buf;
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file << text;
  if (!file) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace arsp
