// Copyright 2026 The ARSP Authors.
//
// Minimum bounding rectangles (hyper-rectangles) used by every spatial index
// in the library and by the kd/quad traversal algorithms' pruning tests.

#ifndef ARSP_GEOMETRY_MBR_H_
#define ARSP_GEOMETRY_MBR_H_

#include <string>
#include <vector>

#include "src/geometry/point.h"

namespace arsp {

/// Axis-aligned minimum bounding rectangle [min, max] in R^d.
class Mbr {
 public:
  Mbr() = default;

  /// An "empty" MBR of the given dimension: min = +inf, max = -inf, so that
  /// Extend() of any point produces that point's degenerate box.
  static Mbr Empty(int dim);

  /// The degenerate box covering a single point.
  static Mbr OfPoint(const Point& p);

  /// The tight box covering a set of points; `points` must be non-empty.
  static Mbr OfPoints(const std::vector<Point>& points);

  /// Box with explicit corners; requires min[i] <= max[i] for all i.
  Mbr(Point min_corner, Point max_corner);

  int dim() const { return min_.dim(); }
  const Point& min_corner() const { return min_; }
  const Point& max_corner() const { return max_; }

  /// True if no point was ever added.
  bool IsEmpty() const;

  /// Grows the box to cover p.
  void Extend(const Point& p);
  /// Grows the box to cover another box.
  void Extend(const Mbr& other);
  /// Raw-row variant of Extend for columnar storage: `coords` is dim()
  /// contiguous doubles.
  void ExtendRow(const double* coords);

  /// True iff p lies inside the box (inclusive bounds).
  bool Contains(const Point& p) const;
  /// Raw-row variant of Contains.
  bool ContainsRow(const double* coords) const;

  /// True iff the boxes intersect (inclusive bounds).
  bool Intersects(const Mbr& other) const;

  /// d-dimensional volume; 0 for empty boxes.
  double Volume() const;

  /// Sum of edge lengths (margin), used by R-tree split heuristics.
  double Margin() const;

  /// Volume of the intersection with `other`.
  double OverlapVolume(const Mbr& other) const;

  /// Volume increase caused by extending this box to cover `other`.
  double Enlargement(const Mbr& other) const;

  std::string ToString() const;

 private:
  Point min_;
  Point max_;
};

}  // namespace arsp

#endif  // ARSP_GEOMETRY_MBR_H_
