// Copyright 2026 The ARSP Authors.

#include "src/geometry/mbr.h"

#include <algorithm>
#include <limits>

namespace arsp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Mbr Mbr::Empty(int dim) {
  Mbr box;
  box.min_ = Point(dim);
  box.max_ = Point(dim);
  for (int i = 0; i < dim; ++i) {
    box.min_[i] = kInf;
    box.max_[i] = -kInf;
  }
  return box;
}

Mbr Mbr::OfPoint(const Point& p) { return Mbr(p, p); }

Mbr Mbr::OfPoints(const std::vector<Point>& points) {
  ARSP_CHECK(!points.empty());
  Mbr box = Mbr::Empty(points.front().dim());
  for (const Point& p : points) box.Extend(p);
  return box;
}

Mbr::Mbr(Point min_corner, Point max_corner)
    : min_(std::move(min_corner)), max_(std::move(max_corner)) {
  ARSP_CHECK(min_.dim() == max_.dim());
  for (int i = 0; i < dim(); ++i) ARSP_CHECK(min_[i] <= max_[i]);
}

bool Mbr::IsEmpty() const {
  if (dim() == 0) return true;
  return min_[0] > max_[0];
}

void Mbr::Extend(const Point& p) {
  ARSP_CHECK(p.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    min_[i] = std::min(min_[i], p[i]);
    max_[i] = std::max(max_[i], p[i]);
  }
}

void Mbr::Extend(const Mbr& other) {
  ARSP_CHECK(other.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    min_[i] = std::min(min_[i], other.min_[i]);
    max_[i] = std::max(max_[i], other.max_[i]);
  }
}

void Mbr::ExtendRow(const double* coords) {
  for (int i = 0; i < dim(); ++i) {
    min_[i] = std::min(min_[i], coords[i]);
    max_[i] = std::max(max_[i], coords[i]);
  }
}

bool Mbr::ContainsRow(const double* coords) const {
  for (int i = 0; i < dim(); ++i) {
    if (coords[i] < min_[i] || coords[i] > max_[i]) return false;
  }
  return true;
}

bool Mbr::Contains(const Point& p) const {
  ARSP_DCHECK(p.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < min_[i] || p[i] > max_[i]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  ARSP_DCHECK(other.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    if (other.max_[i] < min_[i] || other.min_[i] > max_[i]) return false;
  }
  return true;
}

double Mbr::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (int i = 0; i < dim(); ++i) v *= (max_[i] - min_[i]);
  return v;
}

double Mbr::Margin() const {
  if (IsEmpty()) return 0.0;
  double s = 0.0;
  for (int i = 0; i < dim(); ++i) s += (max_[i] - min_[i]);
  return s;
}

double Mbr::OverlapVolume(const Mbr& other) const {
  ARSP_DCHECK(other.dim() == dim());
  double v = 1.0;
  for (int i = 0; i < dim(); ++i) {
    double lo = std::max(min_[i], other.min_[i]);
    double hi = std::min(max_[i], other.max_[i]);
    if (hi <= lo) return 0.0;
    v *= (hi - lo);
  }
  return v;
}

double Mbr::Enlargement(const Mbr& other) const {
  Mbr merged = *this;
  merged.Extend(other);
  return merged.Volume() - Volume();
}

std::string Mbr::ToString() const {
  return "[" + min_.ToString() + ", " + max_.ToString() + "]";
}

}  // namespace arsp
