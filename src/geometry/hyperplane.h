// Copyright 2026 The ARSP Authors.
//
// Non-vertical hyperplanes x[d] = a[1]x[1] + ... + a[d-1]x[d-1] - a[d] and
// the classic point-hyperplane duality used in Section IV of the paper.

#ifndef ARSP_GEOMETRY_HYPERPLANE_H_
#define ARSP_GEOMETRY_HYPERPLANE_H_

#include <vector>

#include "src/geometry/point.h"

namespace arsp {

/// A non-vertical hyperplane in R^d written as
///   x[d] = coef[0]*x[1] + ... + coef[d-2]*x[d-1] - offset .
///
/// This is exactly the parameterization in the paper's duality discussion:
/// point p = (p1..pd) maps to p* : x[d] = p1 x1 + ... + p_{d-1} x_{d-1} - pd,
/// and hyperplane h with coefficients (a1..a_{d-1}, ad) maps to the point
/// h* = (a1, ..., ad). Duality preserves above/below relations.
class Hyperplane {
 public:
  Hyperplane() = default;

  /// Hyperplane with slope coefficients (size d-1) and offset term.
  Hyperplane(std::vector<double> coef, double offset)
      : coef_(std::move(coef)), offset_(offset) {}

  /// Ambient dimension d.
  int dim() const { return static_cast<int>(coef_.size()) + 1; }

  const std::vector<double>& coef() const { return coef_; }
  double offset() const { return offset_; }

  /// Height of the hyperplane above the projection of p onto the first d-1
  /// coordinates, i.e. the x[d] value of the hyperplane at p's location.
  double HeightAt(const Point& p) const;

  /// Signed vertical distance of p above the plane: p[d] - HeightAt(p).
  /// Positive = above, negative = below, ~0 = on.
  double SignedDistance(const Point& p) const;
  /// Raw-row variant of SignedDistance (`coords` is dim() contiguous
  /// doubles); bit-identical to the Point form.
  double SignedDistanceRow(const double* coords) const;

  /// True iff p lies below or on the hyperplane (tolerance eps).
  bool BelowOrOn(const Point& p, double eps = 1e-12) const;

  /// Dual transform of a point: p -> p*.
  static Hyperplane DualOfPoint(const Point& p);

  /// Dual transform of a hyperplane: h -> h*.
  Point DualPoint() const;

 private:
  std::vector<double> coef_;
  double offset_ = 0.0;
};

}  // namespace arsp

#endif  // ARSP_GEOMETRY_HYPERPLANE_H_
