// Copyright 2026 The ARSP Authors.

#include "src/geometry/linalg.h"

#include <cmath>

#include "src/common/macros.h"

namespace arsp {

std::optional<std::vector<double>> SolveLinearSystem(
    const Matrix& a, const std::vector<double>& b, double tol) {
  const int n = a.rows();
  ARSP_CHECK(a.cols() == n);
  ARSP_CHECK(static_cast<int>(b.size()) == n);

  // Augmented working copy [A | b].
  Matrix w(n, n + 1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) w(r, c) = a(r, c);
    w(r, n) = b[static_cast<size_t>(r)];
  }

  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::fabs(w(col, col));
    for (int r = col + 1; r < n; ++r) {
      double v = std::fabs(w(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < tol) return std::nullopt;
    if (pivot != col) {
      for (int c = col; c <= n; ++c) std::swap(w(pivot, c), w(col, c));
    }
    const double inv = 1.0 / w(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = w(r, col) * inv;
      if (factor == 0.0) continue;
      for (int c = col; c <= n; ++c) w(r, c) -= factor * w(col, c);
    }
  }

  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double sum = w(r, n);
    for (int c = r + 1; c < n; ++c) sum -= w(r, c) * x[static_cast<size_t>(c)];
    x[static_cast<size_t>(r)] = sum / w(r, r);
  }
  return x;
}

}  // namespace arsp
