// Copyright 2026 The ARSP Authors.

#include "src/geometry/point.h"

#include <cstdio>

namespace arsp {

Point Point::operator-(const Point& other) const {
  ARSP_CHECK(dim() == other.dim());
  Point out(dim());
  for (int i = 0; i < dim(); ++i) out[i] = (*this)[i] - other[i];
  return out;
}

Point Point::operator+(const Point& other) const {
  ARSP_CHECK(dim() == other.dim());
  Point out(dim());
  for (int i = 0; i < dim(); ++i) out[i] = (*this)[i] + other[i];
  return out;
}

double Point::Dot(const Point& other) const {
  ARSP_CHECK(dim() == other.dim());
  double sum = 0.0;
  for (int i = 0; i < dim(); ++i) sum += (*this)[i] * other[i];
  return sum;
}

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dim(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", (*this)[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

bool DominatesWeak(const Point& a, const Point& b) {
  ARSP_DCHECK(a.dim() == b.dim());
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool DominatesStrict(const Point& a, const Point& b) {
  ARSP_DCHECK(a.dim() == b.dim());
  bool strictly_better = false;
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool LexLess(const Point& a, const Point& b) {
  ARSP_DCHECK(a.dim() == b.dim());
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

}  // namespace arsp
