// Copyright 2026 The ARSP Authors.
//
// Small dense linear algebra: just enough to enumerate the vertices of the
// preference polytope (solving d x d systems arising from active-constraint
// subsets). Dimensions are tiny (d <= ~10), so a pivoted Gaussian
// elimination is both exact enough and fast.

#ifndef ARSP_GEOMETRY_LINALG_H_
#define ARSP_GEOMETRY_LINALG_H_

#include <optional>
#include <vector>

namespace arsp {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Solves A x = b for a square A with partial pivoting.
///
/// Returns std::nullopt when A is singular (pivot below `tol`), which the
/// vertex-enumeration caller interprets as "this constraint subset does not
/// define a unique vertex".
std::optional<std::vector<double>> SolveLinearSystem(
    const Matrix& a, const std::vector<double>& b, double tol = 1e-10);

}  // namespace arsp

#endif  // ARSP_GEOMETRY_LINALG_H_
