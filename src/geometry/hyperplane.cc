// Copyright 2026 The ARSP Authors.

#include "src/geometry/hyperplane.h"

namespace arsp {

double Hyperplane::HeightAt(const Point& p) const {
  ARSP_DCHECK(p.dim() >= dim() - 1);
  double h = -offset_;
  for (size_t i = 0; i < coef_.size(); ++i) {
    h += coef_[i] * p[static_cast<int>(i)];
  }
  return h;
}

double Hyperplane::SignedDistance(const Point& p) const {
  ARSP_DCHECK(p.dim() == dim());
  return p[dim() - 1] - HeightAt(p);
}

double Hyperplane::SignedDistanceRow(const double* coords) const {
  // Mirrors HeightAt's summation order exactly so the raw-row path used by
  // the flattened kd-tree is bit-identical to the Point path.
  double h = -offset_;
  for (size_t i = 0; i < coef_.size(); ++i) {
    h += coef_[i] * coords[i];
  }
  return coords[dim() - 1] - h;
}

bool Hyperplane::BelowOrOn(const Point& p, double eps) const {
  return SignedDistance(p) <= eps;
}

Hyperplane Hyperplane::DualOfPoint(const Point& p) {
  std::vector<double> coef(static_cast<size_t>(p.dim() - 1));
  for (int i = 0; i + 1 < p.dim(); ++i) coef[static_cast<size_t>(i)] = p[i];
  return Hyperplane(std::move(coef), p[p.dim() - 1]);
}

Point Hyperplane::DualPoint() const {
  Point p(dim());
  for (int i = 0; i + 1 < dim(); ++i) p[i] = coef_[static_cast<size_t>(i)];
  p[dim() - 1] = offset_;
  return p;
}

}  // namespace arsp
