// Copyright 2026 The ARSP Authors.
//
// Dense d-dimensional points and coordinate-wise dominance. Lower values are
// preferred throughout the library, matching the paper's convention.

#ifndef ARSP_GEOMETRY_POINT_H_
#define ARSP_GEOMETRY_POINT_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/macros.h"

namespace arsp {

/// A point in R^d with dense double coordinates.
///
/// Points are small (d <= 8 in every experiment in the paper) and copied
/// freely; the vector-backed representation keeps dimensionality dynamic so
/// the same code serves both the original data space (dimension d) and the
/// mapped score space (dimension d' = |V|).
class Point {
 public:
  Point() = default;

  /// A point at the origin of R^dim.
  explicit Point(int dim) : coords_(static_cast<size_t>(dim), 0.0) {
    ARSP_CHECK(dim >= 0);
  }

  /// Takes ownership of explicit coordinates.
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  /// Brace-list construction, e.g. Point{1.0, 2.0}.
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  /// Number of dimensions.
  int dim() const { return static_cast<int>(coords_.size()); }

  double operator[](int i) const {
    ARSP_DCHECK(i >= 0 && i < dim());
    return coords_[static_cast<size_t>(i)];
  }
  double& operator[](int i) {
    ARSP_DCHECK(i >= 0 && i < dim());
    return coords_[static_cast<size_t>(i)];
  }

  const std::vector<double>& coords() const { return coords_; }

  bool operator==(const Point& other) const = default;

  /// Component-wise difference (this - other).
  Point operator-(const Point& other) const;
  /// Component-wise sum.
  Point operator+(const Point& other) const;

  /// Inner product with another point of the same dimension.
  double Dot(const Point& other) const;

  /// Human-readable "(x1, x2, ...)" form for logs and test failures.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

/// Returns true iff a[i] <= b[i] for every dimension (weak coordinate
/// dominance, written a ⪯ b in the paper). Note the paper's dominance between
/// distinct instances does not require strict inequality in any coordinate.
bool DominatesWeak(const Point& a, const Point& b);

/// Raw-row variant of DominatesWeak for structure-of-arrays storage
/// (ScoreSpan rows): a ⪯ b over `dim` contiguous coordinates.
inline bool DominatesWeak(const double* a, const double* b, int dim) {
  for (int i = 0; i < dim; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Exact coordinate equality over `dim` contiguous coordinates.
inline bool CoordsEqual(const double* a, const double* b, int dim) {
  for (int i = 0; i < dim; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Returns true iff a ⪯ b and a != b (a dominates b in the classic skyline
/// sense: no worse anywhere, strictly better somewhere).
bool DominatesStrict(const Point& a, const Point& b);

/// Lexicographic comparison, used for deterministic tie-breaking.
bool LexLess(const Point& a, const Point& b);

}  // namespace arsp

#endif  // ARSP_GEOMETRY_POINT_H_
