// Copyright 2026 The ARSP Authors.
//
// ENUM (§III-A, first baseline): enumerate every possible world, compute its
// rskyline, and accumulate world probabilities per instance (Eq. 2).
// Exponential time — it exists as executable ground truth for the other
// algorithms and for the paper's Fig. 5 "ENUM never finishes" observation.

#ifndef ARSP_CORE_ENUM_ALGORITHM_H_
#define ARSP_CORE_ENUM_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Computes ARSP by possible-world enumeration. Aborts (by design) when the
/// number of worlds exceeds `max_worlds`.
ArspResult ComputeArspEnum(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           double max_worlds = 2e7);

}  // namespace arsp

#endif  // ARSP_CORE_ENUM_ALGORITHM_H_
