// Copyright 2026 The ARSP Authors.

#include "src/core/parallel_traversal.h"

#include <string>

namespace arsp {
namespace internal {

Status ReadParallelOptions(const SolverOptions& options, int* parallelism,
                           int* frontier_depth) {
  StatusOr<int64_t> par = options.IntOr("parallelism", *parallelism);
  if (!par.ok()) return par.status();
  if (*par < 1) {
    return Status::InvalidArgument("parallelism must be >= 1, got " +
                                   std::to_string(*par));
  }
  StatusOr<int64_t> depth = options.IntOr("frontier_depth", *frontier_depth);
  if (!depth.ok()) return depth.status();
  if (*depth != 0 && (*depth < 2 || *depth > 12)) {
    return Status::InvalidArgument(
        "frontier_depth must be 0 (auto) or in [2, 12], got " +
        std::to_string(*depth));
  }
  *parallelism = static_cast<int>(*par);
  *frontier_depth = static_cast<int>(*depth);
  return Status::OK();
}

int DefaultFrontierDepth(int branch_factor, int workers) {
  if (branch_factor < 2) branch_factor = 2;
  if (workers < 1) workers = 1;
  const int64_t target = static_cast<int64_t>(kTaskFactor) * workers;
  int depth = 2;
  int64_t level_tasks = branch_factor;  // tasks spawned from depth D-1
  while (depth < 12 && level_tasks < target) {
    level_tasks *= branch_factor;
    ++depth;
  }
  return depth;
}

SharedGoalState::SharedGoalState(GoalPruner* pruner)
    : pruner_(pruner != nullptr && pruner->active() ? pruner : nullptr) {
  if (pruner_ != nullptr) {
    // Publish the construction-time mask: scoped goals pre-decide
    // out-of-scope objects, and lanes should see those from task one.
    std::lock_guard<std::mutex> lock(mu_);
    PublishLocked();
  }
}

void SharedGoalState::PublishLocked() {
  published_ = pruner_->decided_mask();
  published_count_ = pruner_->decided_count();
  epoch_.fetch_add(1, std::memory_order_release);
}

void SharedGoalState::Flush(
    const std::vector<std::pair<int, double>>& resolutions) {
  if (pruner_ == nullptr || resolutions.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : resolutions) {
    pruner_->Resolve(r.first, r.second);
  }
  if (pruner_->GoalMet()) {
    stop_.store(true, std::memory_order_release);
  }
  if (pruner_->decided_count() != published_count_) {
    PublishLocked();
  }
}

void SharedGoalState::RefreshSnapshot(std::vector<unsigned char>* mask,
                                      uint64_t* epoch_seen,
                                      bool* any_decided) const {
  if (pruner_ == nullptr) return;
  const uint64_t current = epoch_.load(std::memory_order_acquire);
  if (current == *epoch_seen) return;
  std::lock_guard<std::mutex> lock(mu_);
  *mask = published_;
  *any_decided = published_count_ > 0;
  // Re-read under the lock: the copy above is consistent with at least
  // this epoch.
  *epoch_seen = epoch_.load(std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace arsp
