// Copyright 2026 The ARSP Authors.
//
// Result container for the ARSP problem (Problem 1): the rskyline
// probability of every instance, plus derived views (per-object
// probabilities, result size, top-k) used by the experiments.
//
// A result is either *complete* — every instance probability exact, the
// classic ARSP answer — or a goal-pruned *partial* result produced by a
// kCapGoalPushdown solver (see query_goal.h / GoalPruner in solver.h):
// instances of objects whose goal outcome was already decided by bounds are
// never evaluated, and the per-object [lower, upper] probability bounds plus
// decision flags carry everything the goal's answer needs. The full-result
// helpers below CHECK is_complete() so a partial result can never be
// silently sliced as if it were full.

#ifndef ARSP_CORE_ARSP_RESULT_H_
#define ARSP_CORE_ARSP_RESULT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/query_goal.h"
#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Probabilities are considered zero below this threshold; the same
/// threshold decides when an accumulated object mass counts as 1 (the σ = 1
/// tests of Algorithms 1 and 2). Shared by every algorithm so they agree.
inline constexpr double kProbabilityEps = 1e-9;

/// [lower, upper] enclosure of one object's rskyline probability during /
/// after a goal-pruned solve. For exactly evaluated objects lower == upper.
struct ProbabilityBounds {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
};

/// Per-object outcome of a goal-pruned solve.
enum class ObjectDecision : uint8_t {
  kUndecided = 0,  ///< bounds never converged (only possible mid-run)
  kExact = 1,      ///< every instance evaluated; lower == upper == Pr_rsky
  kExcluded = 2,   ///< bounds proved the object cannot be in the answer
};

/// Output of an ARSP computation.
struct ArspResult {
  /// instance_probs[i] = Pr_rsky of the instance with local id i. In a
  /// partial result, entries of undecided/excluded objects' unevaluated
  /// instances are 0 placeholders — meaningless, guarded by is_complete().
  std::vector<double> instance_probs;

  /// The goal the solve served. kFull for every goal-oblivious solver.
  QueryGoal goal;
  /// Per-object probability bounds (view-local object order); filled only
  /// by goal-pruned solves, empty otherwise.
  std::vector<ProbabilityBounds> object_bounds;
  /// Per-object decisions, parallel to object_bounds.
  std::vector<ObjectDecision> object_decisions;
  /// False iff some instances were skipped under goal pruning. A partial
  /// result answers exactly `goal` (via AnswerGoal in queries.h) — nothing
  /// else.
  bool complete = true;

  bool is_complete() const { return complete; }
  /// Whether object `j`'s outcome was decided (exact or excluded). True for
  /// every object of a complete goal-free result (no decisions recorded ⇒
  /// everything is exact).
  bool decided(int j) const {
    return object_decisions.empty() ||
           object_decisions[static_cast<size_t>(j)] !=
               ObjectDecision::kUndecided;
  }

  /// Diagnostic counters (not all algorithms fill all of them).
  int64_t dominance_tests = 0;   ///< pairwise F-dominance tests performed
  int64_t nodes_visited = 0;     ///< tree nodes expanded / constructed
  int64_t nodes_pruned = 0;      ///< subtrees pruned
  int64_t index_probes = 0;      ///< window / half-space index probes issued
  /// Goal-pushdown counters (zero unless a GoalPruner was active).
  int64_t objects_pruned = 0;      ///< objects decided out by bounds
  int64_t bound_refinements = 0;   ///< per-object bound updates applied
  int64_t early_exit_depth = 0;    ///< traversal depth (or B&B round) at the
                                   ///< global goal-met stop; 0 = ran to end
  /// Intra-query parallelism counters (zero for serial runs). tasks_stolen
  /// is scheduling-dependent and excluded from determinism comparisons;
  /// everything else in this struct is bit-identical to the serial run.
  int64_t tasks_spawned = 0;     ///< subtree tasks submitted to the arena
  int64_t tasks_stolen = 0;      ///< tasks claimed by a non-owning worker
  int64_t parallel_workers = 0;  ///< arena workers granted (incl. caller)
};

/// Number of instances with non-zero rskyline probability — the paper's
/// "size of ARSP" reported in Figs. 5 and 6. Algorithms assign an exact 0.0
/// to instances killed by a full-mass dominator, so the default threshold
/// counts every representable positive probability (on ϕ = 1 datasets like
/// IIP the paper counts all instances; probabilities below ~1e-308 still
/// underflow to zero and are not counted). Requires a complete result.
int CountNonZero(const ArspResult& result, double eps = 0.0);

/// Pr_rsky per object: the sum of its instances' probabilities (§II-B).
/// Requires a complete result (partial results answer through AnswerGoal).
std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const UncertainDataset& dataset);

/// View variant: `result` is indexed by view-local instance ids; the output
/// is in view-local object order.
std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const DatasetView& view);

/// Objects sorted by descending rskyline probability, truncated to k;
/// pairs of (object id, probability). Ties break on object id.
std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const UncertainDataset& dataset, int k);

/// View variant: returned pairs carry *base* object ids (callers map them
/// to names/metadata of the base dataset), ties break on base id. For full
/// views this is identical to the dataset overload.
std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const DatasetView& view, int k);

/// Max absolute difference between two results (test/benchmark helper).
double MaxAbsDiff(const ArspResult& a, const ArspResult& b);

}  // namespace arsp

#endif  // ARSP_CORE_ARSP_RESULT_H_
