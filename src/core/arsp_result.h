// Copyright 2026 The ARSP Authors.
//
// Result container for the ARSP problem (Problem 1): the rskyline
// probability of every instance, plus derived views (per-object
// probabilities, result size, top-k) used by the experiments.

#ifndef ARSP_CORE_ARSP_RESULT_H_
#define ARSP_CORE_ARSP_RESULT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Probabilities are considered zero below this threshold; the same
/// threshold decides when an accumulated object mass counts as 1 (the σ = 1
/// tests of Algorithms 1 and 2). Shared by every algorithm so they agree.
inline constexpr double kProbabilityEps = 1e-9;

/// Output of an ARSP computation.
struct ArspResult {
  /// instance_probs[i] = Pr_rsky of the instance with global id i.
  std::vector<double> instance_probs;

  /// Diagnostic counters (not all algorithms fill all of them).
  int64_t dominance_tests = 0;   ///< pairwise F-dominance tests performed
  int64_t nodes_visited = 0;     ///< tree nodes expanded / constructed
  int64_t nodes_pruned = 0;      ///< subtrees pruned
  int64_t index_probes = 0;      ///< window / half-space index probes issued
};

/// Number of instances with non-zero rskyline probability — the paper's
/// "size of ARSP" reported in Figs. 5 and 6. Algorithms assign an exact 0.0
/// to instances killed by a full-mass dominator, so the default threshold
/// counts every representable positive probability (on ϕ = 1 datasets like
/// IIP the paper counts all instances; probabilities below ~1e-308 still
/// underflow to zero and are not counted).
int CountNonZero(const ArspResult& result, double eps = 0.0);

/// Pr_rsky per object: the sum of its instances' probabilities (§II-B).
std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const UncertainDataset& dataset);

/// View variant: `result` is indexed by view-local instance ids; the output
/// is in view-local object order.
std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const DatasetView& view);

/// Objects sorted by descending rskyline probability, truncated to k;
/// pairs of (object id, probability). Ties break on object id.
std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const UncertainDataset& dataset, int k);

/// View variant: returned pairs carry *base* object ids (callers map them
/// to names/metadata of the base dataset), ties break on base id. For full
/// views this is identical to the dataset overload.
std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const DatasetView& view, int k);

/// Max absolute difference between two results (test/benchmark helper).
double MaxAbsDiff(const ArspResult& a, const ArspResult& b);

}  // namespace arsp

#endif  // ARSP_CORE_ARSP_RESULT_H_
