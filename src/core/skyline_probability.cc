// Copyright 2026 The ARSP Authors.

#include "src/core/skyline_probability.h"

#include "src/core/kdtt_algorithm.h"
#include "src/prefs/preference_region.h"

namespace arsp {

ArspResult ComputeAllSkylineProbabilities(const UncertainDataset& dataset) {
  return ComputeArspKdtt(dataset, PreferenceRegion::FullSimplex(dataset.dim()),
                         KdttOptions{.integrated = true});
}

}  // namespace arsp
