// Copyright 2026 The ARSP Authors.

#include "src/core/queries.h"

#include <algorithm>

namespace arsp {

std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const UncertainDataset& dataset,
    double threshold) {
  return ObjectsAboveThreshold(result, DatasetView(dataset), threshold);
}

std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const DatasetView& view, double threshold) {
  std::vector<std::pair<int, double>> ranked = TopKObjects(result, view, -1);
  auto cut = std::find_if(ranked.begin(), ranked.end(),
                          [threshold](const std::pair<int, double>& e) {
                            return e.second < threshold;
                          });
  ranked.erase(cut, ranked.end());
  return ranked;
}

std::vector<std::pair<int, double>> InstancesAboveThreshold(
    const ArspResult& result, double threshold) {
  std::vector<std::pair<int, double>> out;
  for (size_t i = 0; i < result.instance_probs.size(); ++i) {
    if (result.instance_probs[i] >= threshold) {
      out.emplace_back(static_cast<int>(i), result.instance_probs[i]);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<int, double>> TopKInstances(const ArspResult& result,
                                                  int k) {
  std::vector<std::pair<int, double>> out =
      InstancesAboveThreshold(result, 0.0);
  if (k >= 0 && static_cast<int>(out.size()) > k) {
    out.resize(static_cast<size_t>(k));
  }
  return out;
}

double ThresholdForObjectCount(const ArspResult& result,
                               const UncertainDataset& dataset,
                               int max_objects) {
  return ThresholdForObjectCount(result, DatasetView(dataset), max_objects);
}

double ThresholdForObjectCount(const ArspResult& result,
                               const DatasetView& view, int max_objects) {
  ARSP_CHECK(max_objects >= 1);
  const std::vector<std::pair<int, double>> ranked =
      TopKObjects(result, view, max_objects);
  if (ranked.empty()) return 0.0;
  return ranked.back().second;
}

}  // namespace arsp
