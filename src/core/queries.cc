// Copyright 2026 The ARSP Authors.

#include "src/core/queries.h"

#include <algorithm>

#include "src/common/macros.h"

namespace arsp {

std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const UncertainDataset& dataset,
    double threshold) {
  return ObjectsAboveThreshold(result, DatasetView(dataset), threshold);
}

std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const DatasetView& view, double threshold) {
  std::vector<std::pair<int, double>> ranked = TopKObjects(result, view, -1);
  auto cut = std::find_if(ranked.begin(), ranked.end(),
                          [threshold](const std::pair<int, double>& e) {
                            return e.second < threshold;
                          });
  ranked.erase(cut, ranked.end());
  return ranked;
}

std::vector<std::pair<int, double>> InstancesAboveThreshold(
    const ArspResult& result, double threshold) {
  ARSP_CHECK_MSG(result.is_complete(),
                 "InstancesAboveThreshold needs a complete result (goal "
                 "pushdown tracks object bounds, not instance answers)");
  std::vector<std::pair<int, double>> out;
  for (size_t i = 0; i < result.instance_probs.size(); ++i) {
    if (result.instance_probs[i] >= threshold) {
      out.emplace_back(static_cast<int>(i), result.instance_probs[i]);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<int, double>> TopKInstances(const ArspResult& result,
                                                  int k) {
  std::vector<std::pair<int, double>> out =
      InstancesAboveThreshold(result, 0.0);
  if (k >= 0 && static_cast<int>(out.size()) > k) {
    out.resize(static_cast<size_t>(k));
  }
  return out;
}

double ThresholdForObjectCount(const ArspResult& result,
                               const UncertainDataset& dataset,
                               int max_objects) {
  return ThresholdForObjectCount(result, DatasetView(dataset), max_objects);
}

double ThresholdForObjectCount(const ArspResult& result,
                               const DatasetView& view, int max_objects) {
  ARSP_CHECK(max_objects >= 1);
  const std::vector<std::pair<int, double>> ranked =
      TopKObjects(result, view, max_objects);
  if (ranked.empty()) return 0.0;
  return ranked.back().second;
}

namespace {

// Shared tail of both AnswerGoal paths: `ranked` holds (base id, exact
// probability) pairs sorted by (probability desc, id asc) — all objects for
// the complete path, all exactly evaluated objects for the partial path
// (which by the GoalPruner invariants is a superset of the answer set).
std::vector<std::pair<int, double>> SliceRanked(
    std::vector<std::pair<int, double>> ranked, const QueryGoal& goal,
    double* count_threshold) {
  switch (goal.kind) {
    case GoalKind::kFull:
      break;  // "rank everything" (k < 0 top-k collapses to this too)
    case GoalKind::kTopK: {
      if (goal.ties == TiePolicy::kIncludeTies) {
        // Count-controlled: the k-th probability is a derived threshold and
        // boundary ties extend the answer (identical to the historical
        // ThresholdForObjectCount + ObjectsAboveThreshold recipe).
        const size_t cut =
            std::min(ranked.size(), static_cast<size_t>(goal.k));
        const double threshold = cut == 0 ? 0.0 : ranked[cut - 1].second;
        if (count_threshold != nullptr) *count_threshold = threshold;
        while (!ranked.empty() && ranked.back().second < threshold) {
          ranked.pop_back();
        }
      } else if (goal.k >= 0 &&
                 ranked.size() > static_cast<size_t>(goal.k)) {
        ranked.resize(static_cast<size_t>(goal.k));
      }
      break;
    }
    case GoalKind::kThreshold: {
      const auto cut = std::find_if(
          ranked.begin(), ranked.end(),
          [&goal](const std::pair<int, double>& e) {
            return e.second < goal.p;
          });
      ranked.erase(cut, ranked.end());
      break;
    }
  }
  return ranked;
}

}  // namespace

std::vector<std::pair<int, double>> AnswerGoal(
    const ArspResult& result, const DatasetView& view, const QueryGoal& goal,
    double* count_threshold) {
  if (result.is_complete()) {
    if (!goal.has_scope()) {
      return SliceRanked(TopKObjects(result, view, -1), goal,
                         count_threshold);
    }
    // Scoped goal against a complete result (e.g. a non-pushdown solver
    // that ignored the scope): rank only the in-scope objects. Identical
    // accumulation and comparator to TopKObjects, just filtered.
    const std::vector<double> probs = ObjectProbabilities(result, view);
    std::vector<std::pair<int, double>> ranked;
    for (int j = 0; j < view.num_objects(); ++j) {
      if (!goal.InScope(j)) continue;
      ranked.emplace_back(view.base_object_id(j),
                          probs[static_cast<size_t>(j)]);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    return SliceRanked(std::move(ranked), goal, count_threshold);
  }
  // Partial results answer exactly the goal they were pruned for: the
  // GoalPruner guarantees every object in the answer set (plus every object
  // needed to place the cut) was refined to exactness, and every excluded
  // object lies strictly below the cut.
  ARSP_CHECK_MSG(result.goal == goal,
                 "partial result answers goal '%s', not '%s'",
                 result.goal.ToString().c_str(), goal.ToString().c_str());
  const int m = view.num_objects();
  ARSP_CHECK(static_cast<int>(result.object_bounds.size()) == m);
  std::vector<std::pair<int, double>> exact;
  exact.reserve(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    // Out-of-scope objects are exported as excluded with meaningless
    // bounds (GoalPruner::Finish); the scope test keeps them out even if a
    // future exporter marks them differently.
    if (!goal.InScope(j)) continue;
    if (result.object_decisions[static_cast<size_t>(j)] ==
        ObjectDecision::kExact) {
      exact.emplace_back(view.base_object_id(j),
                         result.object_bounds[static_cast<size_t>(j)].lower);
    }
  }
  std::sort(exact.begin(), exact.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return SliceRanked(std::move(exact), goal, count_threshold);
}

}  // namespace arsp
