// Copyright 2026 The ARSP Authors.
//
// Shared bookkeeping of the kd-ASP* style traversals (Algorithm 1 and its
// quadtree variant): the per-object dominating mass σ, the running product
// β = Π_{σ[j]≠1}(1 - σ[j]), and the full-object counter χ = |{j : σ[j]=1}|,
// with O(1) incremental apply/undo as candidates move into the dominating
// set D of a node.
//
// Deviation from the printed pseudocode (documented in DESIGN.md): at a
// leaf, the case χ = 1 caused by the instance's *own* object still has
// non-zero probability — the paper handles this case in its DUAL-M variant
// (§IV-B) and we apply the same rule here.
//
// Parallel execution: a traversal runs on one or more TraversalLane's —
// each lane owns a private AspTraversalState, counters and a GoalChannel.
// Lanes never share mutable state except through SharedGoalState (goal
// pushdown under parallelism), whose decisions are monotone, so lanes can
// proceed with stale snapshots without ever producing a wrong value.

#ifndef ARSP_CORE_ASP_TRAVERSAL_STATE_H_
#define ARSP_CORE_ASP_TRAVERSAL_STATE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/core/arsp_result.h"
#include "src/core/solver.h"
#include "src/geometry/point.h"
#include "src/prefs/score_mapper.h"
#include "src/simd/kernels.h"

namespace arsp {
namespace internal {

/// Incremental (σ, β, χ) state over m objects.
class AspTraversalState {
 public:
  explicit AspTraversalState(int num_objects)
      : sigma_(static_cast<size_t>(num_objects), 0.0) {}

  /// One σ update, recorded so the caller can undo it when unwinding.
  /// Undo is snapshot-based: each change carries the pre-Add σ of its
  /// object plus the pre-Add (β, χ), so unwinding restores the state
  /// *bitwise* — an entered-and-exited subtree is indistinguishable from
  /// one never entered. That exactness is what lets goal pruning, scoped
  /// (sharded) solves, and path-replayed parallel tasks return values
  /// bit-identical to a full serial solve.
  struct Change {
    int object;
    double old_sigma;
    double old_beta;
    int old_chi;
  };

  double beta() const { return beta_; }
  int chi() const { return chi_; }
  double sigma(int object) const {
    return sigma_[static_cast<size_t>(object)];
  }
  /// True iff object j's entire mass dominates the current node's min
  /// corner (σ[j] = 1 up to the shared probability tolerance).
  bool IsFull(int object) const {
    return sigma(object) >= 1.0 - kProbabilityEps;
  }

  /// σ[object] += prob, maintaining β and χ; appends to `undo_log`.
  void Add(int object, double prob, std::vector<Change>* undo_log) {
    double& s = sigma_[static_cast<size_t>(object)];
    undo_log->push_back(Change{object, s, beta_, chi_});
    const double old_value = s;
    s += prob;
    const bool was_full = old_value >= 1.0 - kProbabilityEps;
    const bool is_full = s >= 1.0 - kProbabilityEps;
    if (!was_full && is_full) {
      ++chi_;
      beta_ /= (1.0 - old_value);  // remove the object's factor from β
    } else if (!is_full) {
      beta_ *= (1.0 - s) / (1.0 - old_value);
    }
  }

  /// Reverts the changes in `undo_log`, newest first, restoring σ, β and χ
  /// bitwise to their values before the corresponding Add calls. The log
  /// must cover a contiguous suffix of Adds (which is what the node-local
  /// logs of every traversal are): σ is restored per change, while β and χ
  /// come from the snapshot in the oldest change — no floating-point
  /// arithmetic, hence no drift, on the unwind path.
  void Undo(const std::vector<Change>& undo_log) {
    if (undo_log.empty()) return;
    for (auto it = undo_log.rbegin(); it != undo_log.rend(); ++it) {
      sigma_[static_cast<size_t>(it->object)] = it->old_sigma;
    }
    beta_ = undo_log.front().old_beta;
    chi_ = undo_log.front().old_chi;
  }

  /// Final rskyline probability of an instance of `object` with existence
  /// probability `prob`, given that σ is exact for that instance's point:
  ///   χ = 0            →  β · p / (1 - σ[own])
  ///   χ = 1, own full  →  β · p      (β already excludes the own factor)
  ///   otherwise        →  0          (some foreign object fully dominates)
  double LeafProbability(int object, double prob) const {
    if (chi_ == 0) {
      return beta_ * prob / (1.0 - sigma(object));
    }
    if (chi_ == 1 && IsFull(object)) {
      return beta_ * prob;
    }
    return 0.0;
  }

 private:
  std::vector<double> sigma_;
  double beta_ = 1.0;
  int chi_ = 0;
};

/// Per-lane traversal counters. Lanes accumulate privately and the driver
/// sums them at merge time; every field is an associative-commutative sum
/// (or, for early_exit_depth, a max), so the merged totals equal the serial
/// totals no matter how subtrees were distributed over lanes.
struct TraversalCounters {
  int64_t dominance_tests = 0;
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
  int64_t early_exit_depth = 0;

  void MergeFrom(const TraversalCounters& other) {
    dominance_tests += other.dominance_tests;
    nodes_visited += other.nodes_visited;
    nodes_pruned += other.nodes_pruned;
    if (other.early_exit_depth > early_exit_depth) {
      early_exit_depth = other.early_exit_depth;
    }
  }

  /// Copies the totals into a fresh result's counter fields.
  void StoreInto(ArspResult* result) const {
    result->dominance_tests = dominance_tests;
    result->nodes_visited = nodes_visited;
    result->nodes_pruned = nodes_pruned;
    result->early_exit_depth = early_exit_depth;
  }
};

/// Cross-lane goal-pushdown state: wraps the query's single authoritative
/// GoalPruner behind a mutex and republishes its decided-object mask as an
/// epoch-stamped snapshot that lanes copy between tasks. Because pruner
/// decisions are monotone (an object, once decided, never becomes
/// undecided, and the global goal-met flag never clears), a lane acting on
/// a stale snapshot only *misses* pruning opportunities — it can never
/// skip work it still needed, so correctness is unconditional and the
/// final answer set matches serial. Defined in
/// src/core/parallel_traversal.cc.
class SharedGoalState {
 public:
  /// `pruner` may be null (full goal): then the state is inert and every
  /// channel built on it behaves as inactive.
  explicit SharedGoalState(GoalPruner* pruner);

  bool active() const { return pruner_ != nullptr; }

  /// Global early-exit flag: set once GoalMet() held under the lock.
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Applies a batch of (instance id, probability) resolutions to the
  /// authoritative pruner under the lock, then republishes the decided
  /// mask (epoch bump) if any new object decision landed.
  void Flush(const std::vector<std::pair<int, double>>& resolutions);

  /// Copies the latest published mask into `mask` iff `*epoch_seen` is
  /// stale, updating `*epoch_seen` / `*any_decided`.
  void RefreshSnapshot(std::vector<unsigned char>* mask,
                       uint64_t* epoch_seen, bool* any_decided) const;

 private:
  void PublishLocked();

  GoalPruner* const pruner_;
  mutable std::mutex mu_;
  std::vector<unsigned char> published_;  // decided mask copy, under mu_
  int published_count_ = 0;               // decided count at last publish
  std::atomic<uint64_t> epoch_{1};
  std::atomic<bool> stop_{false};
};

/// A lane's view of goal pushdown; one of three modes:
///  * inactive (default) — full goal, every query is a cheap no-op;
///  * direct — serial execution: calls straight into the GoalPruner;
///  * buffered — parallel execution: resolutions accumulate locally and
///    flush in batches to the SharedGoalState; decided/stopped queries are
///    answered from the lane's snapshot (refreshed between tasks).
/// The buffered mode is what makes goal pushdown race-free under
/// parallelism: the pruner itself is only ever touched under the shared
/// lock, and snapshots are plain lane-private copies.
class GoalChannel {
 public:
  static constexpr size_t kFlushBatch = 4096;

  GoalChannel() = default;
  /// Direct mode; a null pruner degrades to inactive.
  explicit GoalChannel(GoalPruner* pruner) : pruner_(pruner) {}
  /// Buffered mode; `instance_objects` maps local instance id → object id
  /// (needed to answer AllDecided from the object-indexed snapshot). An
  /// inert `shared` degrades to inactive.
  GoalChannel(SharedGoalState* shared, const int* instance_objects)
      : shared_(shared != nullptr && shared->active() ? shared : nullptr),
        objects_(instance_objects) {}

  bool active() const { return pruner_ != nullptr || shared_ != nullptr; }

  /// Global early-exit: the goal is met, stop traversing everywhere.
  bool GoalMet() const {
    if (pruner_ != nullptr) return pruner_->GoalMet();
    if (shared_ != nullptr) return shared_->stopped();
    return false;
  }

  /// True when every instance in ids[0..count) belongs to a decided
  /// object. Buffered mode answers from the lane snapshot — stale is fine,
  /// it only under-reports (see SharedGoalState).
  bool AllDecided(const int* ids, int count) const {
    if (pruner_ != nullptr) return pruner_->AllDecided(ids, count);
    if (shared_ == nullptr || !snapshot_any_) return false;
    for (int i = 0; i < count; ++i) {
      const int object = objects_[ids[i]];
      if (snapshot_[static_cast<size_t>(object)] == 0) return false;
    }
    return true;
  }

  /// Reports one instance's exact probability. Callers guard loops with
  /// active() so the full-goal path pays nothing per instance.
  void Resolve(int instance, double prob) {
    if (pruner_ != nullptr) {
      pruner_->Resolve(instance, prob);
      return;
    }
    if (shared_ != nullptr) {
      buffer_.emplace_back(instance, prob);
      if (buffer_.size() >= kFlushBatch) Flush();
    }
  }

  /// Pushes buffered resolutions to the shared pruner (no-op otherwise).
  /// Call at task end — resolutions must not outlive their task, or a
  /// long-running lane could starve the global goal check.
  void Flush() {
    if (shared_ != nullptr && !buffer_.empty()) {
      shared_->Flush(buffer_);
      buffer_.clear();
    }
  }

  /// Refreshes the decided-mask snapshot; call between tasks.
  void BeginTask() {
    if (shared_ != nullptr) {
      shared_->RefreshSnapshot(&snapshot_, &epoch_seen_, &snapshot_any_);
    }
  }

 private:
  GoalPruner* pruner_ = nullptr;     // direct mode
  SharedGoalState* shared_ = nullptr;  // buffered mode
  const int* objects_ = nullptr;
  std::vector<std::pair<int, double>> buffer_;
  std::vector<unsigned char> snapshot_;  // decided mask, object-indexed
  uint64_t epoch_seen_ = 0;
  bool snapshot_any_ = false;
};

/// Everything one worker needs to traverse a subtree: private (σ, β, χ)
/// state, classification scratch, counters and its goal channel. Lane 0 is
/// the calling thread's (and the only lane in serial mode); helper workers
/// get lanes 1..W-1. The `stopped` flag is lane-sticky: once a lane has
/// observed goal-met it records the depth and skips everything else handed
/// to it.
struct TraversalLane {
  TraversalLane(int num_objects, GoalChannel channel_in)
      : state(num_objects), channel(std::move(channel_in)) {}

  AspTraversalState state;
  std::vector<unsigned char> class_scratch;
  TraversalCounters counters;
  GoalChannel channel;
  bool stopped = false;  // this lane saw the global goal-met early exit

  /// True when rows order[begin..end) at `depth` need not be visited
  /// (goal met globally, or every instance belongs to a decided object).
  /// Skipping is sound because a subtree's σ updates are local to it
  /// (undone on unwind) — they can never change another instance's value.
  bool SkipSubtree(const std::vector<int>& order, int begin, int end,
                   int depth) {
    if (!channel.active()) return false;
    if (stopped) return true;
    if (channel.GoalMet()) {
      stopped = true;
      counters.early_exit_depth = depth;
      return true;
    }
    if (channel.AllDecided(order.data() + begin, end - begin)) {
      ++counters.nodes_pruned;
      return true;
    }
    return false;
  }
};

// Helpers shared by the kd/quad/multi-way ASP runners, which all walk the
// same SoA score storage (ScoreSpan; row index == local instance id) with
// an `order` permutation. One definition here keeps the three traversals'
// corner computation, candidate filtering, terminal emission, and goal
// gating in lockstep — a change to any of these rules is a change to all
// solvers.

/// Tight [pmin, pmax] corners of rows order[begin..end) (end > begin),
/// tightened by the dispatched ScoreCorners kernel (strict-inequality
/// updates: ties keep the first occurrence, identically to the scalar
/// reference on every arch).
inline void ComputeScoreCorners(const ScoreSpan& scores,
                                const std::vector<int>& order, int begin,
                                int end, std::vector<double>* pmin,
                                std::vector<double>* pmax) {
  const int dim = scores.dim;
  const double* first = scores.row(order[static_cast<size_t>(begin)]);
  pmin->assign(first, first + dim);
  pmax->assign(first, first + dim);
  if (end - begin > 1) {
    simd::Ops().ScoreCorners(scores.coords, dim,
                             order.data() + begin + 1, end - begin - 1,
                             pmin->data(), pmax->data());
  }
}

/// Moves candidates into D (σ) when they dominate pmin, keeps them in
/// `kept` when they dominate pmax; everything else is discarded for this
/// subtree. The two dominance tests per candidate run batched through the
/// ClassifyCorners kernel into `class_scratch` (lane-owned, resized on
/// demand — the classification is fully consumed before any recursion, so
/// one scratch serves every level); the scalar loop then applies the
/// σ/kept side effects in candidate order. Counts one dominance test per
/// candidate into `counters`, as the scalar loop always has. When
/// `adds_out` is non-null, every (object, prob) fed to state->Add is also
/// appended there — the parallel driver records these per-node deltas into
/// a PathChain so spawned tasks can replay the root→node σ path with the
/// exact same Add sequence (hence bitwise-equal state).
inline void FilterAspCandidates(const ScoreSpan& scores,
                                const std::vector<int>& parent_candidates,
                                const double* pmin, const double* pmax,
                                AspTraversalState* state,
                                std::vector<int>* kept,
                                std::vector<AspTraversalState::Change>*
                                    undo_log,
                                std::vector<unsigned char>* class_scratch,
                                TraversalCounters* counters,
                                std::vector<std::pair<int, double>>*
                                    adds_out = nullptr) {
  const int count = static_cast<int>(parent_candidates.size());
  if (count == 0) return;
  if (class_scratch->size() < static_cast<size_t>(count)) {
    class_scratch->resize(static_cast<size_t>(count));
  }
  simd::Ops().ClassifyCorners(scores.coords, scores.dim,
                              parent_candidates.data(), count, pmin, pmax,
                              class_scratch->data());
  counters->dominance_tests += count;
  const unsigned char* classes = class_scratch->data();
  for (int c = 0; c < count; ++c) {
    const int cid = parent_candidates[static_cast<size_t>(c)];
    if (classes[c] == simd::kClassDominatesMin) {
      const int object = scores.object(cid);
      const double prob = scores.prob(cid);
      state->Add(object, prob, undo_log);
      if (adds_out != nullptr) adds_out->emplace_back(object, prob);
    } else if (classes[c] == simd::kClassDominatesMax) {
      kept->push_back(cid);
    }
  }
}

/// Terminal handling shared by every traversal mode; returns true when the
/// subtree [begin, end) of `order` is fully resolved (leaf emitted or
/// pruned):
///   χ ≥ 2        — two foreign full dominators: everything is zero;
///   χ = 1        — only instances coinciding with pmin (where σ is exact)
///                  can survive (see DESIGN.md);
///   pmin == pmax — true leaf; σ is exact for every (coincident) instance.
/// A terminal determines the exact probability of *every* instance in the
/// range (zeros included), so it is also the goal-pushdown resolution
/// point: when the channel is active each instance is reported to it once.
/// Probabilities land in `probs` (instance-indexed); since every instance
/// appears in exactly one terminal and subtree ranges are disjoint,
/// parallel lanes write disjoint entries — the merge is the identity.
inline bool HandleAspTerminal(const ScoreSpan& scores,
                              const std::vector<int>& order, int begin,
                              int end, const double* pmin, const double* pmax,
                              const AspTraversalState& state, double* probs,
                              TraversalCounters* counters,
                              GoalChannel* channel) {
  if (state.chi() >= 2) {
    if (channel->active()) {
      for (int i = begin; i < end; ++i) {
        channel->Resolve(order[static_cast<size_t>(i)], 0.0);
      }
    }
    ++counters->nodes_pruned;
    return true;
  }
  if (state.chi() == 1) {
    for (int i = begin; i < end; ++i) {
      const int id = order[static_cast<size_t>(i)];
      double prob = 0.0;
      if (CoordsEqual(scores.row(id), pmin, scores.dim)) {
        prob = state.LeafProbability(scores.object(id), scores.prob(id));
        probs[static_cast<size_t>(id)] = prob;
      }
      if (channel->active()) channel->Resolve(id, prob);
    }
    ++counters->nodes_pruned;
    return true;
  }
  if (CoordsEqual(pmin, pmax, scores.dim)) {
    for (int i = begin; i < end; ++i) {
      const int id = order[static_cast<size_t>(i)];
      const double prob =
          state.LeafProbability(scores.object(id), scores.prob(id));
      probs[static_cast<size_t>(id)] = prob;
      if (channel->active()) channel->Resolve(id, prob);
    }
    return true;
  }
  return false;
}

}  // namespace internal
}  // namespace arsp

#endif  // ARSP_CORE_ASP_TRAVERSAL_STATE_H_
