// Copyright 2026 The ARSP Authors.
//
// Shared bookkeeping of the kd-ASP* style traversals (Algorithm 1 and its
// quadtree variant): the per-object dominating mass σ, the running product
// β = Π_{σ[j]≠1}(1 - σ[j]), and the full-object counter χ = |{j : σ[j]=1}|,
// with O(1) incremental apply/undo as candidates move into the dominating
// set D of a node.
//
// Deviation from the printed pseudocode (documented in DESIGN.md): at a
// leaf, the case χ = 1 caused by the instance's *own* object still has
// non-zero probability — the paper handles this case in its DUAL-M variant
// (§IV-B) and we apply the same rule here.

#ifndef ARSP_CORE_ASP_TRAVERSAL_STATE_H_
#define ARSP_CORE_ASP_TRAVERSAL_STATE_H_

#include <vector>

#include "src/common/macros.h"
#include "src/core/arsp_result.h"
#include "src/core/solver.h"
#include "src/geometry/point.h"
#include "src/prefs/score_mapper.h"
#include "src/simd/kernels.h"

namespace arsp {
namespace internal {

/// Incremental (σ, β, χ) state over m objects.
class AspTraversalState {
 public:
  explicit AspTraversalState(int num_objects)
      : sigma_(static_cast<size_t>(num_objects), 0.0) {}

  /// One σ update, recorded so the caller can undo it when unwinding.
  /// Undo is snapshot-based: each change carries the pre-Add σ of its
  /// object plus the pre-Add (β, χ), so unwinding restores the state
  /// *bitwise* — an entered-and-exited subtree is indistinguishable from
  /// one never entered. That exactness is what lets goal pruning and
  /// scoped (sharded) solves return values bit-identical to a full solve.
  struct Change {
    int object;
    double old_sigma;
    double old_beta;
    int old_chi;
  };

  double beta() const { return beta_; }
  int chi() const { return chi_; }
  double sigma(int object) const {
    return sigma_[static_cast<size_t>(object)];
  }
  /// True iff object j's entire mass dominates the current node's min
  /// corner (σ[j] = 1 up to the shared probability tolerance).
  bool IsFull(int object) const {
    return sigma(object) >= 1.0 - kProbabilityEps;
  }

  /// σ[object] += prob, maintaining β and χ; appends to `undo_log`.
  void Add(int object, double prob, std::vector<Change>* undo_log) {
    double& s = sigma_[static_cast<size_t>(object)];
    undo_log->push_back(Change{object, s, beta_, chi_});
    const double old_value = s;
    s += prob;
    const bool was_full = old_value >= 1.0 - kProbabilityEps;
    const bool is_full = s >= 1.0 - kProbabilityEps;
    if (!was_full && is_full) {
      ++chi_;
      beta_ /= (1.0 - old_value);  // remove the object's factor from β
    } else if (!is_full) {
      beta_ *= (1.0 - s) / (1.0 - old_value);
    }
  }

  /// Reverts the changes in `undo_log`, newest first, restoring σ, β and χ
  /// bitwise to their values before the corresponding Add calls. The log
  /// must cover a contiguous suffix of Adds (which is what the node-local
  /// logs of every traversal are): σ is restored per change, while β and χ
  /// come from the snapshot in the oldest change — no floating-point
  /// arithmetic, hence no drift, on the unwind path.
  void Undo(const std::vector<Change>& undo_log) {
    if (undo_log.empty()) return;
    for (auto it = undo_log.rbegin(); it != undo_log.rend(); ++it) {
      sigma_[static_cast<size_t>(it->object)] = it->old_sigma;
    }
    beta_ = undo_log.front().old_beta;
    chi_ = undo_log.front().old_chi;
  }

  /// Final rskyline probability of an instance of `object` with existence
  /// probability `prob`, given that σ is exact for that instance's point:
  ///   χ = 0            →  β · p / (1 - σ[own])
  ///   χ = 1, own full  →  β · p      (β already excludes the own factor)
  ///   otherwise        →  0          (some foreign object fully dominates)
  double LeafProbability(int object, double prob) const {
    if (chi_ == 0) {
      return beta_ * prob / (1.0 - sigma(object));
    }
    if (chi_ == 1 && IsFull(object)) {
      return beta_ * prob;
    }
    return 0.0;
  }

 private:
  std::vector<double> sigma_;
  double beta_ = 1.0;
  int chi_ = 0;
};

// Helpers shared by the kd/quad/multi-way ASP runners, which all walk the
// same SoA score storage (ScoreSpan; row index == local instance id) with
// an `order` permutation. One definition here keeps the three traversals'
// corner computation, candidate filtering, terminal emission, and goal
// gating in lockstep — a change to any of these rules is a change to all
// solvers.

/// Goal-pushdown gate shared by the recursive traversals: asked once per
/// node, it stops the whole solve when the goal is met (recording the
/// early-exit depth) and skips subtrees whose instances all belong to
/// decided objects. Skipping is sound because a subtree's σ updates are
/// local to it (undone on unwind) — they can never change another
/// instance's value. Constructed with a null pruner (full goal), every
/// call is a no-op.
class GoalGate {
 public:
  GoalGate(GoalPruner* pruner, ArspResult* result)
      : pruner_(pruner), result_(result) {}

  /// The pruner terminal handlers should report resolutions to (nullptr
  /// when the goal is full).
  GoalPruner* pruner() const { return pruner_; }

  /// True when rows order[begin..end) at `depth` need not be visited.
  bool Skip(const std::vector<int>& order, int begin, int end, int depth) {
    if (pruner_ == nullptr) return false;
    if (stopped_) return true;
    if (pruner_->GoalMet()) {
      stopped_ = true;
      result_->early_exit_depth = depth;
      return true;
    }
    if (pruner_->AllDecided(order.data() + begin, end - begin)) {
      ++result_->nodes_pruned;
      return true;
    }
    return false;
  }

 private:
  GoalPruner* pruner_;
  ArspResult* result_;
  bool stopped_ = false;  // global goal-met early exit fired
};

/// Tight [pmin, pmax] corners of rows order[begin..end) (end > begin),
/// tightened by the dispatched ScoreCorners kernel (strict-inequality
/// updates: ties keep the first occurrence, identically to the scalar
/// reference on every arch).
inline void ComputeScoreCorners(const ScoreSpan& scores,
                                const std::vector<int>& order, int begin,
                                int end, std::vector<double>* pmin,
                                std::vector<double>* pmax) {
  const int dim = scores.dim;
  const double* first = scores.row(order[static_cast<size_t>(begin)]);
  pmin->assign(first, first + dim);
  pmax->assign(first, first + dim);
  if (end - begin > 1) {
    simd::Ops().ScoreCorners(scores.coords, dim,
                             order.data() + begin + 1, end - begin - 1,
                             pmin->data(), pmax->data());
  }
}

/// Moves candidates into D (σ) when they dominate pmin, keeps them in
/// `kept` when they dominate pmax; everything else is discarded for this
/// subtree. The two dominance tests per candidate run batched through the
/// ClassifyCorners kernel into `class_scratch` (runner-owned, resized on
/// demand — the classification is fully consumed before any recursion, so
/// one scratch serves every level); the scalar loop then applies the
/// σ/kept side effects in candidate order. Counts one dominance test per
/// candidate into `result`, as the scalar loop always has.
inline void FilterAspCandidates(const ScoreSpan& scores,
                                const std::vector<int>& parent_candidates,
                                const double* pmin, const double* pmax,
                                AspTraversalState* state,
                                std::vector<int>* kept,
                                std::vector<AspTraversalState::Change>*
                                    undo_log,
                                std::vector<unsigned char>* class_scratch,
                                ArspResult* result) {
  const int count = static_cast<int>(parent_candidates.size());
  if (count == 0) return;
  if (class_scratch->size() < static_cast<size_t>(count)) {
    class_scratch->resize(static_cast<size_t>(count));
  }
  simd::Ops().ClassifyCorners(scores.coords, scores.dim,
                              parent_candidates.data(), count, pmin, pmax,
                              class_scratch->data());
  result->dominance_tests += count;
  const unsigned char* classes = class_scratch->data();
  for (int c = 0; c < count; ++c) {
    const int cid = parent_candidates[static_cast<size_t>(c)];
    if (classes[c] == simd::kClassDominatesMin) {
      state->Add(scores.object(cid), scores.prob(cid), undo_log);
    } else if (classes[c] == simd::kClassDominatesMax) {
      kept->push_back(cid);
    }
  }
}

/// Terminal handling shared by every traversal mode; returns true when the
/// subtree [begin, end) of `order` is fully resolved (leaf emitted or
/// pruned):
///   χ ≥ 2        — two foreign full dominators: everything is zero;
///   χ = 1        — only instances coinciding with pmin (where σ is exact)
///                  can survive (see DESIGN.md);
///   pmin == pmax — true leaf; σ is exact for every (coincident) instance.
/// A terminal determines the exact probability of *every* instance in the
/// range (zeros included), so it is also the goal-pushdown resolution
/// point: when `pruner` is non-null each instance is reported to it once.
inline bool HandleAspTerminal(const ScoreSpan& scores,
                              const std::vector<int>& order, int begin,
                              int end, const double* pmin, const double* pmax,
                              const AspTraversalState& state,
                              ArspResult* result, GoalPruner* pruner) {
  if (state.chi() >= 2) {
    if (pruner != nullptr) {
      for (int i = begin; i < end; ++i) {
        pruner->Resolve(order[static_cast<size_t>(i)], 0.0);
      }
    }
    ++result->nodes_pruned;
    return true;
  }
  if (state.chi() == 1) {
    for (int i = begin; i < end; ++i) {
      const int id = order[static_cast<size_t>(i)];
      double prob = 0.0;
      if (CoordsEqual(scores.row(id), pmin, scores.dim)) {
        prob = state.LeafProbability(scores.object(id), scores.prob(id));
        result->instance_probs[static_cast<size_t>(id)] = prob;
      }
      if (pruner != nullptr) pruner->Resolve(id, prob);
    }
    ++result->nodes_pruned;
    return true;
  }
  if (CoordsEqual(pmin, pmax, scores.dim)) {
    for (int i = begin; i < end; ++i) {
      const int id = order[static_cast<size_t>(i)];
      const double prob =
          state.LeafProbability(scores.object(id), scores.prob(id));
      result->instance_probs[static_cast<size_t>(id)] = prob;
      if (pruner != nullptr) pruner->Resolve(id, prob);
    }
    return true;
  }
  return false;
}

}  // namespace internal
}  // namespace arsp

#endif  // ARSP_CORE_ASP_TRAVERSAL_STATE_H_
