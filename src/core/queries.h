// Copyright 2026 The ARSP Authors.
//
// Convenience query semantics built on top of a full ARSP result. The
// paper's motivation for computing *all* rskyline probabilities (§I) is
// exactly that every derived retrieval — top-k, probability thresholds,
// controllable result sizes — becomes a cheap post-processing step, with no
// need to pick a threshold up front.

#ifndef ARSP_CORE_QUERIES_H_
#define ARSP_CORE_QUERIES_H_

#include <utility>
#include <vector>

#include "src/core/arsp_result.h"
#include "src/core/query_goal.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Objects whose rskyline probability is at least `threshold`, sorted by
/// descending probability (the p-threshold query of Pei et al. [10] lifted
/// to rskylines). Pairs of (object id, probability).
std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const UncertainDataset& dataset,
    double threshold);

/// View variant; pairs carry base object ids (see TopKObjects).
std::vector<std::pair<int, double>> ObjectsAboveThreshold(
    const ArspResult& result, const DatasetView& view, double threshold);

/// Instances whose rskyline probability is at least `threshold`, sorted by
/// descending probability. Pairs of (instance id, probability).
std::vector<std::pair<int, double>> InstancesAboveThreshold(
    const ArspResult& result, double threshold);

/// Top-k instances by rskyline probability (ties broken by instance id).
std::vector<std::pair<int, double>> TopKInstances(const ArspResult& result,
                                                  int k);

/// The probability of the (max_objects)-th ranked object — the threshold
/// that targets a result of `max_objects` objects. Probability ties at that
/// rank extend the thresholded result past `max_objects` (the control is a
/// lower bound under ties). Gives users "controllable output size" without
/// re-running the query.
double ThresholdForObjectCount(const ArspResult& result,
                               const UncertainDataset& dataset,
                               int max_objects);

/// View variant of ThresholdForObjectCount.
double ThresholdForObjectCount(const ArspResult& result,
                               const DatasetView& view, int max_objects);

/// The ranked (base object id, probability) answer to an object-level goal,
/// from either a complete result (post-hoc slicing — identical to
/// TopKObjects / ObjectsAboveThreshold / the count-controlled recipe) or a
/// goal-pruned partial result (assembled from its exact object bounds; the
/// result's recorded goal must equal `goal`, CHECK-enforced — a partial
/// result answers nothing else). For kTopK with kIncludeTies,
/// *count_threshold (if non-null) receives the k-th ranked probability and
/// boundary ties extend the answer past k. Equivalence guarantee: both
/// paths select the same objects in the same order; probabilities agree up
/// to the sub-ulp drift of the traversals' incremental β bookkeeping when
/// goal pruning skips subtrees (≈1e-14 — each skipped add/undo pair is a
/// no-op only in exact arithmetic). Boundary ties are immune: the pruner
/// never excludes an object within kProbabilityEps of the cut, so ties are
/// settled on exactly evaluated values with the same id tie-break as the
/// post-hoc sort. The goal-equivalence suite asserts all of this across
/// the registry.
std::vector<std::pair<int, double>> AnswerGoal(
    const ArspResult& result, const DatasetView& view, const QueryGoal& goal,
    double* count_threshold = nullptr);

}  // namespace arsp

#endif  // ARSP_CORE_QUERIES_H_
