// Copyright 2026 The ARSP Authors.
//
// ArspEngine — the session-level query API over the solver layer. The
// paper's point in computing *all* rskyline probabilities (§I) is that every
// derived retrieval (top-k, p-threshold in the sense of Pei et al. [10],
// count-controlled results) becomes cheap post-processing; the engine makes
// that operational for long-lived callers:
//
//  * typed QueryRequest / QueryResponse instead of hand-assembled
//    ExecutionContext + SolverRegistry + queries.h plumbing per driver;
//  * a context pool keyed by (dataset, constraint fingerprint), so repeated
//    queries against the same dataset/constraints reuse preprocessing;
//  * an LRU result cache keyed by (dataset fingerprint — the handle id,
//    which uniquely and immutably identifies a registered dataset or view —
//    constraints, solver, options) in front of ArspSolver::Solve;
//  * SolveBatch fanning requests across a fixed thread pool (pooled
//    contexts are safe to share — ExecutionContext lazy-init is locked);
//  * "auto" solver selection from capability flags and data shape,
//    following the paper's §V guidance (KDTT+ default, DUAL for weight
//    ratios). "auto" is also a registry entry, so raw SolverRegistry users
//    and `arsp_cli --algo auto` get the same policy;
//  * AddView(handle, spec) — zero-copy DatasetView windows (full / m%
//    prefix / arbitrary object subset) registered as first-class query
//    targets. Pooled view queries derive their ExecutionContext from the
//    base dataset's pooled context, inheriting its indexes and score
//    storage, so a Fig. 6-style m% sweep pays exactly one full kd-/R-tree
//    build plus per-step delta work (asserted via index_stats());
//  * goal pushdown — derived requests (top-k / threshold / count-
//    controlled) are translated into a QueryGoal and pushed into the solver
//    when the resolved solver advertises kCapGoalPushdown: the solve
//    maintains per-object probability bounds, skips objects the goal has
//    decided, and stops early, returning a *partial* result that answers
//    exactly this goal (AnswerGoal). Post-hoc slicing of a full solve stays
//    as the fallback (and as the oracle in tests). Cache rules: a cached
//    full result serves any derived goal by slicing (subsumption), while a
//    goal-pruned partial result is cached only under a goal-specific key —
//    it is never returned for a full or different-goal request.
//
// The engine is the designated backend for the ROADMAP's service frontend:
// a daemon would hold one ArspEngine and translate wire requests into
// QueryRequests.

#ifndef ARSP_CORE_ENGINE_H_
#define ARSP_CORE_ENGINE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/core/arsp_result.h"
#include "src/core/solver.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Handle to a dataset or dataset view registered with an ArspEngine.
struct DatasetHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// The constraint family of a query: either weight ratio constraints (§IV)
/// or a general preference region (§III). Weight-ratio specs serve both the
/// DUAL family (which reads the ratios) and general-F solvers (the region is
/// derived lazily inside the ExecutionContext).
class ConstraintSpec {
 public:
  /// An empty (invalid) spec; Solve rejects requests carrying one.
  ConstraintSpec() = default;

  static ConstraintSpec Region(PreferenceRegion region) {
    ConstraintSpec spec;
    spec.spec_ = std::move(region);
    return spec;
  }
  static ConstraintSpec WeightRatios(WeightRatioConstraints wr) {
    ConstraintSpec spec;
    spec.spec_ = std::move(wr);
    return spec;
  }

  bool valid() const { return spec_.index() != 0; }
  bool has_weight_ratios() const { return spec_.index() == 2; }
  const PreferenceRegion& region() const {
    return std::get<PreferenceRegion>(spec_);
  }
  const WeightRatioConstraints& weight_ratios() const {
    return std::get<WeightRatioConstraints>(spec_);
  }

  /// Exact textual encoding of the constraints (family tag + every bound or
  /// vertex coordinate at full precision). Equal keys ⇔ equal constraints;
  /// used for context pooling and result caching.
  std::string CacheKey() const;

 private:
  std::variant<std::monostate, PreferenceRegion, WeightRatioConstraints>
      spec_;
};

/// Parses the CLI/service textual constraint syntax into a spec:
///   "wr:l1,h1[,l2,h2,...]"  — weight ratio ranges (needs dim-1 ranges)
///   "rank:c"                — weak ranking ω1 ≥ ... ≥ ωc+1
/// `dim` is the dataset dimensionality the spec must match.
StatusOr<ConstraintSpec> ParseConstraintSpec(const std::string& spec,
                                             int dim);

/// Which derived retrieval to compute from the full ARSP result.
enum class DerivedKind {
  kNone,                   ///< full ARSP only
  kTopKObjects,            ///< k objects by descending Pr_rsky
  kTopKInstances,          ///< k instances by descending Pr_rsky
  kObjectsAboveThreshold,  ///< p-threshold query lifted to rskylines
  /// The probability of the max_objects-th ranked object, as a result-size
  /// control knob; probability ties at that rank can extend the returned
  /// set past max_objects (the threshold is a lower bound under ties).
  kCountControlled,
};

/// Derived-query spec carried by a QueryRequest.
struct DerivedSpec {
  DerivedKind kind = DerivedKind::kNone;
  int k = 10;              ///< for kTopK*; negative = all
  double threshold = 0.5;  ///< for kObjectsAboveThreshold
  int max_objects = 10;    ///< for kCountControlled; must be ≥ 1
  /// Evaluation scope (view-local object range, half-open); [-1, -1) means
  /// the whole view. Scoped queries answer only for in-scope objects —
  /// probabilities are still evaluated against the full view, so a scoped
  /// answer is a bit-identical slice of the unscoped one. This is the
  /// cluster coordinator's work-partitioning primitive (src/cluster/).
  /// Ignored by kTopKInstances (instance retrievals need complete results).
  int scope_begin = -1;
  int scope_end = -1;
};

/// One query against the engine.
struct QueryRequest {
  DatasetHandle dataset;
  ConstraintSpec constraints;
  /// Registry name, or "auto" to let the engine pick per §V guidance.
  std::string solver = "auto";
  SolverOptions options;
  DerivedSpec derived;
  /// Serve from / store into the result cache.
  bool use_cache = true;
  /// Reuse a pooled ExecutionContext. Benchmarks that must pay (and
  /// measure) preprocessing per call set this to false for a private,
  /// discarded context.
  bool pool_context = true;
  /// Push the derived query's goal into the solver when it advertises
  /// kCapGoalPushdown (bound-based pruning + early termination; the
  /// response's `result` is then partial). Set to false to force the
  /// post-hoc path — full solve, then slicing — e.g. when the full
  /// instance-probability vector is also needed, or in A/B ablations.
  bool allow_pushdown = true;
  /// Intra-query worker budget for solvers advertising
  /// kCapIntraQueryParallel: 0 = engine policy (EngineOptions::query_threads
  /// plus the large-context heuristic), 1 = force serial, N ≥ 2 = request N
  /// workers (the process-global core budget may grant fewer). Results are
  /// bit-identical across every value by the parallel determinism contract,
  /// which is also why the result cache ignores this field.
  int parallelism = 0;
  /// Optional per-request trace (non-owning; the caller keeps it alive
  /// through Solve). Null — the default — disables tracing at zero cost:
  /// no allocation, no clock reads, bit-identical results (the cache also
  /// ignores this field). When set, the engine opens child spans for the
  /// cache probe, context acquire (with index build / snapshot adopt
  /// sub-spans), the solve itself (annotated with SolverStats counters),
  /// and derived-goal answering.
  obs::Trace* trace = nullptr;
};

/// Answer to a QueryRequest. The result payload is shared (it may also
/// live in the cache); derived answers are materialized per request.
struct QueryResponse {
  /// The solve's result. Complete — the full probability vector — unless
  /// goal pushdown ran (`pushdown` true): then it may be partial (check
  /// result->is_complete() before instance-level use; `ranked` and
  /// `count_threshold` are always valid and identical to the post-hoc
  /// answer).
  std::shared_ptr<const ArspResult> result;
  /// True iff the solve executed with goal pushdown (false = post-hoc
  /// slicing of a full result, the fallback path).
  bool pushdown = false;
  /// Resolved concrete solver (never "auto").
  std::string solver;
  /// Stats of the run that produced `result`; for cache hits, the stats of
  /// the original solve.
  SolverStats stats;
  bool cache_hit = false;
  /// (id, probability) pairs for kTopKObjects / kTopKInstances /
  /// kObjectsAboveThreshold / kCountControlled (the objects at or above
  /// `count_threshold` — ties can push the count past max_objects),
  /// descending by probability.
  std::vector<std::pair<int, double>> ranked;
  /// For kCountControlled: the max_objects-th ranked object's probability.
  double count_threshold = 0.0;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Max entries in the LRU result cache; 0 disables result caching.
  size_t result_cache_capacity = 256;
  /// Max pooled ExecutionContexts; least-recently-used contexts beyond the
  /// cap are evicted (in-flight solves keep theirs alive via shared
  /// ownership). Contexts hold dataset-sized artifacts, so a long-lived
  /// service serving many distinct constraints needs this bound. Must be
  /// ≥ 1.
  size_t context_pool_capacity = 64;
  /// SolveBatch worker threads; 0 = hardware concurrency. The pool is
  /// created lazily on the first SolveBatch.
  int num_threads = 0;
  /// Default intra-query worker budget for requests with parallelism == 0:
  /// 0 = auto (parallelize large contexts — kParallelMinInstances instances
  /// and up — across the remaining core budget; smaller queries run
  /// serially), 1 = serial unless a request asks, N ≥ 2 = request N workers
  /// for every parallel-capable query. Actual grants never exceed the
  /// process-global core budget (ARSP_THREADS / hardware concurrency).
  int query_threads = 0;
  /// Ring-buffer window for per-request latency percentiles (latency_stats);
  /// 0 disables latency tracking.
  size_t latency_window = 1024;
};

/// Instance count from which the auto policy (query_threads == 0) treats a
/// context as "large" and defaults parallel-capable solvers to parallel.
/// Below it, task-spawn overhead and frontier bookkeeping outweigh the
/// traversal work a worker can steal.
inline constexpr int kParallelMinInstances = 200000;

/// Long-lived query engine owning datasets, pooled contexts, the result
/// cache, and the batch thread pool. All public methods are thread-safe.
class ArspEngine {
 public:
  explicit ArspEngine(EngineOptions options = {});
  ~ArspEngine();

  ArspEngine(const ArspEngine&) = delete;
  ArspEngine& operator=(const ArspEngine&) = delete;

  /// Registers a dataset; the engine shares ownership. Callers wrapping a
  /// longer-lived dataset in a no-op deleter must keep it alive until
  /// DropDataset.
  DatasetHandle AddDataset(std::shared_ptr<const UncertainDataset> dataset);
  /// Convenience: takes ownership of a dataset by value.
  DatasetHandle AddDataset(UncertainDataset dataset);

  /// Registers a zero-copy view over a registered *base* dataset as a
  /// first-class query target: the returned handle works everywhere a
  /// dataset handle does (Solve, SolveBatch, derived queries — ranked
  /// results carry base object ids). The view shares the base's instance
  /// payloads; pooled queries against it derive their context from the
  /// base's pooled context, reusing its indexes and score storage.
  /// InvalidArgument for a view-of-a-view (compose specs against the base
  /// instead); NotFound for unknown handles.
  StatusOr<DatasetHandle> AddView(DatasetHandle base, ViewSpec spec);

  /// The base dataset behind a handle (for view handles, the base; shared
  /// ownership, so the reference stays valid across a concurrent
  /// DropDataset), or nullptr for an unknown or already-dropped handle —
  /// the same recoverable contract as Solve's NotFound.
  std::shared_ptr<const UncertainDataset> dataset(DatasetHandle handle) const;

  /// The view a handle queries (full for plain datasets); an invalid view
  /// for unknown handles.
  DatasetView view(DatasetHandle handle) const;

  /// Unregisters a dataset or view and evicts its pooled contexts; dropping
  /// a base dataset also drops every view registered over it. Cached
  /// results stay until LRU eviction but can no longer be hit (handles are
  /// never reused).
  Status DropDataset(DatasetHandle handle);

  /// Executes one request: context pool → result cache → solver → derived
  /// queries.
  StatusOr<QueryResponse> Solve(const QueryRequest& request);

  /// Executes requests concurrently on the engine's thread pool; the i-th
  /// outcome corresponds to requests[i]. Equivalent to calling Solve on
  /// each request serially (asserted by tests/engine_test.cc).
  std::vector<StatusOr<QueryResponse>> SolveBatch(
      const std::vector<QueryRequest>& requests);

  /// Moves the full result out of a response that uniquely owns it (the
  /// use_cache=false case), avoiding a copy in hot callers like benchmark
  /// loops; falls back to a copy when the payload is shared (cache hits).
  /// Lives on the engine because it relies on the engine's allocation
  /// invariant (payloads are created non-const). Aborts if the response
  /// carries no result.
  static ArspResult TakeResult(QueryResponse&& response);

  /// Result-cache instrumentation.
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    size_t entries = 0;
  };
  CacheStats cache_stats() const;
  void ClearResultCache();

  /// Per-request latency distribution. `count` is the lifetime number of
  /// successful Solve calls (SolveBatch entries included; failed requests
  /// are not recorded — their sub-microsecond rejects would drag the
  /// percentiles toward zero); min/mean/p50/p95/p99/p99.9 are computed over
  /// the most recent `window` requests (the EngineOptions::latency_window
  /// ring, so a long-lived service reports current behavior, not its
  /// lifetime average). Percentiles use the nearest-rank method — note the
  /// tail percentiles need a populated window to be meaningful (p99.9 over
  /// 100 samples is just the max). All zero when tracking is disabled or
  /// nothing has been recorded yet.
  struct LatencyStats {
    int64_t count = 0;    ///< lifetime requests recorded
    int64_t window = 0;   ///< requests in the ring right now
    double min_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;

    /// One-line "k=v" rendering for arsp_cli --stats and the daemon log.
    std::string ToString() const;
  };
  LatencyStats latency_stats() const;

  /// Number of pooled ExecutionContexts currently alive.
  size_t pooled_contexts() const;

  /// Aggregated ExecutionContext::IndexBuildStats over the pooled contexts
  /// of one handle. Sweep tests sum this across a base handle and its views
  /// to assert "one full index build, delta work per view".
  ExecutionContext::IndexBuildStats index_stats(DatasetHandle handle) const;

  /// Aggregated index/score memory of one handle's pooled contexts, split
  /// into heap-resident vs snapshot-mapped bytes (the out-of-core accounting
  /// the daemon's STATS reply and arsp_cli --stats report).
  ColumnBytes index_memory(DatasetHandle handle) const;

 private:
  struct CacheEntry {
    std::shared_ptr<const ArspResult> result;
    std::string solver;
    SolverStats stats;
    /// Mirrors result->is_complete(). Partial entries are stored only under
    /// goal-specific keys; this flag is the defensive cross-check that a
    /// full-key lookup can never hand out a partial result.
    bool complete = true;
    /// True iff the entry was produced by a goal-pushdown solve.
    bool pushdown = false;
  };
  using LruList = std::list<std::pair<std::string, CacheEntry>>;

  struct PooledContext {
    std::shared_ptr<ExecutionContext> context;
    uint64_t last_used = 0;  ///< tick of the most recent checkout
  };

  /// A registered query target: the base dataset payload plus the window
  /// over it (full for plain datasets). base_id == the entry's own id for
  /// base datasets, the base handle's id for views.
  struct DatasetEntry {
    std::shared_ptr<const UncertainDataset> dataset;
    DatasetView view;
    int base_id = -1;
  };

  StatusOr<QueryResponse> SolveImpl(const QueryRequest& request);

  /// Pooled full-view context for (base_id, constraint_key), creating (and
  /// capacity-evicting) one when absent. If the base entry was concurrently
  /// dropped the fresh context is returned unpooled (correct, just not
  /// reusable).
  std::shared_ptr<ExecutionContext> FindOrCreatePooledContext(
      int base_id, const std::string& constraint_key,
      const ConstraintSpec& constraints,
      const std::shared_ptr<const UncertainDataset>& base_dataset);

  EngineOptions options_;
  mutable std::mutex mu_;
  int next_dataset_id_ = 0;
  uint64_t pool_tick_ = 0;
  std::map<int, DatasetEntry> datasets_;
  std::map<std::pair<int, std::string>, PooledContext> contexts_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> cache_index_;
  /// (dataset id, constraint key) → resolved "auto" solver name, so cached
  /// auto queries skip context construction. Entries are pure recomputable
  /// functions of dataset shape + constraints; the map is cleared wholesale
  /// when it outgrows its bound.
  std::map<std::pair<int, std::string>, std::string> auto_memo_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  /// Latency ring: the last latency_window request latencies (ms), written
  /// round-robin at latency_next_. latency_count_ is the lifetime total.
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  int64_t latency_count_ = 0;
  std::unique_ptr<ThreadPool> pool_;  ///< lazily created; guarded by mu_
};

/// The solver name the "auto" policy picks for this context: DUAL-2D-MS in
/// its small-2d-IIP niche, DUAL under weight ratios, LOOP for tiny inputs
/// where tree setup dominates, KDTT+ otherwise — restricted to solvers
/// whose capability flags accept the context (§V guidance).
std::string AutoSelectSolverName(const ExecutionContext& context);

}  // namespace arsp

#endif  // ARSP_CORE_ENGINE_H_
