// Copyright 2026 The ARSP Authors.

#include "src/core/kdtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

class KdAspRunner {
 public:
  KdAspRunner(const std::vector<MappedInstance>& mapped, int num_objects,
              ArspResult* result)
      : mapped_(mapped),
        order_(mapped_.size()),
        state_(num_objects),
        result_(result) {
    std::iota(order_.begin(), order_.end(), 0);
  }

  // KDTT+: construction fused with traversal.
  void RunIntegrated() {
    if (mapped_.empty()) return;
    std::vector<int> candidates(order_);
    RecurseIntegrated(0, static_cast<int>(mapped_.size()), candidates);
  }

  // KDTT: build the full kd-tree, then pre-order traverse it.
  void RunPrebuilt() {
    if (mapped_.empty()) return;
    const int root = Build(0, static_cast<int>(mapped_.size()));
    std::vector<int> candidates(order_);
    Traverse(root, candidates);
  }

 private:
  struct Node {
    int begin, end;
    int left = -1, right = -1;
    Point pmin, pmax;
  };

  void ComputeCorners(int begin, int end, Point* pmin, Point* pmax) const {
    const int dim = mapped_.front().point.dim();
    *pmin = mapped_[static_cast<size_t>(order_[static_cast<size_t>(begin)])]
                .point;
    *pmax = *pmin;
    for (int i = begin + 1; i < end; ++i) {
      const Point& p =
          mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])].point;
      for (int k = 0; k < dim; ++k) {
        if (p[k] < (*pmin)[k]) (*pmin)[k] = p[k];
        if (p[k] > (*pmax)[k]) (*pmax)[k] = p[k];
      }
    }
  }

  int WidestDim(const Point& pmin, const Point& pmax) const {
    int dim = 0;
    double widest = -1.0;
    for (int k = 0; k < pmin.dim(); ++k) {
      const double extent = pmax[k] - pmin[k];
      if (extent > widest) {
        widest = extent;
        dim = k;
      }
    }
    return dim;
  }

  void PartitionRange(int begin, int end, int mid, int split_dim) {
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [this, split_dim](int a, int b) {
                       return mapped_[static_cast<size_t>(a)].point[split_dim] <
                              mapped_[static_cast<size_t>(b)].point[split_dim];
                     });
  }

  // Moves candidates into D (σ) when they dominate pmin, keeps them when
  // they dominate pmax; everything else is discarded for this subtree.
  void ProcessCandidates(const Point& pmin, const Point& pmax,
                         const std::vector<int>& parent_candidates,
                         std::vector<int>* kept,
                         std::vector<AspTraversalState::Change>* undo_log) {
    for (int cid : parent_candidates) {
      const MappedInstance& mi = mapped_[static_cast<size_t>(cid)];
      ++result_->dominance_tests;
      if (DominatesWeak(mi.point, pmin)) {
        state_.Add(mi.object, mi.prob, undo_log);
      } else if (DominatesWeak(mi.point, pmax)) {
        kept->push_back(cid);
      }
    }
  }

  // Terminal handling shared by both traversal modes. Returns true when the
  // subtree is fully resolved (leaf emitted or pruned).
  bool HandleTerminal(const Point& pmin, const Point& pmax, int begin,
                      int end) {
    if (state_.chi() >= 2) {
      // At least two distinct objects fully dominate pmin: every instance in
      // the subtree has at least one foreign full dominator — all zero.
      ++result_->nodes_pruned;
      return true;
    }
    if (state_.chi() == 1) {
      // One object's whole mass dominates pmin. Its own instances can still
      // survive, but (see DESIGN.md) they must coincide with pmin exactly,
      // where the accumulated σ is exact — emit them, prune the rest.
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        if (mi.point == pmin) {
          result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
              state_.LeafProbability(mi.object, mi.prob);
        }
      }
      ++result_->nodes_pruned;
      return true;
    }
    if (pmin == pmax) {
      // True leaf (single instance, or several coincident instances whose
      // mutual dominance is already inside σ).
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
            state_.LeafProbability(mi.object, mi.prob);
      }
      return true;
    }
    return false;
  }

  void RecurseIntegrated(int begin, int end,
                         const std::vector<int>& parent_candidates) {
    ++result_->nodes_visited;
    Point pmin, pmax;
    ComputeCorners(begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    ProcessCandidates(pmin, pmax, parent_candidates, &kept, &undo_log);

    if (!HandleTerminal(pmin, pmax, begin, end)) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin, pmax));
      RecurseIntegrated(begin, mid, kept);
      RecurseIntegrated(mid, end, kept);
    }
    state_.Undo(undo_log);
  }

  int Build(int begin, int end) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().begin = begin;
    nodes_.back().end = end;
    Point pmin, pmax;
    ComputeCorners(begin, end, &pmin, &pmax);
    nodes_[static_cast<size_t>(node_id)].pmin = pmin;
    nodes_[static_cast<size_t>(node_id)].pmax = pmax;
    if (end - begin > 1 && !(pmin == pmax)) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin, pmax));
      const int left = Build(begin, mid);
      const int right = Build(mid, end);
      nodes_[static_cast<size_t>(node_id)].left = left;
      nodes_[static_cast<size_t>(node_id)].right = right;
    }
    return node_id;
  }

  void Traverse(int node_id, const std::vector<int>& parent_candidates) {
    ++result_->nodes_visited;
    const Node& node = nodes_[static_cast<size_t>(node_id)];

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    ProcessCandidates(node.pmin, node.pmax, parent_candidates, &kept,
                      &undo_log);

    if (!HandleTerminal(node.pmin, node.pmax, node.begin, node.end)) {
      ARSP_DCHECK(node.left >= 0 && node.right >= 0);
      Traverse(node.left, kept);
      Traverse(node.right, kept);
    }
    state_.Undo(undo_log);
  }

  const std::vector<MappedInstance>& mapped_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  AspTraversalState state_;
  ArspResult* result_;
};

// Solver façade over both traversal modes; "kdtt+" fuses construction with
// the traversal, "kdtt" builds the full tree first. The mode is part of the
// solver's registered identity (two names), not an option — options must
// never make name() disagree with what the registry handed out.
class KdttSolver : public ArspSolver {
 public:
  explicit KdttSolver(bool integrated) : integrated_(integrated) {}

  const char* name() const override { return integrated_ ? "kdtt+" : "kdtt"; }
  const char* display_name() const override {
    return integrated_ ? "KDTT+" : "KDTT";
  }
  const char* description() const override {
    return integrated_
               ? "kd-tree traversal, construction fused with pruning "
                 "(Algorithm 1, the paper's default)"
               : "kd-tree traversal over a fully prebuilt tree";
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(context.dataset().num_instances()), 0.0);
    if (context.dataset().num_instances() == 0) return result;
    KdAspRunner runner(context.mapped_instances(),
                       context.dataset().num_objects(), &result);
    if (integrated_) {
      runner.RunIntegrated();
    } else {
      runner.RunPrebuilt();
    }
    return result;
  }

 private:
  const bool integrated_;
};

ARSP_REGISTER_SOLVER(kdtt, "kdtt",
                     [] { return std::make_unique<KdttSolver>(false); });
ARSP_REGISTER_SOLVER(kdtt_plus, "kdtt+",
                     [] { return std::make_unique<KdttSolver>(true); });

}  // namespace

namespace internal {
void LinkKdttSolver() {}
}  // namespace internal

ArspResult ComputeArspKdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const KdttOptions& options) {
  ExecutionContext context(dataset, region);
  return KdttSolver(options.integrated).Solve(context).value();
}

}  // namespace arsp
