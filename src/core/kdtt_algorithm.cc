// Copyright 2026 The ARSP Authors.

#include "src/core/kdtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

// Runs over the context's SoA score storage (ScoreSpan): rows are local
// instance ids, object ids are view-local. The hot candidate loops touch
// only the three dense arrays (coords, probs, objects) — no Instance or
// Point indirection.
class KdAspRunner {
 public:
  KdAspRunner(ScoreSpan scores, int num_objects, ArspResult* result,
              GoalPruner* pruner)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        state_(num_objects),
        result_(result),
        gate_(pruner, result) {
    std::iota(order_.begin(), order_.end(), 0);
  }

  // KDTT+: construction fused with traversal.
  void RunIntegrated() {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    RecurseIntegrated(0, scores_.n, candidates, 1);
  }

  // KDTT: build the full kd-tree, then pre-order traverse it.
  void RunPrebuilt() {
    if (scores_.n == 0) return;
    const int root = Build(0, scores_.n);
    std::vector<int> candidates(order_);
    Traverse(root, candidates, 1);
  }

 private:
  struct Node {
    int begin, end;
    int left = -1, right = -1;
    std::vector<double> pmin, pmax;
  };

  int WidestDim(const double* pmin, const double* pmax) const {
    int dim = 0;
    double widest = -1.0;
    for (int k = 0; k < dim_; ++k) {
      const double extent = pmax[k] - pmin[k];
      if (extent > widest) {
        widest = extent;
        dim = k;
      }
    }
    return dim;
  }

  void PartitionRange(int begin, int end, int mid, int split_dim) {
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [this, split_dim](int a, int b) {
                       return scores_.row(a)[split_dim] <
                              scores_.row(b)[split_dim];
                     });
  }

  void RecurseIntegrated(int begin, int end,
                         const std::vector<int>& parent_candidates,
                         int depth) {
    if (gate_.Skip(order_, begin, end, depth)) return;
    ++result_->nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &state_, &kept, &undo_log,
                                  &class_scratch_, result_);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), state_, result_,
                                     gate_.pruner())) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin.data(), pmax.data()));
      RecurseIntegrated(begin, mid, kept, depth + 1);
      RecurseIntegrated(mid, end, kept, depth + 1);
    }
    state_.Undo(undo_log);
  }

  int Build(int begin, int end) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().begin = begin;
    nodes_.back().end = end;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);
    nodes_[static_cast<size_t>(node_id)].pmin = pmin;
    nodes_[static_cast<size_t>(node_id)].pmax = pmax;
    if (end - begin > 1 && !CoordsEqual(pmin.data(), pmax.data(), dim_)) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin.data(), pmax.data()));
      const int left = Build(begin, mid);
      const int right = Build(mid, end);
      nodes_[static_cast<size_t>(node_id)].left = left;
      nodes_[static_cast<size_t>(node_id)].right = right;
    }
    return node_id;
  }

  void Traverse(int node_id, const std::vector<int>& parent_candidates,
                int depth) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (gate_.Skip(order_, node.begin, node.end, depth)) return;
    ++result_->nodes_visited;

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates,
                                  node.pmin.data(), node.pmax.data(), &state_,
                                  &kept, &undo_log, &class_scratch_, result_);

    if (!internal::HandleAspTerminal(scores_, order_, node.begin, node.end,
                                     node.pmin.data(), node.pmax.data(),
                                     state_, result_, gate_.pruner())) {
      ARSP_DCHECK(node.left >= 0 && node.right >= 0);
      Traverse(node.left, kept, depth + 1);
      Traverse(node.right, kept, depth + 1);
    }
    state_.Undo(undo_log);
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  std::vector<unsigned char> class_scratch_;  // FilterAspCandidates batches
  AspTraversalState state_;
  ArspResult* result_;
  internal::GoalGate gate_;
};

// Solver façade over both traversal modes; "kdtt+" fuses construction with
// the traversal, "kdtt" builds the full tree first. The mode is part of the
// solver's registered identity (two names), not an option — options must
// never make name() disagree with what the registry handed out.
class KdttSolver : public ArspSolver {
 public:
  explicit KdttSolver(bool integrated) : integrated_(integrated) {}

  const char* name() const override { return integrated_ ? "kdtt+" : "kdtt"; }
  const char* display_name() const override {
    return integrated_ ? "KDTT+" : "KDTT";
  }
  const char* description() const override {
    return integrated_
               ? "kd-tree traversal, construction fused with pruning "
                 "(Algorithm 1, the paper's default)"
               : "kd-tree traversal over a fully prebuilt tree";
  }
  uint32_t capabilities() const override { return kCapGoalPushdown; }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    KdAspRunner runner(scores, view.num_objects(), &result,
                       pruner.active() ? &pruner : nullptr);
    if (integrated_) {
      runner.RunIntegrated();
    } else {
      runner.RunPrebuilt();
    }
    pruner.Finish(&result);
    return result;
  }

 private:
  const bool integrated_;
};

ARSP_REGISTER_SOLVER(kdtt, "kdtt",
                     [] { return std::make_unique<KdttSolver>(false); });
ARSP_REGISTER_SOLVER(kdtt_plus, "kdtt+",
                     [] { return std::make_unique<KdttSolver>(true); });

}  // namespace

namespace internal {
void LinkKdttSolver() {}
}  // namespace internal

ArspResult ComputeArspKdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const KdttOptions& options) {
  ExecutionContext context(dataset, region);
  return KdttSolver(options.integrated).Solve(context).value();
}

}  // namespace arsp
