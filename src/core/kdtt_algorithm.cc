// Copyright 2026 The ARSP Authors.

#include "src/core/kdtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/parallel_traversal.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;
using internal::GoalChannel;
using internal::ParallelExecutor;
using internal::PathChain;
using internal::TraversalLane;

// Runs over the context's SoA score storage (ScoreSpan): rows are local
// instance ids, object ids are view-local. The hot candidate loops touch
// only the three dense arrays (coords, probs, objects) — no Instance or
// Point indirection.
//
// All traversal state lives in the TraversalLane the caller passes to the
// Run entry points; the runner itself holds only immutable inputs plus the
// shared `order` permutation and prebuilt nodes. With a ParallelExecutor,
// the walk above `frontier_depth` runs on the caller's lane and each child
// subtree at the frontier becomes one task: the task replays the captured
// root→subtree PathChain into its own lane (bitwise the serial Add
// sequence) and descends. Subtree ranges are disjoint and never revisited
// by ancestors, so concurrent tasks write disjoint order_/probs_ slices.
class KdAspRunner {
 public:
  KdAspRunner(ScoreSpan scores, double* probs, ParallelExecutor* executor,
              int frontier_depth)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        probs_(probs),
        executor_(executor),
        frontier_depth_(frontier_depth) {
    std::iota(order_.begin(), order_.end(), 0);
  }

  // KDTT+: construction fused with traversal.
  void RunIntegrated(TraversalLane& lane) {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    RecurseIntegrated(lane, 0, scores_.n, candidates, 1, nullptr);
  }

  // KDTT: build the full kd-tree (serially — construction is the cheap,
  // memory-bound phase), then pre-order traverse it.
  void RunPrebuilt(TraversalLane& lane) {
    if (scores_.n == 0) return;
    const int root = Build(0, scores_.n);
    std::vector<int> candidates(order_);
    Traverse(lane, root, candidates, 1, nullptr);
  }

 private:
  struct Node {
    int begin, end;
    int left = -1, right = -1;
    std::vector<double> pmin, pmax;
  };

  int WidestDim(const double* pmin, const double* pmax) const {
    int dim = 0;
    double widest = -1.0;
    for (int k = 0; k < dim_; ++k) {
      const double extent = pmax[k] - pmin[k];
      if (extent > widest) {
        widest = extent;
        dim = k;
      }
    }
    return dim;
  }

  void PartitionRange(int begin, int end, int mid, int split_dim) {
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [this, split_dim](int a, int b) {
                       return scores_.row(a)[split_dim] <
                              scores_.row(b)[split_dim];
                     });
  }

  void RecurseIntegrated(TraversalLane& lane, int begin, int end,
                         const std::vector<int>& parent_candidates, int depth,
                         const std::shared_ptr<const PathChain>& chain) {
    if (lane.SkipSubtree(order_, begin, end, depth)) return;
    ++lane.counters.nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    // Above the frontier, record this node's Add-deltas so frontier tasks
    // can replay the root→subtree path. Inside a task depth starts at the
    // frontier, so capture (and spawning) never re-fires there.
    const bool capture = executor_ != nullptr && depth < frontier_depth_;
    std::vector<std::pair<int, double>> adds;
    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &lane.state, &kept, &undo_log,
                                  &lane.class_scratch, &lane.counters,
                                  capture ? &adds : nullptr);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), lane.state, probs_,
                                     &lane.counters, &lane.channel)) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin.data(), pmax.data()));
      if (capture) {
        auto node_chain =
            std::make_shared<const PathChain>(chain, std::move(adds));
        if (depth + 1 == frontier_depth_) {
          auto shared_kept =
              std::make_shared<const std::vector<int>>(std::move(kept));
          SpawnIntegrated(node_chain, begin, mid, shared_kept);
          SpawnIntegrated(node_chain, mid, end, shared_kept);
        } else {
          RecurseIntegrated(lane, begin, mid, kept, depth + 1, node_chain);
          RecurseIntegrated(lane, mid, end, kept, depth + 1, node_chain);
        }
      } else {
        RecurseIntegrated(lane, begin, mid, kept, depth + 1, nullptr);
        RecurseIntegrated(lane, mid, end, kept, depth + 1, nullptr);
      }
    }
    lane.state.Undo(undo_log);
  }

  void SpawnIntegrated(const std::shared_ptr<const PathChain>& chain,
                       int begin, int end,
                       const std::shared_ptr<const std::vector<int>>& kept) {
    executor_->Spawn([this, chain, begin, end, kept](TraversalLane& lane) {
      if (lane.stopped) return;  // global goal-met: skip even the replay
      std::vector<AspTraversalState::Change> replay_log;
      chain->Replay(&lane.state, &replay_log);
      RecurseIntegrated(lane, begin, end, *kept, frontier_depth_, nullptr);
      lane.state.Undo(replay_log);
    });
  }

  int Build(int begin, int end) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().begin = begin;
    nodes_.back().end = end;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);
    nodes_[static_cast<size_t>(node_id)].pmin = pmin;
    nodes_[static_cast<size_t>(node_id)].pmax = pmax;
    if (end - begin > 1 && !CoordsEqual(pmin.data(), pmax.data(), dim_)) {
      const int mid = begin + (end - begin) / 2;
      PartitionRange(begin, end, mid, WidestDim(pmin.data(), pmax.data()));
      const int left = Build(begin, mid);
      const int right = Build(mid, end);
      nodes_[static_cast<size_t>(node_id)].left = left;
      nodes_[static_cast<size_t>(node_id)].right = right;
    }
    return node_id;
  }

  void Traverse(TraversalLane& lane, int node_id,
                const std::vector<int>& parent_candidates, int depth,
                const std::shared_ptr<const PathChain>& chain) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (lane.SkipSubtree(order_, node.begin, node.end, depth)) return;
    ++lane.counters.nodes_visited;

    const bool capture = executor_ != nullptr && depth < frontier_depth_;
    std::vector<std::pair<int, double>> adds;
    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates,
                                  node.pmin.data(), node.pmax.data(),
                                  &lane.state, &kept, &undo_log,
                                  &lane.class_scratch, &lane.counters,
                                  capture ? &adds : nullptr);

    if (!internal::HandleAspTerminal(scores_, order_, node.begin, node.end,
                                     node.pmin.data(), node.pmax.data(),
                                     lane.state, probs_, &lane.counters,
                                     &lane.channel)) {
      ARSP_DCHECK(node.left >= 0 && node.right >= 0);
      if (capture) {
        auto node_chain =
            std::make_shared<const PathChain>(chain, std::move(adds));
        if (depth + 1 == frontier_depth_) {
          auto shared_kept =
              std::make_shared<const std::vector<int>>(std::move(kept));
          SpawnPrebuilt(node_chain, node.left, shared_kept);
          SpawnPrebuilt(node_chain, node.right, shared_kept);
        } else {
          Traverse(lane, node.left, kept, depth + 1, node_chain);
          Traverse(lane, node.right, kept, depth + 1, node_chain);
        }
      } else {
        Traverse(lane, node.left, kept, depth + 1, nullptr);
        Traverse(lane, node.right, kept, depth + 1, nullptr);
      }
    }
    lane.state.Undo(undo_log);
  }

  void SpawnPrebuilt(const std::shared_ptr<const PathChain>& chain,
                     int node_id,
                     const std::shared_ptr<const std::vector<int>>& kept) {
    executor_->Spawn([this, chain, node_id, kept](TraversalLane& lane) {
      if (lane.stopped) return;
      std::vector<AspTraversalState::Change> replay_log;
      chain->Replay(&lane.state, &replay_log);
      Traverse(lane, node_id, *kept, frontier_depth_, nullptr);
      lane.state.Undo(replay_log);
    });
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  double* const probs_;  // result->instance_probs, disjoint subtree writes
  ParallelExecutor* const executor_;  // null = serial
  const int frontier_depth_;
};

// Solver façade over both traversal modes; "kdtt+" fuses construction with
// the traversal, "kdtt" builds the full tree first. The mode is part of the
// solver's registered identity (two names), not an option — options must
// never make name() disagree with what the registry handed out.
class KdttSolver : public ArspSolver {
 public:
  explicit KdttSolver(bool integrated) : integrated_(integrated) {}

  const char* name() const override { return integrated_ ? "kdtt+" : "kdtt"; }
  const char* display_name() const override {
    return integrated_ ? "KDTT+" : "KDTT";
  }
  const char* description() const override {
    return integrated_
               ? "kd-tree traversal, construction fused with pruning "
                 "(Algorithm 1, the paper's default)"
               : "kd-tree traversal over a fully prebuilt tree";
  }
  uint32_t capabilities() const override {
    return kCapGoalPushdown | kCapIntraQueryParallel;
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(
        options.ExpectOnly({"parallelism", "frontier_depth"}));
    ARSP_RETURN_IF_ERROR(
        internal::ReadParallelOptions(options, &parallelism_,
                                      &frontier_depth_));
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    GoalPruner* active = pruner.active() ? &pruner : nullptr;

    std::optional<internal::SharedGoalState> shared;
    std::optional<ParallelExecutor> executor;
    if (parallelism_ >= 2) {
      shared.emplace(active);
      executor.emplace(parallelism_, view.num_objects(), &*shared,
                       scores.objects);
      if (!executor->parallel()) {  // core budget granted a single worker
        executor.reset();
        shared.reset();
      }
    }
    if (executor.has_value()) {
      const int frontier =
          frontier_depth_ > 0
              ? frontier_depth_
              : internal::DefaultFrontierDepth(2, executor->num_workers());
      KdAspRunner runner(scores, result.instance_probs.data(), &*executor,
                         frontier);
      if (integrated_) {
        runner.RunIntegrated(executor->main_lane());
      } else {
        runner.RunPrebuilt(executor->main_lane());
      }
      executor->RunAndWait();
      executor->MergedCounters().StoreInto(&result);
      result.tasks_spawned = executor->tasks_spawned();
      result.tasks_stolen = executor->tasks_stolen();
      result.parallel_workers = executor->num_workers();
    } else {
      TraversalLane lane(view.num_objects(), GoalChannel(active));
      KdAspRunner runner(scores, result.instance_probs.data(), nullptr, 0);
      if (integrated_) {
        runner.RunIntegrated(lane);
      } else {
        runner.RunPrebuilt(lane);
      }
      lane.counters.StoreInto(&result);
    }
    pruner.Finish(&result);
    return result;
  }

 private:
  const bool integrated_;
  int parallelism_ = 1;
  int frontier_depth_ = 0;  // 0 = auto
};

ARSP_REGISTER_SOLVER(kdtt, "kdtt",
                     [] { return std::make_unique<KdttSolver>(false); });
ARSP_REGISTER_SOLVER(kdtt_plus, "kdtt+",
                     [] { return std::make_unique<KdttSolver>(true); });

}  // namespace

namespace internal {
void LinkKdttSolver() {}
}  // namespace internal

ArspResult ComputeArspKdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const KdttOptions& options) {
  ExecutionContext context(dataset, region);
  return KdttSolver(options.integrated).Solve(context).value();
}

}  // namespace arsp
