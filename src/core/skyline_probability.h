// Copyright 2026 The ARSP Authors.
//
// All skyline probabilities (ASP): the special case of ARSP where F is the
// set of all monotone scoring functions, so F-dominance is coordinate
// dominance (§II, [9], [11]–[13]). Used for the Table-II comparison between
// skyline and rskyline probability rankings.

#ifndef ARSP_CORE_SKYLINE_PROBABILITY_H_
#define ARSP_CORE_SKYLINE_PROBABILITY_H_

#include "src/core/arsp_result.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Computes the skyline probability of every instance (kd-ASP* on the
/// identity mapping; the full-simplex preference region's vertices are the
/// standard basis, so the mapped space is the data space itself).
ArspResult ComputeAllSkylineProbabilities(const UncertainDataset& dataset);

}  // namespace arsp

#endif  // ARSP_CORE_SKYLINE_PROBABILITY_H_
