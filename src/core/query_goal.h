// Copyright 2026 The ARSP Authors.
//
// QueryGoal — what a caller actually wants from an ARSP solve. The paper
// computes *all* rskyline probabilities so that derived retrievals (top-k,
// p-threshold in the sense of Pei et al. [10], count-controlled results)
// become post-processing; but when the caller's goal is known up front, the
// traversal algorithms can maintain per-object probability *bounds* and stop
// refining an object — or the whole solve — as soon as the goal is decided.
// A QueryGoal travels with the ExecutionContext down into the solvers that
// advertise kCapGoalPushdown (see GoalPruner in solver.h).
//
// The four user-facing goal flavors map onto kind × tie policy:
//   full              — {kFull}            every instance probability, exact
//   top-k             — {kTopK, kBreakById}    k objects, ties cut by id
//   count-controlled  — {kTopK, kIncludeTies}  ≥ k objects, boundary ties kept
//   p-threshold       — {kThreshold}       objects with Pr_rsky ≥ p
//
// A goal never changes *what* a probability is — only which probabilities
// must be exact for the answer. Solvers without the pushdown capability may
// ignore the goal entirely and return a complete result, which answers any
// goal by post-hoc slicing (queries.h).

#ifndef ARSP_CORE_QUERY_GOAL_H_
#define ARSP_CORE_QUERY_GOAL_H_

#include <string>

namespace arsp {

/// The answer shape a solve is asked for.
enum class GoalKind {
  kFull,       ///< all instance probabilities, exact (the classic ARSP)
  kTopK,       ///< the k objects with the largest Pr_rsky
  kThreshold,  ///< the objects with Pr_rsky >= p
};

/// How probability ties at the k-th object are handled (kTopK only).
enum class TiePolicy {
  /// Exactly k objects; ties at the boundary break on ascending base object
  /// id (the TopKObjects contract).
  kBreakById,
  /// All objects tying the k-th probability are included — the result can
  /// exceed k (the paper's count-controlled semantics: the k-th probability
  /// acts as a derived threshold).
  kIncludeTies,
};

/// Value type carried by ExecutionContext / ArspResult. Default-constructed
/// goals are kFull, so goal-oblivious code paths keep their semantics.
struct QueryGoal {
  GoalKind kind = GoalKind::kFull;
  /// Object count for kTopK; negative means "all objects" (treated as full
  /// work — no pruning is possible when every object must be exact).
  int k = -1;
  /// Probability threshold for kThreshold.
  double p = 0.0;
  TiePolicy ties = TiePolicy::kBreakById;
  /// Evaluation scope: the half-open view-local object range
  /// [scope_begin, scope_end) the answer concerns, or [-1, -1) for the
  /// whole view (unscoped). A scoped goal still evaluates probabilities
  /// against *every* object in the view — dominance is global — but only
  /// in-scope objects need exact values / can appear in the goal's answer.
  /// This is the coordinator's work-partitioning primitive: each shard
  /// holds the full dataset and solves a disjoint scope, and because the
  /// probability of an in-scope object is independent of which scope it is
  /// computed under, scoped answers are bit-identical slices of the
  /// unsharded answer. Out-of-scope objects are pre-decided (excluded) in
  /// the GoalPruner, so pushdown solvers skip their subtrees; non-pushdown
  /// solvers ignore scope and return complete results, which remain
  /// correct for any scope.
  int scope_begin = -1;
  int scope_end = -1;

  static QueryGoal Full() { return QueryGoal{}; }
  static QueryGoal TopK(int k, TiePolicy ties = TiePolicy::kBreakById) {
    return QueryGoal{GoalKind::kTopK, k, 0.0, ties};
  }
  static QueryGoal Threshold(double p) {
    return QueryGoal{GoalKind::kThreshold, -1, p, TiePolicy::kBreakById};
  }
  static QueryGoal CountControlled(int k) {
    return TopK(k, TiePolicy::kIncludeTies);
  }

  bool is_full() const { return kind == GoalKind::kFull; }

  bool has_scope() const { return scope_begin >= 0 && scope_end >= 0; }
  /// True iff view-local `object` is inside the evaluation scope (always
  /// true for unscoped goals).
  bool InScope(int object) const {
    return !has_scope() || (object >= scope_begin && object < scope_end);
  }
  /// Copy of this goal restricted to [begin, end).
  QueryGoal WithScope(int begin, int end) const {
    QueryGoal scoped = *this;
    scoped.scope_begin = begin;
    scoped.scope_end = end;
    return scoped;
  }

  friend bool operator==(const QueryGoal& a, const QueryGoal& b) {
    if (a.kind != b.kind) return false;
    if (a.scope_begin != b.scope_begin || a.scope_end != b.scope_end) {
      return false;
    }
    switch (a.kind) {
      case GoalKind::kFull:
        return true;
      case GoalKind::kTopK:
        return a.k == b.k && a.ties == b.ties;
      case GoalKind::kThreshold:
        return a.p == b.p;
    }
    return false;
  }
  friend bool operator!=(const QueryGoal& a, const QueryGoal& b) {
    return !(a == b);
  }

  /// Exact textual encoding (full precision for p). Equal keys ⇔ equal
  /// goals; ArspEngine appends it to result-cache keys of goal-pruned
  /// (partial) entries so they can never be confused with full results.
  std::string CacheKey() const;

  /// Human-readable form for logs and arsp_cli ("top-5", "threshold>=0.5").
  std::string ToString() const;
};

}  // namespace arsp

#endif  // ARSP_CORE_QUERY_GOAL_H_
