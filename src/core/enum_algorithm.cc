// Copyright 2026 The ARSP Authors.

#include "src/core/enum_algorithm.h"

#include "src/prefs/fdominance.h"
#include "src/uncertain/possible_worlds.h"

namespace arsp {

ArspResult ComputeArspEnum(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           double max_worlds) {
  ArspResult result;
  result.instance_probs.assign(
      static_cast<size_t>(dataset.num_instances()), 0.0);
  const std::vector<Point>& vertices = region.vertices();

  ForEachPossibleWorld(
      dataset,
      [&](const PossibleWorld& world) {
        // An instance is in the world's rskyline iff no other present
        // instance F-dominates it.
        for (int j = 0; j < dataset.num_objects(); ++j) {
          const int tid = world.choice[static_cast<size_t>(j)];
          if (tid < 0) continue;
          const Point& t = dataset.instance(tid).point;
          bool dominated = false;
          for (int l = 0; l < dataset.num_objects() && !dominated; ++l) {
            if (l == j) continue;
            const int sid = world.choice[static_cast<size_t>(l)];
            if (sid < 0) continue;
            ++result.dominance_tests;
            dominated = FDominatesVertex(dataset.instance(sid).point, t,
                                         vertices);
          }
          if (!dominated) {
            result.instance_probs[static_cast<size_t>(tid)] += world.prob;
          }
        }
      },
      max_worlds);
  return result;
}

}  // namespace arsp
