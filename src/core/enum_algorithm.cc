// Copyright 2026 The ARSP Authors.

#include "src/core/enum_algorithm.h"

#include <memory>

#include "src/core/solver.h"
#include "src/prefs/fdominance.h"
#include "src/uncertain/possible_worlds.h"

namespace arsp {

namespace {

ArspResult RunEnum(const DatasetView& view, const PreferenceRegion& region,
                   double max_worlds) {
  ArspResult result;
  result.instance_probs.assign(
      static_cast<size_t>(view.num_instances()), 0.0);
  const std::vector<Point>& vertices = region.vertices();

  ForEachPossibleWorld(
      view,
      [&](const PossibleWorld& world) {
        // An instance is in the world's rskyline iff no other present
        // instance F-dominates it.
        for (int j = 0; j < view.num_objects(); ++j) {
          const int tid = world.choice[static_cast<size_t>(j)];
          if (tid < 0) continue;
          const double* t = view.coords(tid);
          bool dominated = false;
          for (int l = 0; l < view.num_objects() && !dominated; ++l) {
            if (l == j) continue;
            const int sid = world.choice[static_cast<size_t>(l)];
            if (sid < 0) continue;
            ++result.dominance_tests;
            dominated = FDominatesVertex(view.coords(sid), t, vertices);
          }
          if (!dominated) {
            result.instance_probs[static_cast<size_t>(tid)] += world.prob;
          }
        }
      },
      max_worlds);
  return result;
}

class EnumSolver : public ArspSolver {
 public:
  const char* name() const override { return "enum"; }
  const char* display_name() const override { return "ENUM"; }
  const char* description() const override {
    return "possible-world enumeration (exponential ground truth); option "
           "max_worlds=N";
  }
  uint32_t capabilities() const override { return kCapExponentialTime; }

  Status ValidateContext(const ExecutionContext& context) const override {
    ARSP_RETURN_IF_ERROR(ArspSolver::ValidateContext(context));
    // Refuse oversized inputs here instead of tripping the enumeration's
    // fatal guard: validation errors are recoverable (and answerable over
    // the wire), a CHECK in a daemon is not.
    const double worlds = context.view().NumPossibleWorlds();
    if (worlds > max_worlds_) {
      return Status::FailedPrecondition(
          "ENUM over " + std::to_string(worlds) +
          " possible worlds exceeds max_worlds=" +
          std::to_string(max_worlds_));
    }
    return Status::OK();
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(options.ExpectOnly({"max_worlds"}));
    StatusOr<double> max_worlds = options.DoubleOr("max_worlds", max_worlds_);
    if (!max_worlds.ok()) return max_worlds.status();
    if (*max_worlds <= 0) {
      return Status::InvalidArgument("enum max_worlds must be positive");
    }
    max_worlds_ = *max_worlds;
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    return RunEnum(context.view(), context.region(), max_worlds_);
  }

 private:
  double max_worlds_ = 2e7;
};

ARSP_REGISTER_SOLVER(enumeration, "enum",
                     [] { return std::make_unique<EnumSolver>(); });

}  // namespace

namespace internal {
void LinkEnumSolver() {}
}  // namespace internal

ArspResult ComputeArspEnum(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           double max_worlds) {
  ExecutionContext context(dataset, region);
  EnumSolver solver;
  const Status st =
      solver.Configure(SolverOptions().SetDouble("max_worlds", max_worlds));
  ARSP_CHECK(st.ok());
  return solver.Solve(context).value();
}

}  // namespace arsp
