// Copyright 2026 The ARSP Authors.
//
// The unified solver abstraction over every ARSP algorithm family (§III-§IV):
// one problem — all rskyline probabilities — served by interchangeable
// algorithms (ENUM, LOOP, B&B, KDTT/KDTT+, QDTT+, MWTT, DUAL, DUAL-2D-MS).
//
//  * ArspSolver        — the algorithm interface: canonical name, capability
//                        flags, a typed option bag, and an instrumented
//                        Solve() entry point.
//  * SolverRegistry    — name → factory map; algorithm files self-register,
//                        so drivers never hand-roll string dispatch.
//  * ExecutionContext  — owns the once-per-query preprocessing every solver
//                        would otherwise recompute: the §III-B score-space
//                        mapping SV(·), the SoA score storage the traversal
//                        solvers iterate, query-independent index structures
//                        over the original points, and the instrumentation
//                        of the last run. Contexts target a DatasetView and
//                        can be Derived from a parent context, inheriting
//                        its artifacts (the zero-copy data plane).
//
// Adding a solver: subclass ArspSolver in the algorithm's .cc file, register
// it with ARSP_REGISTER_SOLVER, and (for solvers built into libarsp) add a
// link anchor in solver.cc so archive linking keeps the translation unit.
// See ARCHITECTURE.md for the full recipe.

#ifndef ARSP_CORE_SOLVER_H_
#define ARSP_CORE_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/column.h"
#include "src/common/status.h"
#include "src/core/arsp_result.h"
#include "src/index/kdtree.h"
#include "src/index/rtree.h"
#include "src/obs/trace.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/score_mapper.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Capability flags: what a solver needs from the query, and cost classes
/// that let harnesses budget runtime without naming algorithms.
enum SolverCaps : uint32_t {
  kCapNone = 0,
  /// Only runs under weight ratio constraints (§IV); the context must have
  /// been built from WeightRatioConstraints.
  kCapRequiresWeightRatios = 1u << 0,
  /// Only runs on 2-dimensional data (DUAL-2D-MS).
  kCapRequires2d = 1u << 1,
  /// Only runs when every object has a single instance (the IIP regime of
  /// §V-D that DUAL-2D-MS's prefix products assume).
  kCapRequiresSingleInstanceObjects = 1u << 2,
  /// Θ(n²) or worse in the instance count; harnesses skip large inputs.
  kCapQuadraticTime = 1u << 3,
  /// Exponential in the object count; executable ground truth only.
  kCapExponentialTime = 1u << 4,
  /// Work grows exponentially with the mapped dimensionality d' = |V|
  /// (QDTT+'s 2^{d'} quadrant fan-out); harnesses cap the vertex count.
  kCapExponentialInVertices = 1u << 5,
  /// Honors a non-full ExecutionContext::goal(): maintains per-object
  /// probability bounds through a GoalPruner, skips objects the goal has
  /// decided, stops early when the goal is met, and may return a partial
  /// (is_complete() == false) ArspResult. Solvers without this flag ignore
  /// the goal and return complete results — correct for any goal, just
  /// without the savings.
  kCapGoalPushdown = 1u << 6,
  /// Honors the "parallelism" solver option: splits the traversal across a
  /// work-stealing TaskArena at a frontier depth, with results bit-identical
  /// to the serial run by contract (see ARCHITECTURE.md, "Intra-query
  /// parallel executor"). Solvers without this flag reject the option.
  kCapIntraQueryParallel = 1u << 7,
};

/// Uniform instrumentation for one Solve() run: wall time split into the
/// context preprocessing this run triggered vs. the traversal itself, plus
/// the algorithm counters mirrored from ArspResult.
struct SolverStats {
  std::string solver;            ///< canonical solver name
  double setup_millis = 0.0;     ///< lazy context preprocessing this run paid
  double solve_millis = 0.0;     ///< total Solve() wall time (includes setup)
  int64_t dominance_tests = 0;   ///< pairwise F-dominance tests
  int64_t nodes_visited = 0;     ///< tree nodes expanded / constructed
  int64_t nodes_pruned = 0;      ///< subtrees pruned
  int64_t index_probes = 0;      ///< window / half-space index probes
  /// Goal-pushdown counters (zero for full-goal runs; see GoalPruner).
  int64_t objects_pruned = 0;     ///< objects decided out by bounds
  int64_t bound_refinements = 0;  ///< per-object bound updates applied
  int64_t early_exit_depth = 0;   ///< depth of the global goal-met stop
  /// Data-plane memory accounting, taken after the run: the context's index
  /// and score artifacts split by where their bytes live (heap-owned vs.
  /// snapshot-mapped), plus the process peak RSS (0 when the platform
  /// cannot report it).
  int64_t index_bytes_resident = 0;  ///< heap-owned index/score bytes
  int64_t index_bytes_mapped = 0;    ///< snapshot-borrowed (mmap) bytes
  int64_t peak_rss_bytes = 0;        ///< getrusage peak RSS of the process
  /// Intra-query parallelism counters (zero for serial runs).
  int64_t tasks_spawned = 0;    ///< subtree tasks submitted to the arena
  int64_t tasks_stolen = 0;     ///< tasks claimed by a non-owning worker
  int64_t parallel_workers = 0;  ///< arena workers granted (incl. caller)

  /// One-line "k=v" rendering for logs and arsp_cli --stats.
  std::string ToString() const;

  /// Annotates a trace span with the run's counters (zero-valued optional
  /// counters — the goal-pushdown and parallelism groups — are skipped to
  /// keep span trees readable). No-op on a disabled span. The counter list
  /// lives here, next to the struct, so the engine's solve span and any
  /// future reporter cannot drift from the fields.
  void AnnotateSpan(obs::ScopedSpan* span) const;
};

/// Typed option bag passed to ArspSolver::Configure. Values keep the type
/// they were set with; typed getters fail loudly on mismatches instead of
/// silently coercing.
class SolverOptions {
 public:
  using Value = std::variant<bool, int64_t, double, std::string>;

  SolverOptions& SetBool(const std::string& key, bool v);
  SolverOptions& SetInt(const std::string& key, int64_t v);
  SolverOptions& SetDouble(const std::string& key, double v);
  SolverOptions& SetString(const std::string& key, std::string v);

  bool empty() const { return values_.empty(); }
  bool Has(const std::string& key) const;
  std::vector<std::string> Keys() const;

  /// Typed reads with a default for absent keys. A present key of the wrong
  /// type is an InvalidArgument (ints widen to double in DoubleOr).
  StatusOr<bool> BoolOr(const std::string& key, bool def) const;
  StatusOr<int64_t> IntOr(const std::string& key, int64_t def) const;
  StatusOr<double> DoubleOr(const std::string& key, double def) const;
  StatusOr<std::string> StringOr(const std::string& key,
                                 std::string def) const;

  /// InvalidArgument when any key is not in `known` — solvers call this
  /// first so typos fail instead of being ignored.
  Status ExpectOnly(std::initializer_list<const char*> known) const;

  /// Parses a "key=value" pair (CLI --opt). Values parse as bool
  /// (true/false), int64, double, or fall back to string.
  Status ParseKeyValue(const std::string& spec);

  /// Deterministic rendering of the full bag ("key=type:value;..."), used as
  /// a component of ArspEngine result-cache keys. Equal bags produce equal
  /// strings and vice versa.
  std::string CacheKey() const;

 private:
  std::map<std::string, Value> values_;
};

class ExecutionContext;

/// Shared per-run bookkeeping for goal pushdown, used by every solver that
/// advertises kCapGoalPushdown. The traversal reports each instance's exact
/// rskyline probability the moment it is determined (Resolve); the pruner
/// maintains per-object bounds
///   lower  = Σ resolved instance probabilities,
///   upper  = lower + Σ existence probabilities of unresolved instances
/// (an instance's rskyline probability never exceeds its existence
/// probability), and decides objects against the goal:
///   threshold p — excluded once upper < p − ε; exact once all instances
///                 are resolved;
///   top-k       — excluded once upper < τ − ε, where τ is the k-th largest
///                 lower bound across objects (τ only grows, so a stale τ is
///                 always safe); ε = kProbabilityEps absorbs summation
///                 rounding, so an object near the cut is never excluded —
///                 it is refined to exactness and boundary ties are settled
///                 on exact values, exactly like post-hoc slicing.
/// The traversal asks AllDecided() to skip subtrees whose instances all
/// belong to decided objects, and GoalMet() to stop the whole solve once
/// every object is decided. Decisions are monotone — an object never
/// becomes undecided again — which is what makes both skips sound.
///
/// A pruner built from a full goal is inactive: every method is a cheap
/// no-op and solvers pass nullptr into their hot loops instead.
class GoalPruner {
 public:
  /// `scores` optionally hands the pruner the view's SoA score span: the
  /// per-object pending-mass accumulation then runs through the SumProbs
  /// kernel over the span's contiguous probability stream, and object
  /// lookups read the dense object-id stream instead of chasing Instance
  /// records. The span must cover exactly the view's instances in local
  /// order (what ExecutionContext::scores() returns) and outlive the
  /// pruner. Solvers without SoA storage (B&B) pass nullptr and get the
  /// instance-at-a-time path.
  GoalPruner(const QueryGoal& goal, const DatasetView& view,
             const ScoreSpan* scores = nullptr);

  /// False for unscoped full goals (and for unscoped top-k goals that
  /// cannot prune, e.g. k >= num_objects or k < 0 — every object must be
  /// exact anyway). A goal with a restricting evaluation scope is always
  /// active: out-of-scope objects are pre-decided (excluded) so the
  /// traversal skips subtrees that concern only them.
  bool active() const { return active_; }

  /// Records the exact rskyline probability of local instance `i`. Must be
  /// called exactly once per evaluated instance (zeros included — a pruned
  /// subtree's zeros are resolutions too).
  void Resolve(int i, double prob);

  /// Whether object `j`'s outcome is decided (exact or excluded). Solvers
  /// use it to skip per-instance work whose only purpose is j's own
  /// probability — never work that feeds *other* objects' probabilities.
  bool ObjectDecided(int j) const {
    return active_ && decided_[static_cast<size_t>(j)] != 0;
  }

  /// True when every instance in `ids[0..count)` belongs to a decided
  /// object — the subtree need not be visited at all.
  bool AllDecided(const int* ids, int count) const;

  /// True when every object is decided: the goal's answer is determined and
  /// the solve can stop. May lazily re-evaluate top-k exclusions (τ sweep).
  bool GoalMet();

  /// True when every instance was resolved (the run degenerated to a full
  /// solve); such a result is complete and answers any goal.
  bool all_resolved() const { return resolved_ == num_instances_; }

  int64_t objects_pruned() const { return objects_pruned_; }
  int64_t bound_refinements() const { return bound_refinements_; }

  /// Decided-object count / mask (object-indexed, 1 = decided), read by
  /// SharedGoalState to republish decisions to parallel lanes. The mask
  /// reference stays valid for the pruner's lifetime; callers snapshot it
  /// under their own synchronization.
  int decided_count() const { return decided_count_; }
  const std::vector<unsigned char>& decided_mask() const { return decided_; }

  /// Exports goal, bounds, decisions, completeness, and counters into the
  /// result. Exact objects' bounds are recomputed as instance-order sums
  /// over result->instance_probs — the same accumulation order as
  /// ObjectProbabilities — so the only divergence from post-hoc slicing of
  /// a full solve is the traversals' sub-ulp β drift across skipped
  /// subtrees (see AnswerGoal). No-op when inactive.
  void Finish(ArspResult* result) const;

 private:
  /// Existence probability / owning object of local instance `i`, through
  /// the span's dense streams when one was provided (bit-identical values
  /// either way — MapView copies them from the view).
  double InstanceProb(int i) const {
    return probs_ != nullptr ? probs_[static_cast<size_t>(i)]
                             : view_.prob(i);
  }
  int ObjectOf(int i) const {
    return objects_ptr_ != nullptr ? objects_ptr_[static_cast<size_t>(i)]
                                   : view_.object_of(i);
  }

  bool ExcludedNow(int j) const;
  void Decide(int j, bool excluded);
  void RefreshTau();
  /// Decides every undecided object with lower + pending < cut − ε as
  /// excluded, via one BoundSweepMask kernel pass over the SoA bounds.
  void SweepExclusions(double cut);

  QueryGoal goal_;
  DatasetView view_;
  const double* probs_ = nullptr;      ///< span probs, when provided
  const int* objects_ptr_ = nullptr;   ///< span object ids, when provided
  bool active_ = false;
  int num_instances_ = 0;
  int num_objects_ = 0;
  // Per-object state, structure-of-arrays: the τ/threshold sweeps walk
  // lower_/pending_/decided_ as dense streams through the BoundSweepMask
  // kernel instead of striding over an array of structs.
  AlignedVector<double> lower_;        ///< Σ resolved rskyline probabilities
  AlignedVector<double> pending_;      ///< Σ unresolved existence probs
  std::vector<int> unresolved_;        ///< #instances not yet resolved
  std::vector<unsigned char> decided_;
  std::vector<unsigned char> excluded_;
  std::vector<unsigned char> sweep_scratch_;  ///< BoundSweepMask output
  int undecided_ = 0;
  int decided_count_ = 0;
  int64_t resolved_ = 0;
  int64_t objects_pruned_ = 0;
  int64_t bound_refinements_ = 0;
  // Evaluation scope, clamped to [0, num_objects]: only objects in
  // [scope_begin_, scope_end_) are answer candidates. Unscoped goals get
  // the whole range.
  int scope_begin_ = 0;
  int scope_end_ = 0;
  /// Whether top-k bounds can ever exclude an in-scope object (requires
  /// 0 < k < |scope|; otherwise τ is ill-defined / nothing is decidable).
  bool topk_prunable_ = false;
  double tau_ = 0.0;            ///< k-th largest lower bound (top-k goals)
  int64_t since_refresh_ = 0;   ///< resolutions since the last τ sweep
  int64_t exact_since_refresh_ = 0;  ///< objects turned exact since then
  int64_t refresh_interval_ = 0;
  std::vector<double> tau_scratch_;
};

/// Interface every ARSP algorithm implements. Solvers are cheap to construct
/// and carry only configuration; all per-query state lives in the
/// ExecutionContext so one context can be solved by many algorithms (and,
/// later, by many threads against read-only preprocessing).
class ArspSolver {
 public:
  virtual ~ArspSolver() = default;

  /// Canonical registry name, e.g. "kdtt+".
  virtual const char* name() const = 0;
  /// Paper-style display name, e.g. "KDTT+" or "B&B".
  virtual const char* display_name() const = 0;
  /// One-line description for `arsp_cli --algo list`.
  virtual const char* description() const = 0;
  /// Bitwise OR of SolverCaps.
  virtual uint32_t capabilities() const { return kCapNone; }

  /// Applies solver-specific options. Unknown keys and type mismatches are
  /// InvalidArgument. The default accepts only an empty bag.
  virtual Status Configure(const SolverOptions& options) {
    return options.ExpectOnly({});
  }

  /// Checks the context against capabilities(); FailedPrecondition explains
  /// what is missing (e.g. DUAL without weight-ratio constraints). Virtual
  /// so solvers with input-size limits (ENUM's world cap) can refuse
  /// cleanly instead of tripping a fatal guard mid-solve; overrides must
  /// call the base first.
  virtual Status ValidateContext(const ExecutionContext& context) const;

  /// Validates, runs the algorithm, and records SolverStats (wall time via
  /// Stopwatch plus the ArspResult counters) into the context. Stats are
  /// built fresh for every run — a reused (pooled) context never accumulates
  /// counters across queries. If `stats_out` is non-null it receives this
  /// run's stats, which is race-free even when several threads solve against
  /// one shared context (last_stats() then only reports some latest run).
  /// Caveat: setup_millis is the growth of the context's setup total during
  /// the run, so when concurrent runs first-touch one context, setup paid by
  /// one thread can be attributed to every overlapping run (their sum can
  /// exceed wall setup time); counters other than setup_millis are exact.
  StatusOr<ArspResult> Solve(ExecutionContext& context,
                             SolverStats* stats_out = nullptr);

 protected:
  /// The algorithm body. Preprocessing comes from the context; anything the
  /// solver computes here is per-run.
  virtual StatusOr<ArspResult> SolveImpl(ExecutionContext& context) = 0;
};

/// Once-per-query state shared across solvers: a DatasetView (the query
/// target — a whole dataset or a zero-copy window of one), the constraint
/// family, and lazily computed (then cached) preprocessing artifacts. The
/// view's base dataset must outlive the context (or be owned by the view);
/// constraints are copied in.
///
/// Contexts form a derivation tree: Derive(parent, view) builds a child
/// context over a sub-view that inherits every view-independent artifact
/// from its parent — the preference region, the SV(·) mapper, and the
/// full-coverage kd-/R-trees (probed with the child view's id filter) — and
/// reuses the parent's SoA score storage where the numbering allows it
/// (zero-copy span truncation for prefix views, row gather for subsets).
/// An m% sweep derived from one base context therefore performs exactly one
/// full index build; index_build_stats() exposes the counters tests assert
/// this with.
///
/// Lazy initialization is thread-safe: accessors serialize on an internal
/// (recursive — they nest) mutex, and every artifact is immutable once
/// built, so ArspEngine can run many solvers against one pooled context
/// concurrently; threads only contend during first touch. Child contexts
/// lock themselves, then (on first touch) their parent — never the reverse,
/// so the hierarchy cannot deadlock.
class ExecutionContext {
 public:
  /// Context for a general preference region (weak ranking, interactive, or
  /// custom vertex sets). `goal` is the execution goal kCapGoalPushdown
  /// solvers honor (full = classic ARSP); it is immutable, so a context can
  /// be shared across threads regardless of goal.
  ExecutionContext(const UncertainDataset& dataset, PreferenceRegion region,
                   QueryGoal goal = {});
  ExecutionContext(DatasetView view, PreferenceRegion region,
                   QueryGoal goal = {});

  /// Context for weight ratio constraints. General-F solvers derive the
  /// preference region lazily through region(); DUAL-family solvers read the
  /// ratios directly.
  ExecutionContext(const UncertainDataset& dataset, WeightRatioConstraints wr,
                   QueryGoal goal = {});
  ExecutionContext(DatasetView view, WeightRatioConstraints wr,
                   QueryGoal goal = {});

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Child context over `view` with the parent's constraints. `view` must
  /// window the same base dataset and be contained in the parent's view
  /// (checked). The child shares the parent's constraint artifacts and
  /// index structures instead of rebuilding them. The child inherits the
  /// parent's goal; the overload below overrides it — ArspEngine derives a
  /// goal-scoped child over the *same* view from a pooled (goal-free)
  /// context, which costs nothing (every artifact, including the score
  /// span, is shared) and keeps pooled contexts reusable across goals.
  static std::shared_ptr<ExecutionContext> Derive(
      std::shared_ptr<const ExecutionContext> parent, DatasetView view);
  static std::shared_ptr<ExecutionContext> Derive(
      std::shared_ptr<const ExecutionContext> parent, DatasetView view,
      QueryGoal goal);

  /// The execution goal; immutable for the context's lifetime.
  const QueryGoal& goal() const { return goal_; }

  /// The base dataset behind the view.
  const UncertainDataset& dataset() const { return view_.base(); }

  /// The query target. Solvers read instances exclusively through this
  /// (local ids) or through scores().
  const DatasetView& view() const { return view_; }

  /// The parent this context was derived from, or nullptr.
  const ExecutionContext* parent() const { return parent_.get(); }

  bool has_weight_ratios() const { return wr_.has_value(); }
  /// The weight ratio constraints; only valid when has_weight_ratios().
  const WeightRatioConstraints& weight_ratios() const;

  /// The preference region Ω; derived from the weight ratios on first use
  /// when the context was built from them. Shared with the parent when
  /// derived.
  const PreferenceRegion& region() const;

  /// The §III-B score mapper SV(·) for region(). Cached; shared with the
  /// parent when derived.
  const ScoreMapper& mapper() const;

  /// SoA score storage of the view's instances (row i = local instance i,
  /// local object ids): what every tree-traversal solver iterates. Prefix
  /// views derived from a parent return a truncated window over the
  /// parent's buffer — zero copies; subset views gather rows from a parent
  /// buffer that already exists, else map their own rows.
  ScoreSpan scores() const;

  /// Kd-tree over the view's original instance points (weights =
  /// probabilities, ids = base instance ids), query-independent; used by
  /// the DUAL half-space probes. Derived contexts return the parent's tree
  /// (full coverage — callers filter by view().LocalInstanceOf and prune by
  /// view().id_bound()); root contexts build from their view once.
  const KdTree& instance_kdtree() const;

  /// STR-bulk-loaded R-tree over the view's original instance points (ids =
  /// base instance ids) with the given fan-out; same sharing rules as
  /// instance_kdtree. Cached per fan-out value, so callers alternating
  /// fan-outs (ablation benches, mixed batch queries) never rebuild. The
  /// cache holds at most kMaxCachedRtrees trees (long-lived pooled contexts
  /// must not grow one dataset-sized tree per distinct fan-out ever
  /// requested); shared ownership keeps a caller's tree valid across
  /// eviction.
  std::shared_ptr<const RTree> instance_rtree(int fanout) const;

  /// Bound on distinct fan-outs cached by instance_rtree.
  static constexpr size_t kMaxCachedRtrees = 8;

  /// True iff every object in the view has exactly one instance (the IIP
  /// regime).
  bool single_instance_objects() const;

  /// Data-plane instrumentation: what this context built itself versus
  /// served through its parent. A sweep of derived views over one base
  /// context must show exactly one full kd/R build in the whole tree.
  struct IndexBuildStats {
    int64_t kdtree_builds = 0;   ///< kd-trees this context built
    int64_t rtree_builds = 0;    ///< R-trees this context bulk-loaded
    int64_t score_maps = 0;      ///< SoA buffers filled by dot-product runs
    int64_t score_reuses = 0;    ///< spans served from the parent's buffer
    int64_t parent_index_hits = 0;  ///< index requests served by the parent
    int64_t snapshot_hits = 0;      ///< artifacts adopted from a snapshot

    /// Field-wise accumulation — the one place that must know every
    /// counter, so aggregators (engine, CLI, tests) cannot drift.
    IndexBuildStats& operator+=(const IndexBuildStats& other) {
      kdtree_builds += other.kdtree_builds;
      rtree_builds += other.rtree_builds;
      score_maps += other.score_maps;
      score_reuses += other.score_reuses;
      parent_index_hits += other.parent_index_hits;
      snapshot_hits += other.snapshot_hits;
      return *this;
    }
  };
  IndexBuildStats index_build_stats() const;

  /// Resident vs. mapped bytes of the index and score artifacts this context
  /// currently serves queries with (its kd-tree, cached R-trees, and score
  /// buffer — whether built in memory or adopted from a snapshot). Artifacts
  /// shared from a parent context or not yet lazily built are not counted.
  ColumnBytes IndexMemoryFootprint() const;

  /// Total lazy-preprocessing wall time paid on this context so far, in
  /// milliseconds. Monotonic; ArspSolver::Solve diffs it around a run to
  /// attribute the setup that run triggered. Parent work triggered through
  /// a derived context is charged to the derived context's total too.
  double total_setup_millis() const;

  /// Instrumentation of the most recent ArspSolver::Solve on this context
  /// (a snapshot — under concurrent solves, some latest run's stats).
  SolverStats last_stats() const;

  /// Publishes a finished run's stats (called by ArspSolver::Solve).
  void set_last_stats(const SolverStats& stats);

 private:
  // Accumulates lazy-preprocessing wall time into total_setup_millis_.
  class SetupTimer;

  ExecutionContext(std::shared_ptr<const ExecutionContext> parent,
                   DatasetView view, QueryGoal goal);

  DatasetView view_;
  QueryGoal goal_;  // immutable after construction
  std::optional<WeightRatioConstraints> wr_;
  std::shared_ptr<const ExecutionContext> parent_;  // nullptr for roots
  // mu_ guards every mutable member below. Recursive because the lazy
  // accessors nest (scores() -> mapper() -> region()).
  mutable std::recursive_mutex mu_;
  mutable std::optional<PreferenceRegion> region_;
  mutable std::optional<ScoreMapper> mapper_;
  mutable const PreferenceRegion* region_ptr_ = nullptr;  // own or parent's
  mutable const ScoreMapper* mapper_ptr_ = nullptr;       // own or parent's
  mutable std::optional<ScoreBuffer> scores_;  // owned storage, when any
  mutable ScoreSpan span_;                     // handed to solvers
  mutable bool span_ready_ = false;
  mutable std::optional<KdTree> kdtree_;
  mutable const KdTree* kdtree_ptr_ = nullptr;  // own or parent's
  struct CachedRtree {
    std::shared_ptr<const RTree> tree;
    uint64_t last_used = 0;  ///< tick of the most recent request
  };

  mutable std::map<int, CachedRtree> rtrees_;  // keyed by fan-out
  mutable uint64_t rtree_tick_ = 0;
  mutable std::optional<bool> single_instance_;
  mutable IndexBuildStats index_stats_;
  mutable int setup_depth_ = 0;
  mutable double total_setup_millis_ = 0.0;
  mutable SolverStats stats_;
};

/// Global name → factory registry. Algorithm translation units self-register
/// at static-initialization time through ARSP_REGISTER_SOLVER; solver.cc
/// anchors the built-in units so they survive static-archive linking.
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ArspSolver>()>;

  /// Canonical (lower-case) form of a solver name — the single definition
  /// of the registry's case-insensitivity, shared by everything that must
  /// agree with lookup (engine cache keys, CLI dispatch).
  static std::string Normalize(const std::string& name);

  /// Registers a factory under `name` (lookup is case-insensitive; the last
  /// registration of a name wins). Returns true so it can seed a static.
  static bool Register(const std::string& name, Factory factory);

  /// Creates the named solver, or NotFound listing the registered names.
  static StatusOr<std::unique_ptr<ArspSolver>> Create(const std::string& name);

  /// Create + Configure in one step.
  static StatusOr<std::unique_ptr<ArspSolver>> Create(
      const std::string& name, const SolverOptions& options);

  /// Sorted canonical names of every registered solver.
  static std::vector<std::string> Names();
};

/// Self-registration helper: expands to a static registrar evaluated before
/// main(). Use at namespace scope in the solver's translation unit.
#define ARSP_REGISTER_SOLVER(ident, name, ...)                       \
  static const bool arsp_solver_registered_##ident =                 \
      ::arsp::SolverRegistry::Register((name), __VA_ARGS__)

}  // namespace arsp

#endif  // ARSP_CORE_SOLVER_H_
