// Copyright 2026 The ARSP Authors.

#include "src/core/loop_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/core/solver.h"
#include "src/prefs/fdominance.h"

namespace arsp {

namespace {

ArspResult RunLoop(const DatasetView& view, const PreferenceRegion& region) {
  const int n = view.num_instances();
  const int m = view.num_objects();
  ArspResult result;
  result.instance_probs.assign(static_cast<size_t>(n), 0.0);
  if (n == 0) return result;

  const std::vector<Point>& vertices = region.vertices();
  const Point& omega = vertices.front();

  // Sort instance ids by score under ω; an F-dominator of t can only appear
  // at a score ≤ t's score, i.e. at an earlier position or inside t's
  // equal-score group.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> keys(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys[static_cast<size_t>(i)] = Score(omega, view.coords(i));
  }
  std::sort(order.begin(), order.end(), [&keys](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });

  // σ[j] is reset lazily through the touched list (m can be large).
  std::vector<double> sigma(static_cast<size_t>(m), 0.0);
  std::vector<int> touched;

  int group_begin = 0;
  while (group_begin < n) {
    // The equal-score group [group_begin, group_end).
    int group_end = group_begin + 1;
    const double key = keys[static_cast<size_t>(order[
        static_cast<size_t>(group_begin)])];
    while (group_end < n &&
           keys[static_cast<size_t>(order[static_cast<size_t>(group_end)])] ==
               key) {
      ++group_end;
    }

    for (int pos = group_begin; pos < group_end; ++pos) {
      const int tid = order[static_cast<size_t>(pos)];
      const double* t_row = view.coords(tid);
      const int t_object = view.object_of(tid);
      touched.clear();
      // Candidate dominators: everything strictly before the group plus the
      // other members of the group.
      for (int prev = 0; prev < group_end; ++prev) {
        if (prev == pos) continue;
        const int sid = order[static_cast<size_t>(prev)];
        const int s_object = view.object_of(sid);
        if (s_object == t_object) continue;
        ++result.dominance_tests;
        if (FDominatesVertex(view.coords(sid), t_row, vertices)) {
          if (sigma[static_cast<size_t>(s_object)] == 0.0) {
            touched.push_back(s_object);
          }
          sigma[static_cast<size_t>(s_object)] += view.prob(sid);
        }
      }
      double prob = view.prob(tid);
      for (int j : touched) {
        const double sum = sigma[static_cast<size_t>(j)];
        if (sum >= 1.0 - kProbabilityEps) {
          prob = 0.0;
          break;
        }
        prob *= (1.0 - sum);
      }
      result.instance_probs[static_cast<size_t>(tid)] = prob;
      for (int j : touched) sigma[static_cast<size_t>(j)] = 0.0;
    }
    group_begin = group_end;
  }
  return result;
}

class LoopSolver : public ArspSolver {
 public:
  const char* name() const override { return "loop"; }
  const char* display_name() const override { return "LOOP"; }
  const char* description() const override {
    return "quadratic sorted-scan baseline evaluating Eq. (3) directly";
  }
  uint32_t capabilities() const override { return kCapQuadraticTime; }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    return RunLoop(context.view(), context.region());
  }
};

ARSP_REGISTER_SOLVER(loop, "loop",
                     [] { return std::make_unique<LoopSolver>(); });

}  // namespace

namespace internal {
void LinkLoopSolver() {}
}  // namespace internal

ArspResult ComputeArspLoop(const UncertainDataset& dataset,
                           const PreferenceRegion& region) {
  ExecutionContext context(dataset, region);
  return LoopSolver().Solve(context).value();
}

}  // namespace arsp
