// Copyright 2026 The ARSP Authors.

#include "src/core/query_goal.h"

#include <sstream>

namespace arsp {

std::string QueryGoal::CacheKey() const {
  std::ostringstream os;
  os.precision(17);
  switch (kind) {
    case GoalKind::kFull:
      os << "full";
      break;
    case GoalKind::kTopK:
      os << "topk:" << k << ':'
         << (ties == TiePolicy::kIncludeTies ? "ties" : "cut");
      break;
    case GoalKind::kThreshold:
      os << "thr:" << p;
      break;
  }
  if (has_scope()) os << ":scope:" << scope_begin << ':' << scope_end;
  return os.str();
}

std::string QueryGoal::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case GoalKind::kFull:
      os << "full";
      break;
    case GoalKind::kTopK:
      os << (ties == TiePolicy::kIncludeTies ? "count<=" : "top-") << k;
      break;
    case GoalKind::kThreshold:
      os << "threshold>=" << p;
      break;
  }
  if (has_scope()) {
    os << " scope=[" << scope_begin << ',' << scope_end << ')';
  }
  return os.str();
}

}  // namespace arsp
