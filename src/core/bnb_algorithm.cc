// Copyright 2026 The ARSP Authors.

#include "src/core/bnb_algorithm.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/task_arena.h"
#include "src/core/solver.h"
#include "src/index/rtree.h"
#include "src/prefs/fdominance.h"
#include "src/prefs/score_mapper.h"
#include "src/simd/kernels.h"

namespace arsp {

namespace {

// A heap element: either an R-tree node or a single instance, ordered by
// the score of its lower corner under the reference vertex ω (best-first).
struct HeapEntry {
  double key;
  int node_id;      // flat node id; -1 for instance entries
  int instance_id;  // valid when node_id < 0

  bool operator>(const HeapEntry& other) const { return key > other.key; }
};

// Incremental per-object bookkeeping: the aggregated R-tree over mapped
// instances with non-zero probability, the running max corner p_i, and the
// accumulated probability mass deciding membership in the pruning set P.
struct ObjectState {
  std::unique_ptr<RTree> tree;
  Point max_corner;
  double cum_prob = 0.0;
  bool in_pruning_set = false;
};

// The pruning set P as a dense row-major matrix (|P| rows × d' doubles):
// the Theorem-3 membership probe is one AnyRowDominates kernel sweep over
// contiguous rows instead of |P| Point-indirected scalar loops.
struct PruningSet {
  AlignedVector<double> rows;  // row-major, dim doubles per entry
  int count = 0;
  int dim = 0;

  void Add(const Point& corner) {
    rows.insert(rows.end(), corner.coords().begin(), corner.coords().end());
    ++count;
  }

  bool Prunes(const Point& mapped) const {
    if (count == 0) return false;
    return simd::Ops().AnyRowDominates(rows.data(), count, dim,
                                       mapped.coords().data());
  }
};

// A Theorem-3 node prune proves Pr_rsky = 0 for every instance under the
// node; with goal pushdown active those zeros are bound resolutions, so the
// subtree is walked once to report them (all-delta subtrees and ids outside
// the view are not the view's instances and are skipped like everywhere
// else).
void ResolveSubtreeZero(const RTree& tree, int node_id,
                        const DatasetView& view, int id_bound,
                        GoalPruner* pruner) {
  const int count = tree.node_count(node_id);
  if (tree.node_is_leaf(node_id)) {
    for (int k = 0; k < count; ++k) {
      const int local =
          view.LocalInstanceOf(tree.entry_id(tree.node_kid(node_id, k)));
      if (local >= 0) pruner->Resolve(local, 0.0);
    }
    return;
  }
  for (int k = 0; k < count; ++k) {
    const int child = tree.node_kid(node_id, k);
    if (tree.node_min_id(child) >= id_bound) continue;
    ResolveSubtreeZero(tree, child, view, id_bound, pruner);
  }
}

ArspResult RunBnb(ExecutionContext& context, const BnbOptions& options) {
  const DatasetView& view = context.view();
  ArspResult result;
  const int n = view.num_instances();
  const int m = view.num_objects();
  result.instance_probs.assign(static_cast<size_t>(n), 0.0);
  if (n == 0) return result;

  const ScoreMapper& mapper = context.mapper();
  const int mapped_dim = mapper.mapped_dim();
  const Point& omega = context.region().vertices().front();

  GoalPruner goal_pruner(context.goal(), view);
  GoalPruner* pruner = goal_pruner.active() ? &goal_pruner : nullptr;
  int64_t rounds = 0;

  // Lower corner of the mapped space: scores are monotone in every
  // coordinate (ω ≥ 0), so the score of the view's min corner bounds
  // every instance's score from below. Used as the window-query origin.
  const Point mapped_origin = mapper.Map(view.bounds().min_corner());

  // The bulk-loaded R-tree over the *original* space is query-independent
  // and shared through the context; SV is computed on the fly only for
  // instances that survive pruning. The shared_ptr pins the tree for this
  // run even if the context's per-fanout cache evicts it. For a derived
  // view the tree is the parent's full-coverage one (entry ids are base
  // instance ids): leaf hits translate through LocalInstanceOf, and
  // subtrees whose min_id() is past the view's id_bound() are all delta
  // data — skipped without descent (the prefix-reuse path). Node MBRs of a
  // shared tree are supersets of the view's true boxes, which only makes
  // the best-first keys and pruning conservative, never wrong.
  const std::shared_ptr<const RTree> data_tree_ptr =
      context.instance_rtree(options.rtree_fanout);
  const RTree& data_tree = *data_tree_ptr;
  const int id_bound = view.id_bound();

  std::vector<ObjectState> objects(static_cast<size_t>(m));
  PruningSet pruning_set;  // |P| ≤ m (Theorem 4)
  pruning_set.dim = mapped_dim;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push(HeapEntry{Score(omega, data_tree.node_lo(data_tree.root_id())),
                      data_tree.root_id(), -1});

  // Scratch for mapping node lower corners through SV without a Point
  // allocation per visited node.
  Point node_mapped(mapped_dim);

  // Scratch for batch processing of equal-key instances.
  struct BatchItem {
    int instance_id;
    Point mapped;
    std::vector<double> sigma;  // per-object dominating mass
    bool zeroed = false;
    /// Goal pushdown: the instance's object is already decided, so its own
    /// probability is not needed. Phase 1/2 evaluation of it is skipped and
    /// it stays unresolved; only its mass (phases 2-out and 3) matters.
    bool skip_eval = false;
  };
  std::vector<BatchItem> batch;
  AlignedVector<double> batch_rows;       // phase-2 dense mapped points
  std::vector<unsigned char> batch_mask;  // phase-2 dominance masks

  // Intra-query parallelism: phase 1 (the window queries) is the only
  // parallel section — every aggregated tree is read-only there and each
  // item's σ vector is private, so fanning the per-item loops across the
  // arena is trivially bit-identical to serial (the j-order accumulation
  // into σ happens inside one task). One arena serves every round; a
  // budget grant of a single worker degrades to the serial loop.
  std::optional<TaskArena> arena;
  if (options.parallelism >= 2) {
    arena.emplace(options.parallelism);
    if (arena->num_workers() < 2) arena.reset();
  }

  // Phase-1 body for one batch item; `probes` receives this item's window
  // probes (accumulated into result.index_probes in item order afterwards,
  // matching the serial count exactly).
  const auto probe_item = [&](BatchItem& item, int64_t* probes) {
    const int own = view.object_of(item.instance_id);
    // Guard against sub-ulp inversions of the origin bound.
    Point window_lo = mapped_origin;
    for (int k = 0; k < mapped_dim; ++k) {
      window_lo[k] = std::min(window_lo[k], item.mapped[k]);
    }
    const Mbr window(std::move(window_lo), item.mapped);
    for (int j = 0; j < m; ++j) {
      if (j == own || objects[static_cast<size_t>(j)].tree == nullptr) {
        continue;
      }
      ++*probes;
      item.sigma[static_cast<size_t>(j)] +=
          objects[static_cast<size_t>(j)].tree->WindowSum(window);
    }
  };
  std::vector<int64_t> probe_counts;  // per-item, parallel rounds only

  while (!heap.empty()) {
    // Goal pushdown: once every object is decided, nothing left in the
    // heap can change the answer (inserted mass is only ever needed to
    // evaluate *later* instances, and none need evaluating). Checked at
    // round start so that decisions made by prune-only rounds — Theorem-3
    // node walks and P-pruned instances resolve zeros without producing a
    // batch — still stop the solve.
    if (pruner != nullptr && pruner->GoalMet()) {
      result.early_exit_depth = rounds;
      break;
    }
    ++rounds;
    const double key = heap.top().key;
    batch.clear();

    // Drain every entry with this exact key: expand nodes (their children
    // with equal keys are drained in the same round) and collect instances.
    // Batching keeps Eq. (3) symmetric for instances with tied scores,
    // including exact duplicates.
    while (!heap.empty() && heap.top().key == key) {
      const HeapEntry entry = heap.top();
      heap.pop();
      if (entry.node_id >= 0) {
        ++result.nodes_visited;
        const int node = entry.node_id;
        if (options.enable_pruning) {
          if (mapped_dim > 0) {
            mapper.MapRowInto(data_tree.node_lo(node), &node_mapped[0]);
          }
          if (pruning_set.Prunes(node_mapped)) {
            ++result.nodes_pruned;
            if (pruner != nullptr) {
              ResolveSubtreeZero(data_tree, node, view, id_bound, pruner);
            }
            continue;
          }
        }
        const int count = data_tree.node_count(node);
        if (data_tree.node_is_leaf(node)) {
          for (int k = 0; k < count; ++k) {
            const int e = data_tree.node_kid(node, k);
            const int local = view.LocalInstanceOf(data_tree.entry_id(e));
            if (local < 0) continue;  // outside the view (shared tree)
            heap.push(
                HeapEntry{Score(omega, data_tree.entry_coords(e)), -1, local});
          }
        } else {
          for (int k = 0; k < count; ++k) {
            const int child = data_tree.node_kid(node, k);
            if (data_tree.node_min_id(child) >= id_bound) {
              continue;  // all-delta subtree
            }
            heap.push(HeapEntry{Score(omega, data_tree.node_lo(child)),
                                child, -1});
          }
        }
        continue;
      }
      // Instance entry (local id).
      Point mapped(mapped_dim);
      if (mapped_dim > 0) {
        mapper.MapRowInto(view.coords(entry.instance_id), &mapped[0]);
      }
      if (options.enable_pruning && pruning_set.Prunes(mapped)) {
        ++result.nodes_pruned;
        if (pruner != nullptr) pruner->Resolve(entry.instance_id, 0.0);
        continue;  // Pr_rsky = 0; Theorem 3 allows discarding it entirely.
      }
      BatchItem item;
      item.instance_id = entry.instance_id;
      item.mapped = std::move(mapped);
      item.skip_eval = pruner != nullptr &&
                       pruner->ObjectDecided(view.object_of(entry.instance_id));
      if (!item.skip_eval) item.sigma.assign(static_cast<size_t>(m), 0.0);
      batch.push_back(std::move(item));
    }

    if (batch.empty()) continue;

    // Phase 1: window queries against the aggregated R-trees (all strictly
    // earlier instances with non-zero probability are indexed there).
    // Decided objects' items skip this — the window queries only ever feed
    // the item's own probability, which the goal no longer needs.
    size_t eligible = 0;
    for (const BatchItem& item : batch) {
      if (!item.skip_eval) ++eligible;
    }
    if (arena.has_value() && eligible >= 2) {
      probe_counts.assign(batch.size(), 0);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].skip_eval) continue;
        arena->Submit([&probe_item, &batch, &probe_counts, i](int) {
          probe_item(batch[i], &probe_counts[i]);
        });
      }
      arena->RunAndWait();
      for (size_t i = 0; i < batch.size(); ++i) {
        result.index_probes += probe_counts[i];
      }
    } else {
      for (BatchItem& item : batch) {
        if (item.skip_eval) continue;
        probe_item(item, &result.index_probes);
      }
    }

    // Phase 2: tied instances of this round dominate each other whenever
    // their mapped points weakly dominate; count that mass symmetrically
    // before anything is inserted. The batch's mapped points are packed
    // into a dense row matrix once, then each source instance s takes one
    // DominatedMask kernel sweep over the whole batch (mask[t] = 1 iff
    // s ⪯ t); the scalar loop applies the same-object/skip filters and
    // counts tests exactly as before.
    if (batch.size() > 1) {
      const size_t batch_n = batch.size();
      batch_rows.resize(batch_n * static_cast<size_t>(mapped_dim));
      for (size_t i = 0; i < batch_n; ++i) {
        std::copy(batch[i].mapped.coords().begin(),
                  batch[i].mapped.coords().end(),
                  batch_rows.begin() + static_cast<size_t>(mapped_dim) * i);
      }
      batch_mask.resize(batch_n);
      for (size_t si = 0; si < batch_n; ++si) {
        const BatchItem& s = batch[si];
        const int s_object = view.object_of(s.instance_id);
        const double s_prob = view.prob(s.instance_id);
        simd::Ops().DominatedMask(batch_rows.data(),
                                  static_cast<int>(batch_n), mapped_dim,
                                  s.mapped.coords().data(),
                                  batch_mask.data());
        for (size_t ti = 0; ti < batch_n; ++ti) {
          BatchItem& t = batch[ti];
          if (si == ti) continue;
          if (t.skip_eval) continue;  // t's sigma is never read
          if (s_object == view.object_of(t.instance_id)) continue;
          ++result.dominance_tests;
          if (batch_mask[ti] != 0) {
            t.sigma[static_cast<size_t>(s_object)] += s_prob;
          }
        }
      }
    }

    // Compute probabilities and decide survival.
    for (BatchItem& item : batch) {
      if (item.skip_eval) continue;  // stays unresolved; object is decided
      const int own_object = view.object_of(item.instance_id);
      double prob = view.prob(item.instance_id);
      for (int j = 0; j < m && !item.zeroed; ++j) {
        if (j == own_object) continue;
        const double sum = item.sigma[static_cast<size_t>(j)];
        if (sum <= 0.0) continue;
        if (sum >= 1.0 - kProbabilityEps) {
          item.zeroed = true;
        } else {
          prob *= (1.0 - sum);
        }
      }
      if (item.zeroed) {
        if (pruner != nullptr) pruner->Resolve(item.instance_id, 0.0);
        continue;  // probability stays 0
      }
      result.instance_probs[static_cast<size_t>(item.instance_id)] = prob;
      if (pruner != nullptr) pruner->Resolve(item.instance_id, prob);
    }

    // Phase 3: insert batch instances into their object's aggregated R-tree
    // and maintain the pruning set. Zero-probability instances are inserted
    // too: Theorem 3's discard argument assumes an asymmetric dominance
    // relation, which fails for instances with *equal* score vectors —
    // mutually dominating duplicates are all zero, yet their mass must stay
    // visible to later queries (see bnb_test.cc TieBatching tests).
    // Instances pruned by P never reach this point, which remains safe: any
    // later instance needing their mass is itself pruned by the same P
    // entry (transitivity through the full object's max corner).
    for (BatchItem& item : batch) {
      const int own_object = view.object_of(item.instance_id);
      const double own_prob = view.prob(item.instance_id);
      ObjectState& obj = objects[static_cast<size_t>(own_object)];
      if (obj.tree == nullptr) {
        obj.tree = std::make_unique<RTree>(mapped_dim, options.rtree_fanout);
        obj.max_corner = item.mapped;
      } else {
        for (int k = 0; k < mapped_dim; ++k) {
          if (item.mapped[k] > obj.max_corner[k]) {
            obj.max_corner[k] = item.mapped[k];
          }
        }
      }
      obj.tree->Insert(item.mapped, own_prob, item.instance_id);
      obj.cum_prob += own_prob;
      if (options.enable_pruning && !obj.in_pruning_set &&
          obj.cum_prob >= 1.0 - kProbabilityEps) {
        obj.in_pruning_set = true;
        pruning_set.Add(obj.max_corner);
      }
    }
  }
  if (arena.has_value()) {
    result.tasks_spawned = arena->tasks_spawned();
    result.tasks_stolen = arena->tasks_stolen();
    result.parallel_workers = arena->num_workers();
  }
  goal_pruner.Finish(&result);
  return result;
}

class BnbSolver : public ArspSolver {
 public:
  explicit BnbSolver(const BnbOptions& options = {}) : options_(options) {}

  const char* name() const override { return "bnb"; }
  const char* display_name() const override { return "B&B"; }
  const char* description() const override {
    return "best-first branch-and-bound over an R-tree (Algorithm 2); "
           "options pruning=bool, rtree_fanout=N";
  }
  uint32_t capabilities() const override {
    return kCapGoalPushdown | kCapIntraQueryParallel;
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(
        options.ExpectOnly({"pruning", "rtree_fanout", "parallelism"}));
    StatusOr<bool> pruning = options.BoolOr("pruning", options_.enable_pruning);
    if (!pruning.ok()) return pruning.status();
    StatusOr<int64_t> fanout =
        options.IntOr("rtree_fanout", options_.rtree_fanout);
    if (!fanout.ok()) return fanout.status();
    if (*fanout < 2) {
      return Status::InvalidArgument("bnb rtree_fanout must be >= 2, got " +
                                     std::to_string(*fanout));
    }
    StatusOr<int64_t> parallelism =
        options.IntOr("parallelism", options_.parallelism);
    if (!parallelism.ok()) return parallelism.status();
    if (*parallelism < 1) {
      return Status::InvalidArgument("bnb parallelism must be >= 1, got " +
                                     std::to_string(*parallelism));
    }
    options_.enable_pruning = *pruning;
    options_.rtree_fanout = static_cast<int>(*fanout);
    options_.parallelism = static_cast<int>(*parallelism);
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    return RunBnb(context, options_);
  }

 private:
  BnbOptions options_;
};

ARSP_REGISTER_SOLVER(bnb, "bnb",
                     [] { return std::make_unique<BnbSolver>(); });

}  // namespace

namespace internal {
void LinkBnbSolver() {}
}  // namespace internal

ArspResult ComputeArspBnb(const UncertainDataset& dataset,
                          const PreferenceRegion& region,
                          const BnbOptions& options) {
  ExecutionContext context(dataset, region);
  return BnbSolver(options).Solve(context).value();
}

}  // namespace arsp
