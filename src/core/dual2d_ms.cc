// Copyright 2026 The ARSP Authors.

#include "src/core/dual2d_ms.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/core/solver.h"

namespace arsp {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr double kThreeHalfPi = 4.712388980384689857693965074919;
constexpr double kAngleEps = 1e-12;

// Angle of s around t in [0, 2π); coincident points sit at 3π/2, which lies
// inside the dominator range of every ratio range (mutual F-dominance of
// duplicates).
double AngleAround(const double* t, const double* s) {
  const double dx = s[0] - t[0];
  const double dy = s[1] - t[1];
  if (dx == 0.0 && dy == 0.0) return kThreeHalfPi;
  double theta = std::atan2(dy, dx);
  if (theta < 0.0) theta += kTwoPi;
  return theta;
}

}  // namespace

size_t Dual2dMs::EstimateMemoryBytes(int num_instances) {
  // Per (t, s) pair: angle + prefix product (double each) + prefix zero
  // count (int). Prefix arrays have one extra slot per instance — ignored.
  return static_cast<size_t>(num_instances) *
         static_cast<size_t>(num_instances) * (8 + 8 + 4);
}

StatusOr<Dual2dMs> Dual2dMs::Build(const UncertainDataset& dataset,
                                   size_t max_memory_bytes) {
  return Build(DatasetView(dataset), max_memory_bytes);
}

StatusOr<Dual2dMs> Dual2dMs::Build(const DatasetView& view,
                                   size_t max_memory_bytes) {
  if (view.dim() != 2) {
    return Status::InvalidArgument("Dual2dMs requires a 2-dimensional dataset");
  }
  if (!view.single_instance_objects()) {
    return Status::Unimplemented(
        "Dual2dMs supports single-instance objects only (the paper's IIP "
        "setting); multi-instance objects break prefix-product composition");
  }
  if (EstimateMemoryBytes(view.num_instances()) > max_memory_bytes) {
    return Status::FailedPrecondition(
        "Dual2dMs quadratic index would exceed the memory budget; "
        "subsample the dataset (the paper hits the same wall, Fig. 7b)");
  }

  const int n = view.num_instances();
  std::vector<PerInstance> table(static_cast<size_t>(n));

  std::vector<std::pair<double, double>> angled;  // (angle, prob)
  for (int ti = 0; ti < n; ++ti) {
    const double* t_row = view.coords(ti);
    angled.clear();
    angled.reserve(static_cast<size_t>(n - 1));
    for (int si = 0; si < n; ++si) {
      if (si == ti) continue;  // single-instance objects: skip own object
      angled.emplace_back(AngleAround(t_row, view.coords(si)), view.prob(si));
    }
    std::sort(angled.begin(), angled.end());

    PerInstance& row = table[static_cast<size_t>(ti)];
    row.prob = view.prob(ti);
    row.angles.reserve(angled.size());
    row.prefix_logs.reserve(angled.size() + 1);
    row.prefix_zeros.reserve(angled.size() + 1);
    row.prefix_logs.push_back(0.0);
    row.prefix_zeros.push_back(0);
    for (const auto& [angle, prob] : angled) {
      row.angles.push_back(angle);
      const double factor = 1.0 - prob;
      if (factor <= kProbabilityEps) {
        row.prefix_logs.push_back(row.prefix_logs.back());
        row.prefix_zeros.push_back(row.prefix_zeros.back() + 1);
      } else {
        row.prefix_logs.push_back(row.prefix_logs.back() + std::log(factor));
        row.prefix_zeros.push_back(row.prefix_zeros.back());
      }
    }
  }
  return Dual2dMs(std::move(table));
}

ArspResult Dual2dMs::Query(double ratio_lo, double ratio_hi) const {
  ARSP_CHECK_MSG(ratio_lo > 0.0 && ratio_lo <= ratio_hi,
                 "ratio range must satisfy 0 < l <= h");
  const double theta_lo = M_PI - std::atan(ratio_lo) - kAngleEps;
  const double theta_hi = kTwoPi - std::atan(ratio_hi) + kAngleEps;

  ArspResult result;
  result.instance_probs.assign(table_.size(), 0.0);
  for (size_t ti = 0; ti < table_.size(); ++ti) {
    const PerInstance& row = table_[ti];
    const auto begin_it =
        std::lower_bound(row.angles.begin(), row.angles.end(), theta_lo);
    const auto end_it =
        std::upper_bound(row.angles.begin(), row.angles.end(), theta_hi);
    const size_t a = static_cast<size_t>(begin_it - row.angles.begin());
    const size_t b = static_cast<size_t>(end_it - row.angles.begin());
    if (row.prefix_zeros[b] - row.prefix_zeros[a] > 0) {
      result.instance_probs[ti] = 0.0;  // a certain dominator in range
    } else {
      result.instance_probs[ti] =
          row.prob * std::exp(row.prefix_logs[b] - row.prefix_logs[a]);
    }
  }
  return result;
}

size_t Dual2dMs::MemoryBytes() const {
  size_t total = 0;
  for (const PerInstance& row : table_) {
    total += row.angles.size() * sizeof(double) +
             row.prefix_logs.size() * sizeof(double) +
             row.prefix_zeros.size() * sizeof(int);
  }
  return total;
}

namespace {

// Registry façade: builds the angular index, then answers the single ratio
// range of the context's constraints. One-shot solves pay the quadratic
// preprocessing every time — the structure shines when one build serves
// many ratio ranges, which the Dual2dMs class exposes directly.
class Dual2dMsSolver : public ArspSolver {
 public:
  const char* name() const override { return "dual-2d-ms"; }
  const char* display_name() const override { return "DUAL-2D-MS"; }
  const char* description() const override {
    return "2-d angular-sweep index for weight ratio ranges (quadratic "
           "memory, log-time queries); option max_memory_bytes=N";
  }
  uint32_t capabilities() const override {
    return kCapRequiresWeightRatios | kCapRequires2d |
           kCapRequiresSingleInstanceObjects | kCapQuadraticTime;
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(options.ExpectOnly({"max_memory_bytes"}));
    StatusOr<int64_t> budget = options.IntOr(
        "max_memory_bytes", static_cast<int64_t>(max_memory_bytes_));
    if (!budget.ok()) return budget.status();
    if (*budget <= 0) {
      return Status::InvalidArgument(
          "dual-2d-ms max_memory_bytes must be positive");
    }
    max_memory_bytes_ = static_cast<size_t>(*budget);
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    StatusOr<Dual2dMs> index =
        Dual2dMs::Build(context.view(), max_memory_bytes_);
    if (!index.ok()) return index.status();
    const WeightRatioConstraints& wr = context.weight_ratios();
    return index->Query(wr.lo(0), wr.hi(0));
  }

 private:
  size_t max_memory_bytes_ = size_t{6} << 30;
};

ARSP_REGISTER_SOLVER(dual_2d_ms, "dual-2d-ms",
                     [] { return std::make_unique<Dual2dMsSolver>(); });

}  // namespace

namespace internal {
void LinkDual2dMsSolver() {}
}  // namespace internal

}  // namespace arsp
