// Copyright 2026 The ARSP Authors.

#include "src/core/solver.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/lru.h"
#include "src/common/mem.h"
#include "src/common/stopwatch.h"
#include "src/simd/kernels.h"

namespace arsp {

namespace internal {
// Link anchors defined in the built-in solver translation units. Referencing
// them here forces the archive linker to pull those object files into every
// binary that uses the registry, which in turn runs their self-registration
// statics. A binary that never touches the registry links none of this.
void LinkEnumSolver();
void LinkLoopSolver();
void LinkKdttSolver();
void LinkQdttSolver();
void LinkMwttSolver();
void LinkBnbSolver();
void LinkDualSolver();
void LinkDual2dMsSolver();
void LinkAutoSolver();
}  // namespace internal

namespace {

void EnsureBuiltinsLinked() {
  internal::LinkEnumSolver();
  internal::LinkLoopSolver();
  internal::LinkKdttSolver();
  internal::LinkQdttSolver();
  internal::LinkMwttSolver();
  internal::LinkBnbSolver();
  internal::LinkDualSolver();
  internal::LinkDual2dMsSolver();
  internal::LinkAutoSolver();
}

std::map<std::string, SolverRegistry::Factory>& RegistryMap() {
  static auto* map = new std::map<std::string, SolverRegistry::Factory>();
  return *map;
}

const char* TypeName(const SolverOptions::Value& v) {
  switch (v.index()) {
    case 0:
      return "bool";
    case 1:
      return "int";
    case 2:
      return "double";
    default:
      return "string";
  }
}

}  // namespace

// ---------------------------------------------------------------- stats

std::string SolverStats::ToString() const {
  std::ostringstream os;
  os << "solver=" << solver << " setup_ms=" << setup_millis
     << " solve_ms=" << solve_millis << " dominance_tests=" << dominance_tests
     << " nodes_visited=" << nodes_visited << " nodes_pruned=" << nodes_pruned
     << " index_probes=" << index_probes
     << " objects_pruned=" << objects_pruned
     << " bound_refinements=" << bound_refinements
     << " early_exit=" << early_exit_depth
     << " index_resident_bytes=" << index_bytes_resident
     << " index_mapped_bytes=" << index_bytes_mapped
     << " peak_rss_bytes=" << peak_rss_bytes
     << " tasks_spawned=" << tasks_spawned
     << " tasks_stolen=" << tasks_stolen
     << " parallel_workers=" << parallel_workers;
  return os.str();
}

void SolverStats::AnnotateSpan(obs::ScopedSpan* span) const {
  if (span == nullptr || !span->enabled()) return;
  span->Annotate("solver", solver);
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", setup_millis);
  span->Annotate("setup_ms", std::string(ms));
  span->Annotate("dominance_tests", dominance_tests);
  span->Annotate("nodes_visited", nodes_visited);
  span->Annotate("nodes_pruned", nodes_pruned);
  span->Annotate("index_probes", index_probes);
  if (objects_pruned != 0) span->Annotate("objects_pruned", objects_pruned);
  if (bound_refinements != 0) {
    span->Annotate("bound_refinements", bound_refinements);
  }
  if (early_exit_depth != 0) {
    span->Annotate("early_exit_depth", early_exit_depth);
  }
  if (index_bytes_mapped != 0) {
    span->Annotate("index_bytes_mapped", index_bytes_mapped);
  }
  if (tasks_spawned != 0) {
    span->Annotate("tasks_spawned", tasks_spawned);
    span->Annotate("tasks_stolen", tasks_stolen);
    span->Annotate("parallel_workers", parallel_workers);
  }
}

// -------------------------------------------------------------- options

SolverOptions& SolverOptions::SetBool(const std::string& key, bool v) {
  values_[key] = Value(v);
  return *this;
}

SolverOptions& SolverOptions::SetInt(const std::string& key, int64_t v) {
  values_[key] = Value(v);
  return *this;
}

SolverOptions& SolverOptions::SetDouble(const std::string& key, double v) {
  values_[key] = Value(v);
  return *this;
}

SolverOptions& SolverOptions::SetString(const std::string& key,
                                        std::string v) {
  values_[key] = Value(std::move(v));
  return *this;
}

bool SolverOptions::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::vector<std::string> SolverOptions::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

StatusOr<bool> SolverOptions::BoolOr(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (const bool* v = std::get_if<bool>(&it->second)) return *v;
  return Status::InvalidArgument("option '" + key + "' must be a bool, got " +
                                 TypeName(it->second));
}

StatusOr<int64_t> SolverOptions::IntOr(const std::string& key,
                                       int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (const int64_t* v = std::get_if<int64_t>(&it->second)) return *v;
  return Status::InvalidArgument("option '" + key + "' must be an int, got " +
                                 TypeName(it->second));
}

StatusOr<double> SolverOptions::DoubleOr(const std::string& key,
                                         double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (const double* v = std::get_if<double>(&it->second)) return *v;
  if (const int64_t* v = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*v);
  }
  return Status::InvalidArgument("option '" + key +
                                 "' must be a number, got " +
                                 TypeName(it->second));
}

StatusOr<std::string> SolverOptions::StringOr(const std::string& key,
                                              std::string def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (const std::string* v = std::get_if<std::string>(&it->second)) return *v;
  return Status::InvalidArgument("option '" + key +
                                 "' must be a string, got " +
                                 TypeName(it->second));
}

Status SolverOptions::ExpectOnly(
    std::initializer_list<const char*> known) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string msg = "unknown option '" + key + "'";
      if (known.size() > 0) {
        msg += "; supported:";
        for (const char* k : known) msg += std::string(" ") + k;
      }
      return Status::InvalidArgument(std::move(msg));
    }
  }
  return Status::OK();
}

Status SolverOptions::ParseKeyValue(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("option spec '" + spec +
                                   "' is not key=value");
  }
  const std::string key = spec.substr(0, eq);
  const std::string value = spec.substr(eq + 1);
  if (value == "true" || value == "false") {
    SetBool(key, value == "true");
    return Status::OK();
  }
  char* end = nullptr;
  errno = 0;
  const long long as_int = std::strtoll(value.c_str(), &end, 10);
  if (end != value.c_str() && *end == '\0') {
    if (errno == ERANGE) {
      return Status::InvalidArgument("option '" + key + "' value '" + value +
                                     "' overflows int64");
    }
    SetInt(key, as_int);
    return Status::OK();
  }
  errno = 0;
  const double as_double = std::strtod(value.c_str(), &end);
  if (end != value.c_str() && *end == '\0') {
    if (errno == ERANGE) {
      return Status::InvalidArgument("option '" + key + "' value '" + value +
                                     "' is out of double range");
    }
    SetDouble(key, as_double);
    return Status::OK();
  }
  SetString(key, value);
  return Status::OK();
}

std::string SolverOptions::CacheKey() const {
  std::ostringstream os;
  os.precision(17);
  // Keys and string values are length-prefixed so delimiter characters in
  // them cannot make two distinct bags render identically.
  for (const auto& [key, value] : values_) {
    os << key.size() << ':' << key << '=' << TypeName(value) << ':';
    switch (value.index()) {
      case 0:
        os << (std::get<bool>(value) ? "true" : "false");
        break;
      case 1:
        os << std::get<int64_t>(value);
        break;
      case 2:
        os << std::get<double>(value);
        break;
      default: {
        const std::string& s = std::get<std::string>(value);
        os << s.size() << ':' << s;
        break;
      }
    }
    os << ';';
  }
  return os.str();
}

// -------------------------------------------------------------- context

// Lazy accessors nest (scores() -> mapper() -> region()); only the
// outermost timer records, so a shared wall-clock span is counted once.
// Instances only live inside accessor bodies that hold mu_, which makes the
// depth counter and the accumulated total safe under concurrency.
class ExecutionContext::SetupTimer {
 public:
  explicit SetupTimer(const ExecutionContext* context)
      : context_(context), outermost_(context->setup_depth_ == 0) {
    ++context_->setup_depth_;
  }
  ~SetupTimer() {
    --context_->setup_depth_;
    if (outermost_) context_->total_setup_millis_ += sw_.ElapsedMillis();
  }

 private:
  const ExecutionContext* context_;
  const bool outermost_;
  Stopwatch sw_;
};

ExecutionContext::ExecutionContext(const UncertainDataset& dataset,
                                   PreferenceRegion region, QueryGoal goal)
    : ExecutionContext(DatasetView(dataset), std::move(region), goal) {}

ExecutionContext::ExecutionContext(DatasetView view, PreferenceRegion region,
                                   QueryGoal goal)
    : view_(std::move(view)), goal_(goal), region_(std::move(region)) {
  ARSP_CHECK_MSG(view_.valid(), "ExecutionContext over an invalid view");
}

ExecutionContext::ExecutionContext(const UncertainDataset& dataset,
                                   WeightRatioConstraints wr, QueryGoal goal)
    : ExecutionContext(DatasetView(dataset), std::move(wr), goal) {}

ExecutionContext::ExecutionContext(DatasetView view, WeightRatioConstraints wr,
                                   QueryGoal goal)
    : view_(std::move(view)), goal_(goal), wr_(std::move(wr)) {
  ARSP_CHECK_MSG(view_.valid(), "ExecutionContext over an invalid view");
  ARSP_CHECK_MSG(view_.num_instances() == 0 || view_.dim() == wr_->dim(),
                 "weight ratio constraints are for dimension %d but the "
                 "dataset has dimension %d",
                 wr_->dim(), view_.dim());
}

ExecutionContext::ExecutionContext(
    std::shared_ptr<const ExecutionContext> parent, DatasetView view,
    QueryGoal goal)
    : view_(std::move(view)),
      goal_(goal),
      wr_(parent->wr_),
      parent_(std::move(parent)) {}

std::shared_ptr<ExecutionContext> ExecutionContext::Derive(
    std::shared_ptr<const ExecutionContext> parent, DatasetView view) {
  ARSP_CHECK_MSG(parent != nullptr, "Derive: null parent context");
  const QueryGoal goal = parent->goal_;  // inherit
  return Derive(std::move(parent), std::move(view), goal);
}

std::shared_ptr<ExecutionContext> ExecutionContext::Derive(
    std::shared_ptr<const ExecutionContext> parent, DatasetView view,
    QueryGoal goal) {
  ARSP_CHECK_MSG(parent != nullptr, "Derive: null parent context");
  ARSP_CHECK_MSG(view.valid(), "Derive: invalid view");
  const DatasetView& parent_view = parent->view();
  ARSP_CHECK_MSG(&view.base() == &parent_view.base(),
                 "Derive: view windows a different base dataset than the "
                 "parent context");
  // Containment: every child instance must be visible through the parent
  // (O(1) for the identical-window goal children and the prefix ⊆ prefix
  // case that dominate in practice).
  if (!parent_view.is_full() && !view.SameRepAs(parent_view)) {
    if (view.is_prefix() && parent_view.is_prefix()) {
      ARSP_CHECK_MSG(view.num_instances() <= parent_view.num_instances(),
                     "Derive: prefix view extends past the parent's prefix");
    } else {
      for (int i = 0; i < view.num_instances(); ++i) {
        ARSP_CHECK_MSG(
            parent_view.LocalInstanceOf(view.base_instance_id(i)) >= 0,
            "Derive: view instance %d is outside the parent's view", i);
      }
    }
  }
  return std::shared_ptr<ExecutionContext>(
      new ExecutionContext(std::move(parent), std::move(view), goal));
}

const WeightRatioConstraints& ExecutionContext::weight_ratios() const {
  ARSP_CHECK_MSG(wr_.has_value(),
                 "context was not built from weight ratio constraints");
  return *wr_;
}

const PreferenceRegion& ExecutionContext::region() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (region_ptr_ == nullptr) {
    if (region_.has_value()) {
      region_ptr_ = &*region_;
    } else if (parent_ != nullptr) {
      SetupTimer timer(this);  // charges parent work this call triggers
      region_ptr_ = &parent_->region();
    } else {
      SetupTimer timer(this);
      region_ = PreferenceRegion::FromWeightRatios(weight_ratios());
      region_ptr_ = &*region_;
    }
  }
  return *region_ptr_;
}

const ScoreMapper& ExecutionContext::mapper() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (mapper_ptr_ == nullptr) {
    if (parent_ != nullptr) {
      SetupTimer timer(this);
      mapper_ptr_ = &parent_->mapper();
    } else {
      SetupTimer timer(this);
      mapper_.emplace(region());
      mapper_ptr_ = &*mapper_;
    }
  }
  return *mapper_ptr_;
}

ScoreSpan ExecutionContext::scores() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (span_ready_) return span_;
  SetupTimer timer(this);
  if (parent_ != nullptr && view_.SameRepAs(parent_->view())) {
    // Identical window (a goal-scoped child): the parent's span IS ours.
    span_ = parent_->scores();
    ++index_stats_.score_reuses;
  } else if (parent_ != nullptr && view_.is_prefix() &&
             parent_->view().is_prefix()) {
    // Prefix-of-prefix: local ids agree, so the parent's buffer truncated
    // to this view's instance count IS this view's buffer. Zero copies.
    span_ = parent_->scores().Prefix(view_.num_instances());
    ++index_stats_.score_reuses;
  } else {
    if (parent_ != nullptr) {
      // Subset: gather the parent's already-mapped rows (memcpy per row
      // beats redoing d'·d multiplications); the parent span itself may be
      // zero-copy storage higher up the derivation chain.
      scores_ = parent_->scores().Gather(parent_->view(), view_);
      ++index_stats_.score_reuses;
      span_ = ScoreSpan::Of(*scores_);
      span_ready_ = true;
      return span_;
    }
    const auto& attached = view_.base().attached_scores();
    if (view_.is_full() && attached != nullptr &&
        attached->vertex_hash == mapper().VertexHash()) {
      // Snapshot-attached pre-mapped scores for this exact vertex matrix
      // (the hash covers dimensions and every matrix byte, so the section
      // is bit-identical to what MapView would produce). Full views only:
      // row index must equal local instance id.
      span_ = ScoreSpan{attached->coords.data(), attached->probs.data(),
                        attached->objects.data(), view_.num_instances(),
                        attached->mapped_dim};
      ++index_stats_.snapshot_hits;
      span_ready_ = true;
      return span_;
    }
    scores_ = mapper().MapView(view_);
    ++index_stats_.score_maps;
    span_ = ScoreSpan::Of(*scores_);
  }
  span_ready_ = true;
  return span_;
}

const KdTree& ExecutionContext::instance_kdtree() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (kdtree_ptr_ == nullptr) {
    SetupTimer timer(this);
    if (parent_ != nullptr) {
      kdtree_ptr_ = &parent_->instance_kdtree();
      ++index_stats_.parent_index_hits;
    } else if (view_.is_full() &&
               view_.base().attached_kdtree() != nullptr) {
      // Snapshot-attached prebuilt tree. Only the full view may adopt it:
      // the attached arenas were built over the whole dataset, and a root
      // context over a narrower view must build its own tree so probe
      // results (and their floating-point accumulation orders) match an
      // in-memory build of that view exactly. The dataset outlives the
      // context by contract, which pins the shared arenas.
      kdtree_ptr_ = view_.base().attached_kdtree().get();
      ++index_stats_.snapshot_hits;
    } else {
      kdtree_.emplace(KdTree::FromView(view_));
      kdtree_ptr_ = &*kdtree_;
      ++index_stats_.kdtree_builds;
    }
  }
  return *kdtree_ptr_;
}

std::shared_ptr<const RTree> ExecutionContext::instance_rtree(
    int fanout) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (parent_ != nullptr) {
    SetupTimer timer(this);
    ++index_stats_.parent_index_hits;
    return parent_->instance_rtree(fanout);
  }
  const auto it = rtrees_.find(fanout);
  if (it != rtrees_.end()) {
    it->second.last_used = ++rtree_tick_;
    return it->second.tree;
  }
  SetupTimer timer(this);
  if (view_.is_full() && view_.base().attached_rtree() != nullptr &&
      view_.base().attached_rtree_fanout() == fanout) {
    // Snapshot-attached prebuilt tree (full views only; see
    // instance_kdtree). Cached like a built tree so repeat requests skip
    // the attachment checks.
    auto attached = view_.base().attached_rtree();
    ++index_stats_.snapshot_hits;
    if (rtrees_.size() >= kMaxCachedRtrees) EvictLeastRecentlyUsed(rtrees_);
    rtrees_.emplace(fanout, CachedRtree{attached, ++rtree_tick_});
    return attached;
  }
  auto tree = std::make_shared<const RTree>(
      RTree::BulkLoadFromView(view_, fanout));
  ++index_stats_.rtree_builds;
  // Bound the cache: drop the least-recently-used fan-out first (in-flight
  // users of an evicted tree keep it alive through their shared_ptr).
  if (rtrees_.size() >= kMaxCachedRtrees) EvictLeastRecentlyUsed(rtrees_);
  rtrees_.emplace(fanout, CachedRtree{tree, ++rtree_tick_});
  return tree;
}

bool ExecutionContext::single_instance_objects() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!single_instance_.has_value()) {
    single_instance_ = view_.single_instance_objects();
  }
  return *single_instance_;
}

ExecutionContext::IndexBuildStats ExecutionContext::index_build_stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return index_stats_;
}

ColumnBytes ExecutionContext::IndexMemoryFootprint() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ColumnBytes bytes;
  if (kdtree_ptr_ != nullptr && parent_ == nullptr) {
    bytes += kdtree_ptr_->memory_bytes();
  }
  for (const auto& [fanout, cached] : rtrees_) {
    bytes += cached.tree->memory_bytes();
  }
  if (scores_.has_value()) {
    bytes.Add(scores_->coords);
    bytes.Add(scores_->probs);
    bytes.Add(scores_->objects);
  } else if (span_ready_ && parent_ == nullptr) {
    // Span without owned storage on a root context: snapshot-attached
    // scores.
    const auto& attached = view_.base().attached_scores();
    if (attached != nullptr && span_.coords == attached->coords.data()) {
      bytes.Add(attached->coords);
      bytes.Add(attached->probs);
      bytes.Add(attached->objects);
    }
  }
  return bytes;
}

double ExecutionContext::total_setup_millis() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return total_setup_millis_;
}

SolverStats ExecutionContext::last_stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return stats_;
}

void ExecutionContext::set_last_stats(const SolverStats& stats) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  stats_ = stats;
}

// ---------------------------------------------------------- goal pruner

GoalPruner::GoalPruner(const QueryGoal& goal, const DatasetView& view,
                       const ScoreSpan* scores)
    : goal_(goal), view_(view) {
  const int m = view_.valid() ? view_.num_objects() : 0;
  // Normalize the evaluation scope to [0, m]. A scope that excludes at
  // least one object is "restricting" and forces the pruner active
  // regardless of kind: the scoped answer never concerns out-of-scope
  // objects, so their subtrees are skippable even when the kind itself
  // cannot decide anything by bounds.
  scope_begin_ = 0;
  scope_end_ = m;
  if (goal_.has_scope()) {
    scope_begin_ = std::min(std::max(goal_.scope_begin, 0), m);
    scope_end_ = std::min(std::max(goal_.scope_end, scope_begin_), m);
  }
  const bool restricting = scope_begin_ > 0 || scope_end_ < m;
  const int scope_size = scope_end_ - scope_begin_;
  switch (goal_.kind) {
    case GoalKind::kFull:
      if (!restricting) return;  // inactive
      break;
    case GoalKind::kTopK:
      // k < 0 ("all") and k >= |scope| need every in-scope object exact,
      // and k == 0 has an empty answer — in all three nothing is decidable
      // by bounds (and τ, the k-th largest lower bound, would be
      // ill-defined for k == 0), so bound pruning is off; only a
      // restricting scope keeps the pruner worthwhile.
      topk_prunable_ = goal_.k > 0 && goal_.k < scope_size;
      if (!topk_prunable_ && !restricting) return;
      break;
    case GoalKind::kThreshold:
      // Every object has Pr_rsky >= 0 >= p: nothing is excludable.
      if (goal_.p <= 0.0 && !restricting) return;
      break;
  }
  active_ = true;
  num_instances_ = view_.num_instances();
  num_objects_ = m;
  if (scores != nullptr) {
    ARSP_DCHECK(scores->n == num_instances_);
    probs_ = scores->probs;
    objects_ptr_ = scores->objects;
  }
  lower_.assign(static_cast<size_t>(m), 0.0);
  pending_.assign(static_cast<size_t>(m), 0.0);
  unresolved_.assign(static_cast<size_t>(m), 0);
  decided_.assign(static_cast<size_t>(m), 0);
  excluded_.assign(static_cast<size_t>(m), 0);
  if (probs_ != nullptr) {
    // Dense SoA probabilities and instances grouped by object: accumulate
    // each object's existence mass with one SumProbs kernel call over its
    // contiguous slice.
    for (int j = 0; j < m; ++j) {
      const auto [begin, end] = view_.object_range(j);
      pending_[static_cast<size_t>(j)] =
          simd::Ops().SumProbs(probs_ + begin, end - begin);
      unresolved_[static_cast<size_t>(j)] = end - begin;
    }
  } else {
    for (int i = 0; i < num_instances_; ++i) {
      const size_t j = static_cast<size_t>(view_.object_of(i));
      pending_[j] += view_.prob(i);
      ++unresolved_[j];
    }
  }
  undecided_ = m;
  // Out-of-scope objects are decided (excluded) before the traversal
  // starts: the scoped answer does not concern them, so subtrees holding
  // only their instances are skippable. Wherever a subtree *is* visited,
  // their instances still contribute dominating mass against in-scope
  // objects — dominance is global, which is why scoped answers are exact.
  for (int j = 0; j < scope_begin_; ++j) Decide(j, true);
  for (int j = scope_end_; j < m; ++j) Decide(j, true);
  objects_pruned_ = 0;  // scope pre-decides are placement, not pruning wins
  for (int j = scope_begin_; j < scope_end_; ++j) {
    if (unresolved_[static_cast<size_t>(j)] == 0) {
      // No instances in the view: vacuously exact (Pr = 0).
      Decide(j, false);
    }
  }
  if (goal_.kind == GoalKind::kThreshold && goal_.p > 0.0) {
    // Objects whose total existence mass is already below the threshold are
    // excluded before the traversal touches a single instance. (Top-k
    // starts with τ = 0, so it has no pre-traversal exclusions.)
    SweepExclusions(goal_.p);
  }
  // τ sweeps are O(m); amortize one over a batch of resolutions.
  refresh_interval_ = std::max<int64_t>(16, m / 8);
}

bool GoalPruner::ExcludedNow(int j) const {
  // Strictly conservative cut: kProbabilityEps absorbs summation rounding
  // in the bounds, so an object whose true probability ties the cut value
  // is never excluded — it is refined to exactness and the boundary tie is
  // settled on exact values, identically to post-hoc slicing.
  const double cut = goal_.kind == GoalKind::kThreshold ? goal_.p : tau_;
  return lower_[static_cast<size_t>(j)] + pending_[static_cast<size_t>(j)] <
         cut - kProbabilityEps;
}

void GoalPruner::SweepExclusions(double cut) {
  // One kernel pass computes the exclusion mask for every undecided object;
  // the Decide loop then applies it (bookkeeping stays scalar). The kernel
  // evaluates lower + pending < threshold with the same association as
  // ExcludedNow, so the sweep and the per-resolution test always agree.
  sweep_scratch_.resize(static_cast<size_t>(num_objects_));
  simd::Ops().BoundSweepMask(lower_.data(), pending_.data(), decided_.data(),
                             num_objects_, cut - kProbabilityEps,
                             sweep_scratch_.data());
  for (int j = 0; j < num_objects_; ++j) {
    if (sweep_scratch_[static_cast<size_t>(j)] != 0) {
      Decide(j, true);
    }
  }
}

void GoalPruner::Decide(int j, bool excluded) {
  ARSP_DCHECK(decided_[static_cast<size_t>(j)] == 0);
  decided_[static_cast<size_t>(j)] = 1;
  excluded_[static_cast<size_t>(j)] = excluded ? 1 : 0;
  --undecided_;
  ++decided_count_;
  if (excluded) {
    ++objects_pruned_;
  } else {
    ++exact_since_refresh_;
  }
}

void GoalPruner::Resolve(int i, double prob) {
  if (!active_) return;
  ++bound_refinements_;
  ++resolved_;
  const size_t j = static_cast<size_t>(ObjectOf(i));
  ARSP_DCHECK(unresolved_[j] > 0);
  lower_[j] += prob;
  pending_[j] -= InstanceProb(i);
  if (pending_[j] < 0.0) pending_[j] = 0.0;  // clamp summation rounding
  --unresolved_[j];
  ++since_refresh_;
  if (decided_[j] != 0) return;
  if (unresolved_[j] == 0) {
    Decide(static_cast<int>(j), false);  // exact
  } else if (ExcludedNow(static_cast<int>(j))) {
    // For top-k goals this tests against the last swept τ — stale but
    // sound, since τ only grows.
    Decide(static_cast<int>(j), true);
  }
}

bool GoalPruner::AllDecided(const int* ids, int count) const {
  if (!active_ || decided_count_ == 0) return false;
  for (int i = 0; i < count; ++i) {
    if (decided_[static_cast<size_t>(ObjectOf(ids[i]))] == 0) {
      return false;
    }
  }
  return true;
}

void GoalPruner::RefreshTau() {
  // τ = k-th largest lower bound over the *in-scope* objects; monotone in
  // the resolutions, so recomputing can only raise it. Out-of-scope
  // objects are not answer candidates: their (incidental, partial) lower
  // bounds must neither raise nor dilute the cut.
  tau_scratch_.assign(lower_.begin() + scope_begin_,
                      lower_.begin() + scope_end_);
  const size_t kth = static_cast<size_t>(goal_.k - 1);
  std::nth_element(tau_scratch_.begin(), tau_scratch_.begin() + kth,
                   tau_scratch_.end(), std::greater<double>());
  tau_ = std::max(tau_, tau_scratch_[kth]);
  SweepExclusions(tau_);
}

bool GoalPruner::GoalMet() {
  if (!active_) return false;
  if (undecided_ == 0) return true;
  // τ sweeps are O(m), so they are rationed: one per refresh_interval_
  // resolutions (amortized O(1) per instance), plus one whenever an object
  // turned exact since the last sweep — exact winners are what raise τ, and
  // at most m such sweeps can ever happen.
  if (topk_prunable_ &&
      (since_refresh_ >= refresh_interval_ || exact_since_refresh_ > 0)) {
    since_refresh_ = 0;
    exact_since_refresh_ = 0;
    RefreshTau();
  }
  return undecided_ == 0;
}

void GoalPruner::Finish(ArspResult* result) const {
  if (!active_) return;
  result->goal = goal_;
  result->complete = all_resolved();
  result->objects_pruned = objects_pruned_;
  result->bound_refinements = bound_refinements_;
  const int m = num_objects_;
  result->object_bounds.assign(static_cast<size_t>(m), ProbabilityBounds{});
  result->object_decisions.assign(static_cast<size_t>(m),
                                  ObjectDecision::kUndecided);
  for (int j = 0; j < m; ++j) {
    const size_t sj = static_cast<size_t>(j);
    ProbabilityBounds& b = result->object_bounds[sj];
    const bool in_scope = j >= scope_begin_ && j < scope_end_;
    if (!in_scope) {
      // Out-of-scope objects are never answer candidates; export them as
      // excluded. Their bounds are not meaningful (solvers may have
      // short-circuited their instances with placeholder resolutions) and
      // scoped consumers must ignore them.
      b.lower = lower_[sj];
      b.upper = lower_[sj] + pending_[sj];
      result->object_decisions[sj] = ObjectDecision::kExcluded;
      continue;
    }
    if (unresolved_[sj] == 0) {
      // Exact: re-sum in ascending instance order — the accumulation order
      // of ObjectProbabilities — so slicing this run's instance vector
      // post hoc would give exactly this value. (Deliberately a sequential
      // scalar sum, NOT the SumProbs kernel: the kernel's fixed 4-lane
      // association differs from ObjectProbabilities' accumulation order
      // and would break that equivalence.)
      const auto [begin, end] = view_.object_range(j);
      double sum = 0.0;
      for (int i = begin; i < end; ++i) {
        sum += result->instance_probs[static_cast<size_t>(i)];
      }
      b.lower = sum;
      b.upper = sum;
      result->object_decisions[sj] = ObjectDecision::kExact;
    } else {
      b.lower = lower_[sj];
      b.upper = lower_[sj] + pending_[sj];
      if (decided_[sj] != 0) {
        ARSP_DCHECK(excluded_[sj] != 0);
        result->object_decisions[sj] = ObjectDecision::kExcluded;
      }
    }
  }
}

// --------------------------------------------------------------- solver

Status ArspSolver::ValidateContext(const ExecutionContext& context) const {
  const uint32_t caps = capabilities();
  if ((caps & kCapRequiresWeightRatios) && !context.has_weight_ratios()) {
    return Status::FailedPrecondition(
        std::string(display_name()) +
        " requires weight-ratio constraints (wr:...), not a general "
        "preference region");
  }
  if ((caps & kCapRequires2d) && context.dataset().dim() != 2) {
    return Status::FailedPrecondition(
        std::string(display_name()) + " requires 2-dimensional data (got d=" +
        std::to_string(context.dataset().dim()) + ")");
  }
  if ((caps & kCapRequiresSingleInstanceObjects) &&
      !context.single_instance_objects()) {
    return Status::FailedPrecondition(
        std::string(display_name()) +
        " requires single-instance objects (the IIP regime)");
  }
  return Status::OK();
}

StatusOr<ArspResult> ArspSolver::Solve(ExecutionContext& context,
                                       SolverStats* stats_out) {
  ARSP_RETURN_IF_ERROR(ValidateContext(context));
  // Per-run stats start from zero: a pooled context reused across queries
  // must never report cumulative counters. setup_millis is what this run
  // paid, measured as the growth of the context's monotonic setup total.
  SolverStats stats;
  stats.solver = name();
  const double setup_before = context.total_setup_millis();
  Stopwatch sw;
  StatusOr<ArspResult> result = SolveImpl(context);
  if (!result.ok()) return result;
  stats.solve_millis = sw.ElapsedMillis();
  stats.setup_millis = context.total_setup_millis() - setup_before;
  stats.dominance_tests = result->dominance_tests;
  stats.nodes_visited = result->nodes_visited;
  stats.nodes_pruned = result->nodes_pruned;
  stats.index_probes = result->index_probes;
  stats.objects_pruned = result->objects_pruned;
  stats.bound_refinements = result->bound_refinements;
  stats.early_exit_depth = result->early_exit_depth;
  stats.tasks_spawned = result->tasks_spawned;
  stats.tasks_stolen = result->tasks_stolen;
  stats.parallel_workers = result->parallel_workers;
  // Index artifacts live on the root ancestor (children delegate R-trees,
  // alias the kd-tree, and share the score span), and IndexMemoryFootprint
  // charges each artifact to its owning context so engine-wide sums don't
  // double count. Per-query stats therefore read the root's footprint —
  // that is what backed this solve.
  const ExecutionContext* footprint_context = &context;
  while (footprint_context->parent() != nullptr) {
    footprint_context = footprint_context->parent();
  }
  const ColumnBytes footprint = footprint_context->IndexMemoryFootprint();
  stats.index_bytes_resident = static_cast<int64_t>(footprint.resident);
  stats.index_bytes_mapped = static_cast<int64_t>(footprint.mapped);
  stats.peak_rss_bytes = PeakRssBytes();
  context.set_last_stats(stats);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

// ------------------------------------------------------------- registry

std::string SolverRegistry::Normalize(const std::string& name) {
  std::string out = name;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool SolverRegistry::Register(const std::string& name, Factory factory) {
  ARSP_CHECK_MSG(static_cast<bool>(factory), "null solver factory for '%s'",
                 name.c_str());
  RegistryMap()[Normalize(name)] = std::move(factory);
  return true;
}

StatusOr<std::unique_ptr<ArspSolver>> SolverRegistry::Create(
    const std::string& name) {
  EnsureBuiltinsLinked();
  const auto& map = RegistryMap();
  const auto it = map.find(Normalize(name));
  if (it == map.end()) {
    std::string msg = "unknown solver '" + name + "'; registered:";
    for (const auto& [registered, factory] : map) msg += " " + registered;
    return Status::NotFound(std::move(msg));
  }
  std::unique_ptr<ArspSolver> solver = it->second();
  ARSP_CHECK_MSG(solver != nullptr, "factory for '%s' returned null",
                 name.c_str());
  return solver;
}

StatusOr<std::unique_ptr<ArspSolver>> SolverRegistry::Create(
    const std::string& name, const SolverOptions& options) {
  StatusOr<std::unique_ptr<ArspSolver>> solver = Create(name);
  if (!solver.ok()) return solver;
  ARSP_RETURN_IF_ERROR((*solver)->Configure(options));
  return solver;
}

std::vector<std::string> SolverRegistry::Names() {
  EnsureBuiltinsLinked();
  std::vector<std::string> names;
  names.reserve(RegistryMap().size());
  for (const auto& [name, factory] : RegistryMap()) names.push_back(name);
  return names;
}

}  // namespace arsp
