// Copyright 2026 The ARSP Authors.
//
// B&B (§III-C, Algorithm 2): best-first traversal of an R-tree over the
// original instances, mapping SV(·) on the fly so that pruned instances are
// never mapped. A pruning set P of per-object maximum score corners
// (Theorems 3 and 4, |P| ≤ m) discards subtrees whose instances all have
// zero rskyline probability; per-object aggregated R-trees in score space
// answer the window queries Σ_{s ∈ Tj, s ≺F t} p(s). Expected O(m n log n).

#ifndef ARSP_CORE_BNB_ALGORITHM_H_
#define ARSP_CORE_BNB_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Options for the branch-and-bound algorithm.
struct BnbOptions {
  /// Disables the Theorem-3/4 pruning set (ablation benchmarks only).
  bool enable_pruning = true;
  /// R-tree fan-out for both the data tree and the aggregated trees.
  int rtree_fanout = 16;
  /// Worker budget for the per-batch window-query phase (1 = serial). The
  /// aggregated trees are read-only during that phase and each batch item's
  /// σ vector is private, so the parallel rounds are bit-identical to
  /// serial; the heap expansion, tie counting and inserts stay serial.
  int parallelism = 1;
};

/// Computes ARSP with the branch-and-bound algorithm.
ArspResult ComputeArspBnb(const UncertainDataset& dataset,
                          const PreferenceRegion& region,
                          const BnbOptions& options = {});

}  // namespace arsp

#endif  // ARSP_CORE_BNB_ALGORITHM_H_
