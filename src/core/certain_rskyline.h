// Copyright 2026 The ARSP Authors.
//
// Skyline and restricted skyline on *certain* datasets (§II-A). Used for
// the paper's "aggregated rskyline" comparison baseline (Table I) and as
// the first stage of the eclipse algorithms.

#ifndef ARSP_CORE_CERTAIN_RSKYLINE_H_
#define ARSP_CORE_CERTAIN_RSKYLINE_H_

#include <vector>

#include "src/geometry/point.h"
#include "src/prefs/preference_region.h"

namespace arsp {

/// Indices of points not strictly coordinate-dominated by any other point
/// (classic skyline; duplicates are kept since neither strictly dominates).
std::vector<int> ComputeSkyline(const std::vector<Point>& points);

/// Indices of points not F-dominated by any other point: RSKY(D, F) for
/// the vertex-described preference region. Distinct points with identical
/// score vectors F-dominate each other and are both excluded, matching the
/// paper's definition.
std::vector<int> ComputeRskyline(const std::vector<Point>& points,
                                 const PreferenceRegion& region);

}  // namespace arsp

#endif  // ARSP_CORE_CERTAIN_RSKYLINE_H_
