// Copyright 2026 The ARSP Authors.

#include "src/core/engine.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <latch>
#include <sstream>
#include <thread>

#include "src/common/lru.h"
#include "src/core/queries.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {

namespace {

// --------------------------------------------------------------- "auto"

/// Meta-solver registered as "auto": resolves a concrete solver through
/// AutoSelectSolverName and delegates. ArspEngine resolves "auto" itself
/// (so cache keys and responses carry the concrete name); this entry gives
/// raw SolverRegistry users the identical policy, including options — the
/// bag is held here and validated against the resolved solver at Solve
/// time, exactly like the engine path.
class AutoSolver : public ArspSolver {
 public:
  const char* name() const override { return "auto"; }
  const char* display_name() const override { return "AUTO"; }
  const char* description() const override {
    return "picks a concrete solver from capability flags and data shape "
           "(KDTT+ default, DUAL for weight ratios; paper §V)";
  }

  Status Configure(const SolverOptions& options) override {
    options_ = options;
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    auto solver =
        SolverRegistry::Create(AutoSelectSolverName(context), options_);
    if (!solver.ok()) return solver.status();
    return (*solver)->Solve(context);
  }

 private:
  SolverOptions options_;
};

ARSP_REGISTER_SOLVER(auto_select, "auto",
                     [] { return std::make_unique<AutoSolver>(); });

// DUAL-2D-MS builds a quadratically sized angular index; "auto" only
// considers it below this instance count.
constexpr int kAutoDual2dMaxInstances = 2048;
// Below this instance count the quadratic LOOP scan beats tree setup.
constexpr int kAutoLoopMaxInstances = 64;

}  // namespace

namespace internal {
// Link anchor so static-archive linking keeps this translation unit (and
// the "auto" registration) in every binary that touches the registry.
void LinkAutoSolver() {}
}  // namespace internal

std::string AutoSelectSolverName(const ExecutionContext& context) {
  const DatasetView& view = context.view();
  const int n = view.num_instances();
  // Candidates in preference order per the paper's §V guidance; the first
  // one whose capability flags accept the context wins, so the policy can
  // never hand out an inapplicable solver.
  std::vector<std::string> candidates;
  if (context.has_weight_ratios()) {
    if (view.dim() == 2 && n <= kAutoDual2dMaxInstances) {
      candidates.push_back("dual-2d-ms");  // §V-D: IIP niche
    }
    candidates.push_back("dual");  // §V: DUAL wins under weight ratios
  }
  if (n <= kAutoLoopMaxInstances) candidates.push_back("loop");
  candidates.push_back("kdtt+");  // §V: the general-purpose default
  for (const std::string& name : candidates) {
    auto solver = SolverRegistry::Create(name);
    if (solver.ok() && (*solver)->ValidateContext(context).ok()) return name;
  }
  return "kdtt+";
}

// ---------------------------------------------------------- ConstraintSpec

std::string ConstraintSpec::CacheKey() const {
  std::ostringstream os;
  os.precision(17);
  if (has_weight_ratios()) {
    os << "wr:";
    for (const auto& [lo, hi] : weight_ratios().ranges()) {
      os << lo << ',' << hi << ';';
    }
  } else if (valid()) {
    const PreferenceRegion& r = region();
    os << "region:" << r.dim() << ':';
    for (const Point& v : r.vertices()) {
      for (double c : v.coords()) os << c << ',';
      os << ';';
    }
  }
  return os.str();
}

StatusOr<ConstraintSpec> ParseConstraintSpec(const std::string& spec,
                                             int dim) {
  if (spec.rfind("wr:", 0) == 0) {
    std::vector<double> values;
    std::string token;
    bool malformed = false;
    for (size_t i = 3; i <= spec.size(); ++i) {
      if (i == spec.size() || spec[i] == ',') {
        // Empty ("wr:0.5,,2.0") and non-numeric ("wr:1x,2") tokens are
        // typos, not values to coerce.
        char* end = nullptr;
        const double value =
            token.empty() ? 0.0 : std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size()) {
          malformed = true;
        } else {
          values.push_back(value);
        }
        token.clear();
      } else {
        token += spec[i];
      }
    }
    if (malformed || values.empty() || values.size() % 2 != 0) {
      return Status::InvalidArgument("bad weight-ratio spec '" + spec +
                                     "': need pairs l1,h1[,l2,h2,...]");
    }
    if (static_cast<int>(values.size() / 2) + 1 != dim) {
      return Status::InvalidArgument(
          "need " + std::to_string(dim - 1) + " ratio ranges for d=" +
          std::to_string(dim) + " data (got " +
          std::to_string(values.size() / 2) + ")");
    }
    std::vector<std::pair<double, double>> ranges;
    for (size_t i = 0; i < values.size(); i += 2) {
      ranges.emplace_back(values[i], values[i + 1]);
    }
    auto wr = WeightRatioConstraints::Create(std::move(ranges));
    if (!wr.ok()) return wr.status();
    return ConstraintSpec::WeightRatios(std::move(*wr));
  }
  if (spec.rfind("rank:", 0) == 0) {
    char* end = nullptr;
    const long c = std::strtol(spec.c_str() + 5, &end, 10);
    if (end == spec.c_str() + 5 || *end != '\0' || c < 0 || c > dim - 1) {
      return Status::InvalidArgument(
          "rank constraint count must be an integer in [0, " +
          std::to_string(dim - 1) + "] (got '" + spec.substr(5) + "')");
    }
    auto region = PreferenceRegion::FromLinearConstraints(
        MakeWeakRankingConstraints(dim, static_cast<int>(c)));
    if (!region.ok()) return region.status();
    return ConstraintSpec::Region(std::move(*region));
  }
  return Status::InvalidArgument("constraint spec '" + spec +
                                 "' must start with 'wr:' or 'rank:'");
}

// --------------------------------------------------------------- engine

ArspEngine::ArspEngine(EngineOptions options) : options_(options) {}

ArspEngine::~ArspEngine() = default;

DatasetHandle ArspEngine::AddDataset(
    std::shared_ptr<const UncertainDataset> dataset) {
  ARSP_CHECK_MSG(dataset != nullptr, "AddDataset: null dataset");
  DatasetView view{dataset};  // full view, shares ownership
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_dataset_id_++;
  datasets_.emplace(id,
                    DatasetEntry{std::move(dataset), std::move(view), id});
  return DatasetHandle{id};
}

DatasetHandle ArspEngine::AddDataset(UncertainDataset dataset) {
  return AddDataset(
      std::make_shared<const UncertainDataset>(std::move(dataset)));
}

StatusOr<DatasetHandle> ArspEngine::AddView(DatasetHandle base,
                                            ViewSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(base.id);
  if (it == datasets_.end()) {
    return Status::NotFound("unknown dataset handle " +
                            std::to_string(base.id));
  }
  if (it->second.base_id != base.id) {
    return Status::InvalidArgument(
        "AddView over view handle " + std::to_string(base.id) +
        " — register views against the base dataset (handle " +
        std::to_string(it->second.base_id) + ") instead");
  }
  auto view = DatasetView::Create(it->second.dataset, std::move(spec));
  if (!view.ok()) return view.status();
  const int id = next_dataset_id_++;
  datasets_.emplace(
      id, DatasetEntry{it->second.dataset, std::move(*view), base.id});
  return DatasetHandle{id};
}

std::shared_ptr<const UncertainDataset> ArspEngine::dataset(
    DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) return nullptr;
  return it->second.dataset;
}

DatasetView ArspEngine::view(DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) return DatasetView();
  return it->second.view;
}

Status ArspEngine::DropDataset(DatasetHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) {
    return Status::NotFound("unknown dataset handle " +
                            std::to_string(handle.id));
  }
  const bool is_base = it->second.base_id == handle.id;
  // Dropping a base cascades to its views: a view's data plane hangs off
  // the base's pooled contexts, and keeping orphan views alive would pin
  // the dataset payload the caller asked to release.
  std::vector<int> dropped;
  if (is_base) {
    for (const auto& [id, entry] : datasets_) {
      if (entry.base_id == handle.id) dropped.push_back(id);
    }
  } else {
    dropped.push_back(handle.id);
  }
  for (int id : dropped) {
    datasets_.erase(id);
    for (auto ctx = contexts_.begin(); ctx != contexts_.end();) {
      if (ctx->first.first == id) {
        ctx = contexts_.erase(ctx);
      } else {
        ++ctx;
      }
    }
    for (auto memo = auto_memo_.begin(); memo != auto_memo_.end();) {
      if (memo->first.first == id) {
        memo = auto_memo_.erase(memo);
      } else {
        ++memo;
      }
    }
  }
  return Status::OK();
}

StatusOr<QueryResponse> ArspEngine::Solve(const QueryRequest& request) {
  return SolveImpl(request);
}

StatusOr<QueryResponse> ArspEngine::SolveImpl(const QueryRequest& request) {
  if (!request.constraints.valid()) {
    return Status::InvalidArgument("QueryRequest has no constraints");
  }
  if (request.derived.kind == DerivedKind::kCountControlled &&
      request.derived.max_objects < 1) {
    return Status::InvalidArgument("count-controlled query needs "
                                   "max_objects >= 1");
  }

  const bool cacheable =
      request.use_cache && options_.result_cache_capacity > 0;

  // Dataset lookup + context pool (short critical section). Key
  // serialization is skipped entirely for pool-less, cache-bypassing
  // requests (the benchmark path) — nothing would read the keys.
  std::shared_ptr<const UncertainDataset> dataset;  // keep-alive
  DatasetView view;
  int base_id = -1;
  std::shared_ptr<ExecutionContext> context;
  const std::string constraint_key =
      request.pool_context || cacheable ? request.constraints.CacheKey()
                                        : std::string();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = datasets_.find(request.dataset.id);
    if (it == datasets_.end()) {
      return Status::NotFound("unknown dataset handle " +
                              std::to_string(request.dataset.id));
    }
    dataset = it->second.dataset;
    view = it->second.view;
    base_id = it->second.base_id;
    if (request.pool_context) {
      const auto key = std::make_pair(request.dataset.id, constraint_key);
      const auto pooled = contexts_.find(key);
      if (pooled != contexts_.end()) {
        pooled->second.last_used = ++pool_tick_;
        context = pooled->second.context;
      }
    }
  }
  // Solver names are normalized up front: registry lookup is
  // case-insensitive and cache keys must agree with it ("AUTO"/"KDTT+"
  // alias "auto"/"kdtt+").
  std::string solver_name = SolverRegistry::Normalize(request.solver);
  bool is_auto = solver_name == "auto" || solver_name.empty();

  // Memoized "auto" resolution: the choice is a pure function of dataset
  // shape + constraints, so a remembered name lets a cached auto query
  // take the context-free fast path below. (constraint_key is only built
  // for pooled/cacheable requests — the bench path never memoizes.)
  if (is_auto && (request.pool_context || cacheable)) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = auto_memo_.find(
        std::make_pair(request.dataset.id, constraint_key));
    if (it != auto_memo_.end()) {
      solver_name = it->second;
      is_auto = false;
    }
  }

  QueryResponse response;
  std::string cache_key;
  // One cache lookup per request: counts a hit or a miss and fills the
  // response on a hit.
  const auto lookup_cache = [&]() {
    // The handle id is the dataset's fingerprint: handles are never reused
    // across the engine's lifetime and the dataset behind one is immutable
    // (shared_ptr<const>), so the id is collision-proof where a content
    // hash would only be collision-resistant.
    cache_key = std::to_string(request.dataset.id) + '|' + constraint_key +
                '|' + solver_name + '|' + request.options.CacheKey();
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_index_.find(cache_key);
    if (it == cache_index_.end()) {
      ++cache_misses_;
      return;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
    ++cache_hits_;
    response.result = it->second->second.result;
    response.solver = it->second->second.solver;
    response.stats = it->second->second.stats;
    response.cache_hit = true;
  };

  // An explicit solver's cache key needs no context: look up first, so pure
  // cache hits skip context construction and pool churn entirely. "auto"
  // resolves against a (transient) context, so its lookup happens after
  // construction — but pooling is deferred to the miss path for both, so
  // cache hits never evict warm contexts from the bounded pool.
  if (cacheable && !is_auto) lookup_cache();

  if (!response.cache_hit) {
    if (context == nullptr) {
      if (base_id != request.dataset.id && request.pool_context) {
        // View handle with pooling (any spec — a Full-spec view must not
        // rebuild either): derive from the base dataset's pooled context
        // so the whole sweep of views over one base shares a single set
        // of full indexes and one SoA score mapping.
        std::shared_ptr<ExecutionContext> parent = FindOrCreatePooledContext(
            base_id, constraint_key, request.constraints, dataset);
        context = ExecutionContext::Derive(std::move(parent), view);
      } else {
        // Full view, or a cold (pool-less) request: a standalone context
        // that builds only over its own view.
        context = request.constraints.has_weight_ratios()
                      ? std::make_shared<ExecutionContext>(
                            view, request.constraints.weight_ratios())
                      : std::make_shared<ExecutionContext>(
                            view, request.constraints.region());
      }
    }
    if (is_auto) {
      // Resolve before the (deferred) cache lookup so an auto request and
      // an explicit request for the same concrete solver share one entry.
      solver_name = AutoSelectSolverName(*context);
      if (request.pool_context || cacheable) {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto_memo_.size() >= 4096) auto_memo_.clear();  // crude bound
        auto_memo_[std::make_pair(request.dataset.id, constraint_key)] =
            solver_name;
      }
      if (cacheable) lookup_cache();
    }
  }

  if (!response.cache_hit) {
    if (request.pool_context) {
      std::lock_guard<std::mutex> lock(mu_);
      // Pool only if the dataset was not concurrently dropped (a context
      // pooled under a dead id would be unreachable forever). Another
      // thread may have pooled the same key meanwhile; keep the first so
      // concurrent callers converge on one context (re-pooling an already
      // pooled context converges on itself).
      if (datasets_.count(request.dataset.id) > 0) {
        const auto it = contexts_
                            .emplace(std::make_pair(request.dataset.id,
                                                    constraint_key),
                                     PooledContext{context, 0})
                            .first;
        it->second.last_used = ++pool_tick_;
        context = it->second.context;
        // Bound the pool: evict the least-recently-used context beyond
        // the cap (shared ownership keeps in-flight solves on it safe).
        const size_t capacity =
            std::max<size_t>(1, options_.context_pool_capacity);
        while (contexts_.size() > capacity) {
          EvictLeastRecentlyUsed(contexts_);
        }
      }
    }
    response.solver = solver_name;
    auto solver = SolverRegistry::Create(solver_name, request.options);
    if (!solver.ok()) return solver.status();
    SolverStats stats;
    StatusOr<ArspResult> result = (*solver)->Solve(*context, &stats);
    if (!result.ok()) return result.status();
    // Created non-const (then viewed as const) so TakeResult can move the
    // payload out of a uniquely owned response.
    response.result = std::make_shared<ArspResult>(std::move(*result));
    response.stats = stats;
    if (cacheable) {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = cache_index_.find(cache_key);
      if (it == cache_index_.end()) {
        lru_.emplace_front(
            cache_key,
            CacheEntry{response.result, response.solver, response.stats});
        cache_index_[cache_key] = lru_.begin();
        while (lru_.size() > options_.result_cache_capacity) {
          cache_index_.erase(lru_.back().first);
          lru_.pop_back();
        }
      }
    }
  }

  // Derived retrievals — cheap post-processing of the full result (§I).
  // Object rankings go through the view (ids in the output are base object
  // ids, so callers can map them to names regardless of the window).
  const ArspResult& result = *response.result;
  switch (request.derived.kind) {
    case DerivedKind::kNone:
      break;
    case DerivedKind::kTopKObjects:
      response.ranked = TopKObjects(result, view, request.derived.k);
      break;
    case DerivedKind::kTopKInstances:
      response.ranked = TopKInstances(result, request.derived.k);
      break;
    case DerivedKind::kObjectsAboveThreshold:
      response.ranked =
          ObjectsAboveThreshold(result, view, request.derived.threshold);
      break;
    case DerivedKind::kCountControlled: {
      // One full object ranking serves both answers (semantics identical to
      // ThresholdForObjectCount + ObjectsAboveThreshold, asserted in
      // tests/engine_test.cc).
      std::vector<std::pair<int, double>> ranked =
          TopKObjects(result, view, -1);
      const size_t cut = std::min(
          ranked.size(), static_cast<size_t>(request.derived.max_objects));
      response.count_threshold = cut == 0 ? 0.0 : ranked[cut - 1].second;
      while (!ranked.empty() &&
             ranked.back().second < response.count_threshold) {
        ranked.pop_back();
      }
      response.ranked = std::move(ranked);
      break;
    }
  }
  return response;
}

std::shared_ptr<ExecutionContext> ArspEngine::FindOrCreatePooledContext(
    int base_id, const std::string& constraint_key,
    const ConstraintSpec& constraints,
    const std::shared_ptr<const UncertainDataset>& base_dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pool_key = std::make_pair(base_id, constraint_key);
  const auto pooled = contexts_.find(pool_key);
  if (pooled != contexts_.end()) {
    pooled->second.last_used = ++pool_tick_;
    return pooled->second.context;
  }
  DatasetView base_view(base_dataset);  // full view, shares ownership
  auto context =
      constraints.has_weight_ratios()
          ? std::make_shared<ExecutionContext>(std::move(base_view),
                                               constraints.weight_ratios())
          : std::make_shared<ExecutionContext>(std::move(base_view),
                                               constraints.region());
  // Pool only while the base is still registered (a context pooled under a
  // dead id would be unreachable forever).
  if (datasets_.count(base_id) > 0) {
    contexts_.emplace(pool_key, PooledContext{context, ++pool_tick_});
    const size_t capacity = std::max<size_t>(1, options_.context_pool_capacity);
    while (contexts_.size() > capacity) {
      EvictLeastRecentlyUsed(contexts_);
    }
  }
  return context;
}

ExecutionContext::IndexBuildStats ArspEngine::index_stats(
    DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutionContext::IndexBuildStats total;
  for (const auto& [key, pooled] : contexts_) {
    if (key.first != handle.id) continue;
    total += pooled.context->index_build_stats();
  }
  return total;
}

std::vector<StatusOr<QueryResponse>> ArspEngine::SolveBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<StatusOr<QueryResponse>> results(
      requests.size(), Status::Internal("request not executed"));
  if (requests.empty()) return results;
  if (requests.size() == 1) {
    results[0] = Solve(requests[0]);
    return results;
  }

  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) {
      int threads = options_.num_threads;
      if (threads <= 0) {
        // DefaultConcurrency handles hardware_concurrency() == 0 (allowed
        // by the standard), where the old code degraded to a 1-thread pool.
        threads = ThreadPool::DefaultConcurrency();
      }
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool = pool_.get();
  }

  std::latch done(static_cast<ptrdiff_t>(requests.size()));
  for (size_t i = 0; i < requests.size(); ++i) {
    pool->Submit([this, &requests, &results, &done, i] {
      results[i] = Solve(requests[i]);
      done.count_down();
    });
  }
  done.wait();
  return results;
}

ArspResult ArspEngine::TakeResult(QueryResponse&& response) {
  std::shared_ptr<const ArspResult> shared = std::move(response.result);
  ARSP_CHECK_MSG(shared != nullptr, "TakeResult: response has no result");
  if (shared.use_count() == 1) {
    // Safe: SolveImpl allocates every payload as a non-const ArspResult,
    // and unique ownership means no other reader exists.
    return std::move(const_cast<ArspResult&>(*shared));
  }
  return *shared;
}

ArspEngine::CacheStats ArspEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{cache_hits_, cache_misses_, lru_.size()};
}

void ArspEngine::ClearResultCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_index_.clear();
}

size_t ArspEngine::pooled_contexts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contexts_.size();
}

}  // namespace arsp
