// Copyright 2026 The ARSP Authors.

#include "src/core/engine.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <latch>
#include <sstream>
#include <thread>

#include "src/common/lru.h"
#include "src/common/percentile.h"
#include "src/common/stopwatch.h"
#include "src/common/task_arena.h"
#include "src/core/queries.h"
#include "src/prefs/constraint_generators.h"

namespace arsp {

namespace {

// --------------------------------------------------------------- "auto"

/// Meta-solver registered as "auto": resolves a concrete solver through
/// AutoSelectSolverName and delegates. ArspEngine resolves "auto" itself
/// (so cache keys and responses carry the concrete name); this entry gives
/// raw SolverRegistry users the identical policy, including options — the
/// bag is held here and validated against the resolved solver at Solve
/// time, exactly like the engine path.
class AutoSolver : public ArspSolver {
 public:
  const char* name() const override { return "auto"; }
  const char* display_name() const override { return "AUTO"; }
  const char* description() const override {
    return "picks a concrete solver from capability flags and data shape "
           "(KDTT+ default, DUAL for weight ratios; paper §V)";
  }

  Status Configure(const SolverOptions& options) override {
    options_ = options;
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    auto solver =
        SolverRegistry::Create(AutoSelectSolverName(context), options_);
    if (!solver.ok()) return solver.status();
    return (*solver)->Solve(context);
  }

 private:
  SolverOptions options_;
};

ARSP_REGISTER_SOLVER(auto_select, "auto",
                     [] { return std::make_unique<AutoSolver>(); });

// DUAL-2D-MS builds a quadratically sized angular index; "auto" only
// considers it below this instance count.
constexpr int kAutoDual2dMaxInstances = 2048;
// Below this instance count the quadratic LOOP scan beats tree setup.
constexpr int kAutoLoopMaxInstances = 64;

// The QueryGoal a derived request pushes into the solver layer. Instance-
// level retrievals stay full: goal pushdown tracks per-*object* bounds.
QueryGoal GoalForDerived(const DerivedSpec& derived) {
  QueryGoal goal;
  switch (derived.kind) {
    case DerivedKind::kNone:
      break;
    case DerivedKind::kTopKInstances:
      // Instance retrievals need complete results; scope never applies.
      return QueryGoal::Full();
    case DerivedKind::kTopKObjects:
      // Negative k means "rank all objects" — full work by definition, so
      // it maps to the full goal (and AnswerGoal's full slicing). k == 0
      // stays a top-k goal: its answer is empty, not everything.
      if (derived.k >= 0) goal = QueryGoal::TopK(derived.k);
      break;
    case DerivedKind::kObjectsAboveThreshold:
      goal = QueryGoal::Threshold(derived.threshold);
      break;
    case DerivedKind::kCountControlled:
      goal = QueryGoal::CountControlled(derived.max_objects);
      break;
  }
  if (derived.scope_begin >= 0 && derived.scope_end >= 0) {
    goal = goal.WithScope(derived.scope_begin, derived.scope_end);
  }
  return goal;
}

}  // namespace

namespace internal {
// Link anchor so static-archive linking keeps this translation unit (and
// the "auto" registration) in every binary that touches the registry.
void LinkAutoSolver() {}
}  // namespace internal

std::string AutoSelectSolverName(const ExecutionContext& context) {
  const DatasetView& view = context.view();
  const int n = view.num_instances();
  // Candidates in preference order per the paper's §V guidance; the first
  // one whose capability flags accept the context wins, so the policy can
  // never hand out an inapplicable solver.
  std::vector<std::string> candidates;
  if (context.has_weight_ratios()) {
    if (view.dim() == 2 && n <= kAutoDual2dMaxInstances) {
      candidates.push_back("dual-2d-ms");  // §V-D: IIP niche
    }
    candidates.push_back("dual");  // §V: DUAL wins under weight ratios
  }
  if (n <= kAutoLoopMaxInstances) candidates.push_back("loop");
  candidates.push_back("kdtt+");  // §V: the general-purpose default
  for (const std::string& name : candidates) {
    auto solver = SolverRegistry::Create(name);
    if (solver.ok() && (*solver)->ValidateContext(context).ok()) return name;
  }
  return "kdtt+";
}

// ---------------------------------------------------------- ConstraintSpec

std::string ConstraintSpec::CacheKey() const {
  std::ostringstream os;
  os.precision(17);
  if (has_weight_ratios()) {
    os << "wr:";
    for (const auto& [lo, hi] : weight_ratios().ranges()) {
      os << lo << ',' << hi << ';';
    }
  } else if (valid()) {
    const PreferenceRegion& r = region();
    os << "region:" << r.dim() << ':';
    for (const Point& v : r.vertices()) {
      for (double c : v.coords()) os << c << ',';
      os << ';';
    }
  }
  return os.str();
}

StatusOr<ConstraintSpec> ParseConstraintSpec(const std::string& spec,
                                             int dim) {
  if (spec.rfind("wr:", 0) == 0) {
    std::vector<double> values;
    std::string token;
    bool malformed = false;
    for (size_t i = 3; i <= spec.size(); ++i) {
      if (i == spec.size() || spec[i] == ',') {
        // Empty ("wr:0.5,,2.0") and non-numeric ("wr:1x,2") tokens are
        // typos, not values to coerce.
        char* end = nullptr;
        const double value =
            token.empty() ? 0.0 : std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size()) {
          malformed = true;
        } else {
          values.push_back(value);
        }
        token.clear();
      } else {
        token += spec[i];
      }
    }
    if (malformed || values.empty() || values.size() % 2 != 0) {
      return Status::InvalidArgument("bad weight-ratio spec '" + spec +
                                     "': need pairs l1,h1[,l2,h2,...]");
    }
    if (static_cast<int>(values.size() / 2) + 1 != dim) {
      return Status::InvalidArgument(
          "need " + std::to_string(dim - 1) + " ratio ranges for d=" +
          std::to_string(dim) + " data (got " +
          std::to_string(values.size() / 2) + ")");
    }
    std::vector<std::pair<double, double>> ranges;
    for (size_t i = 0; i < values.size(); i += 2) {
      ranges.emplace_back(values[i], values[i + 1]);
    }
    auto wr = WeightRatioConstraints::Create(std::move(ranges));
    if (!wr.ok()) return wr.status();
    return ConstraintSpec::WeightRatios(std::move(*wr));
  }
  if (spec.rfind("rank:", 0) == 0) {
    char* end = nullptr;
    const long c = std::strtol(spec.c_str() + 5, &end, 10);
    if (end == spec.c_str() + 5 || *end != '\0' || c < 0 || c > dim - 1) {
      return Status::InvalidArgument(
          "rank constraint count must be an integer in [0, " +
          std::to_string(dim - 1) + "] (got '" + spec.substr(5) + "')");
    }
    auto region = PreferenceRegion::FromLinearConstraints(
        MakeWeakRankingConstraints(dim, static_cast<int>(c)));
    if (!region.ok()) return region.status();
    return ConstraintSpec::Region(std::move(*region));
  }
  return Status::InvalidArgument("constraint spec '" + spec +
                                 "' must start with 'wr:' or 'rank:'");
}

// --------------------------------------------------------------- engine

ArspEngine::ArspEngine(EngineOptions options) : options_(options) {
  // Sized once here and never resized, so Solve may test emptiness without
  // the lock (only the slots themselves are mutated, under mu_).
  latency_ring_.resize(options_.latency_window, 0.0);
}

ArspEngine::~ArspEngine() = default;

DatasetHandle ArspEngine::AddDataset(
    std::shared_ptr<const UncertainDataset> dataset) {
  ARSP_CHECK_MSG(dataset != nullptr, "AddDataset: null dataset");
  DatasetView view{dataset};  // full view, shares ownership
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_dataset_id_++;
  datasets_.emplace(id,
                    DatasetEntry{std::move(dataset), std::move(view), id});
  return DatasetHandle{id};
}

DatasetHandle ArspEngine::AddDataset(UncertainDataset dataset) {
  return AddDataset(
      std::make_shared<const UncertainDataset>(std::move(dataset)));
}

StatusOr<DatasetHandle> ArspEngine::AddView(DatasetHandle base,
                                            ViewSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(base.id);
  if (it == datasets_.end()) {
    return Status::NotFound("unknown dataset handle " +
                            std::to_string(base.id));
  }
  if (it->second.base_id != base.id) {
    return Status::InvalidArgument(
        "AddView over view handle " + std::to_string(base.id) +
        " — register views against the base dataset (handle " +
        std::to_string(it->second.base_id) + ") instead");
  }
  auto view = DatasetView::Create(it->second.dataset, std::move(spec));
  if (!view.ok()) return view.status();
  const int id = next_dataset_id_++;
  datasets_.emplace(
      id, DatasetEntry{it->second.dataset, std::move(*view), base.id});
  return DatasetHandle{id};
}

std::shared_ptr<const UncertainDataset> ArspEngine::dataset(
    DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) return nullptr;
  return it->second.dataset;
}

DatasetView ArspEngine::view(DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) return DatasetView();
  return it->second.view;
}

Status ArspEngine::DropDataset(DatasetHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(handle.id);
  if (it == datasets_.end()) {
    return Status::NotFound("unknown dataset handle " +
                            std::to_string(handle.id));
  }
  const bool is_base = it->second.base_id == handle.id;
  // Dropping a base cascades to its views: a view's data plane hangs off
  // the base's pooled contexts, and keeping orphan views alive would pin
  // the dataset payload the caller asked to release.
  std::vector<int> dropped;
  if (is_base) {
    for (const auto& [id, entry] : datasets_) {
      if (entry.base_id == handle.id) dropped.push_back(id);
    }
  } else {
    dropped.push_back(handle.id);
  }
  for (int id : dropped) {
    datasets_.erase(id);
    for (auto ctx = contexts_.begin(); ctx != contexts_.end();) {
      if (ctx->first.first == id) {
        ctx = contexts_.erase(ctx);
      } else {
        ++ctx;
      }
    }
    for (auto memo = auto_memo_.begin(); memo != auto_memo_.end();) {
      if (memo->first.first == id) {
        memo = auto_memo_.erase(memo);
      } else {
        ++memo;
      }
    }
  }
  return Status::OK();
}

StatusOr<QueryResponse> ArspEngine::Solve(const QueryRequest& request) {
  Stopwatch watch;
  StatusOr<QueryResponse> response = SolveImpl(request);
  if (response.ok() && !latency_ring_.empty()) {
    const double millis = watch.ElapsedMillis();
    std::lock_guard<std::mutex> lock(mu_);
    latency_ring_[latency_next_] = millis;
    latency_next_ = (latency_next_ + 1) % latency_ring_.size();
    ++latency_count_;
  }
  return response;
}

StatusOr<QueryResponse> ArspEngine::SolveImpl(const QueryRequest& request) {
  if (!request.constraints.valid()) {
    return Status::InvalidArgument("QueryRequest has no constraints");
  }
  if (request.derived.kind == DerivedKind::kCountControlled &&
      request.derived.max_objects < 1) {
    return Status::InvalidArgument("count-controlled query needs "
                                   "max_objects >= 1");
  }
  if (request.parallelism < 0) {
    return Status::InvalidArgument(
        "QueryRequest.parallelism must be >= 0, got " +
        std::to_string(request.parallelism));
  }

  const bool cacheable =
      request.use_cache && options_.result_cache_capacity > 0;

  // Dataset lookup + context pool (short critical section). Key
  // serialization is skipped entirely for pool-less, cache-bypassing
  // requests (the benchmark path) — nothing would read the keys.
  std::shared_ptr<const UncertainDataset> dataset;  // keep-alive
  DatasetView view;
  int base_id = -1;
  std::shared_ptr<ExecutionContext> context;
  const std::string constraint_key =
      request.pool_context || cacheable ? request.constraints.CacheKey()
                                        : std::string();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = datasets_.find(request.dataset.id);
    if (it == datasets_.end()) {
      return Status::NotFound("unknown dataset handle " +
                              std::to_string(request.dataset.id));
    }
    dataset = it->second.dataset;
    view = it->second.view;
    base_id = it->second.base_id;
    if (request.pool_context) {
      const auto key = std::make_pair(request.dataset.id, constraint_key);
      const auto pooled = contexts_.find(key);
      if (pooled != contexts_.end()) {
        pooled->second.last_used = ++pool_tick_;
        context = pooled->second.context;
      }
    }
  }
  // Solver names are normalized up front: registry lookup is
  // case-insensitive and cache keys must agree with it ("AUTO"/"KDTT+"
  // alias "auto"/"kdtt+").
  std::string solver_name = SolverRegistry::Normalize(request.solver);
  bool is_auto = solver_name == "auto" || solver_name.empty();

  // Memoized "auto" resolution: the choice is a pure function of dataset
  // shape + constraints, so a remembered name lets a cached auto query
  // take the context-free fast path below. (constraint_key is only built
  // for pooled/cacheable requests — the bench path never memoizes.)
  if (is_auto && (request.pool_context || cacheable)) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = auto_memo_.find(
        std::make_pair(request.dataset.id, constraint_key));
    if (it != auto_memo_.end()) {
      solver_name = it->second;
      is_auto = false;
    }
  }

  // Goal pushdown applies when the derived request maps to a non-full goal
  // and the resolved solver advertises the capability. The capability bit
  // is read from the solver instance the miss path creates anyway — cache
  // lookups need only `want_pushdown`, because a goal-key entry can exist
  // only if a capable solver stored it (probing the key for a capless
  // solver is a guaranteed, harmless miss).
  const QueryGoal goal = GoalForDerived(request.derived);
  // A scoped full goal is still pushdown-worthy: the scope alone lets a
  // capable solver skip out-of-scope subtrees (yielding a partial result).
  const bool want_pushdown =
      request.allow_pushdown && (!goal.is_full() || goal.has_scope());
  bool pushdown = false;  // decided at solve time from solver capabilities

  QueryResponse response;
  std::string cache_key;
  std::string goal_cache_key;
  // One cache lookup per request: counts a hit or a miss and fills the
  // response on a hit. Key structure: `cache_key` identifies the *full*
  // answer of (dataset, constraints, solver, options) — only complete
  // results are ever stored under it, so it can serve any goal by post-hoc
  // slicing (subsumption). Goal-pruned partial results live under
  // `goal_cache_key` = cache_key + the goal, and are consulted only by
  // pushdown requests for that exact goal.
  const auto lookup_cache = [&]() {
    obs::ScopedSpan probe_span(request.trace, "cache_probe");
    // The handle id is the dataset's fingerprint: handles are never reused
    // across the engine's lifetime and the dataset behind one is immutable
    // (shared_ptr<const>), so the id is collision-proof where a content
    // hash would only be collision-resistant.
    cache_key = std::to_string(request.dataset.id) + '|' + constraint_key +
                '|' + solver_name + '|' + request.options.CacheKey();
    goal_cache_key = want_pushdown
                         ? cache_key + "|goal=" + goal.CacheKey()
                         : std::string();
    std::lock_guard<std::mutex> lock(mu_);
    const auto try_key = [&](const std::string& key, bool want_complete) {
      const auto it = cache_index_.find(key);
      if (it == cache_index_.end()) return false;
      const CacheEntry& entry = it->second->second;
      ARSP_CHECK_MSG(!want_complete || entry.complete,
                     "result cache invariant broken: partial entry under a "
                     "full key");
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      response.result = entry.result;
      response.solver = entry.solver;
      response.stats = entry.stats;
      response.cache_hit = true;
      response.pushdown = entry.pushdown;
      return true;
    };
    bool hit =
        want_pushdown && try_key(goal_cache_key, /*want_complete=*/false);
    if (!hit) {
      hit = try_key(cache_key, /*want_complete=*/true);
      // Serving a goal from a cached full result is the post-hoc path.
      if (hit) response.pushdown = false;
    }
    if (hit) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
    probe_span.Annotate("hit", hit ? "true" : "false");
  };

  // An explicit solver's cache key needs no context: look up first, so pure
  // cache hits skip context construction and pool churn entirely. "auto"
  // resolves against a (transient) context, so its lookup happens after
  // construction — but pooling is deferred to the miss path for both, so
  // cache hits never evict warm contexts from the bounded pool.
  if (cacheable && !is_auto) lookup_cache();

  if (!response.cache_hit) {
    {
      obs::ScopedSpan acquire_span(request.trace, "context_acquire");
      if (context == nullptr) {
        if (base_id != request.dataset.id && request.pool_context) {
          // View handle with pooling (any spec — a Full-spec view must not
          // rebuild either): derive from the base dataset's pooled context
          // so the whole sweep of views over one base shares a single set
          // of full indexes and one SoA score mapping.
          std::shared_ptr<ExecutionContext> parent = FindOrCreatePooledContext(
              base_id, constraint_key, request.constraints, dataset);
          context = ExecutionContext::Derive(std::move(parent), view);
          acquire_span.Annotate("source", "derived_from_base");
        } else {
          // Full view, or a cold (pool-less) request: a standalone context
          // that builds only over its own view.
          context = request.constraints.has_weight_ratios()
                        ? std::make_shared<ExecutionContext>(
                              view, request.constraints.weight_ratios())
                        : std::make_shared<ExecutionContext>(
                              view, request.constraints.region());
          acquire_span.Annotate("source", "fresh");
        }
      } else {
        acquire_span.Annotate("source", "pooled");
      }
    }
    if (is_auto) {
      // Resolve before the (deferred) cache lookup so an auto request and
      // an explicit request for the same concrete solver share one entry.
      solver_name = AutoSelectSolverName(*context);
      if (request.pool_context || cacheable) {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto_memo_.size() >= 4096) auto_memo_.clear();  // crude bound
        auto_memo_[std::make_pair(request.dataset.id, constraint_key)] =
            solver_name;
      }
      if (cacheable) lookup_cache();
    }
  }

  if (!response.cache_hit) {
    if (request.pool_context) {
      std::lock_guard<std::mutex> lock(mu_);
      // Pool only if the dataset was not concurrently dropped (a context
      // pooled under a dead id would be unreachable forever). Another
      // thread may have pooled the same key meanwhile; keep the first so
      // concurrent callers converge on one context (re-pooling an already
      // pooled context converges on itself).
      if (datasets_.count(request.dataset.id) > 0) {
        const auto it = contexts_
                            .emplace(std::make_pair(request.dataset.id,
                                                    constraint_key),
                                     PooledContext{context, 0})
                            .first;
        it->second.last_used = ++pool_tick_;
        context = it->second.context;
        // Bound the pool: evict the least-recently-used context beyond
        // the cap (shared ownership keeps in-flight solves on it safe).
        const size_t capacity =
            std::max<size_t>(1, options_.context_pool_capacity);
        while (contexts_.size() > capacity) {
          EvictLeastRecentlyUsed(contexts_);
        }
      }
    }
    response.solver = solver_name;
    // Created unconfigured: the capability bits decide whether the engine
    // may inject an intra-query parallelism hint before Configure runs.
    auto solver = SolverRegistry::Create(solver_name);
    if (!solver.ok()) return solver.status();
    // Resolve the worker request: the per-query field wins, then the
    // engine-wide policy, then the auto heuristic (parallelize only large
    // contexts, sized by the process-global core budget so intra-query
    // workers and the batch pool never oversubscribe — the executor's
    // TryAcquire clamps to whatever is actually free at solve time).
    int effective_parallelism = request.parallelism;
    if (effective_parallelism == 0) {
      effective_parallelism = options_.query_threads;
    }
    if (effective_parallelism == 0) {
      effective_parallelism = view.num_instances() >= kParallelMinInstances
                                  ? CoreBudget::Total()
                                  : 1;
    }
    const bool inject_parallelism =
        effective_parallelism >= 2 &&
        ((*solver)->capabilities() & kCapIntraQueryParallel) != 0 &&
        !request.options.Has("parallelism");
    if (inject_parallelism) {
      // The hint never enters `cache_key` (built from request.options
      // above): parallel results are bit-identical to serial by contract,
      // so serial and parallel runs of one query share a cache entry.
      SolverOptions solve_options = request.options;
      solve_options.SetInt("parallelism", effective_parallelism);
      ARSP_RETURN_IF_ERROR((*solver)->Configure(solve_options));
    } else {
      ARSP_RETURN_IF_ERROR((*solver)->Configure(request.options));
    }
    pushdown = want_pushdown &&
               ((*solver)->capabilities() & kCapGoalPushdown) != 0;
    // Goal pushdown runs on a goal-scoped child context derived over the
    // *same* view: every artifact (score span included) is shared, pooled
    // contexts stay goal-free (and therefore reusable across concurrent
    // mixed-goal queries), and Derive propagates goals through the view
    // plane — a sweep's per-prefix contexts prune per prefix.
    std::shared_ptr<ExecutionContext> solve_context = context;
    if (pushdown) {
      solve_context = ExecutionContext::Derive(context, view, goal);
    }
    SolverStats stats;
    ExecutionContext::IndexBuildStats index_before;
    if (request.trace != nullptr) {
      index_before = solve_context->index_build_stats();
    }
    obs::ScopedSpan solve_span(request.trace, "solve");
    const uint64_t solve_start_ns =
        request.trace != nullptr ? obs::Trace::NowNs() : 0;
    StatusOr<ArspResult> result = (*solver)->Solve(*solve_context, &stats);
    if (!result.ok()) return result.status();
    if (request.trace != nullptr) {
      // The lazy context preprocessing this solve triggered (index builds,
      // snapshot adoption, score mapping) runs at the head of Solve; carve
      // it out as a child span so the timeline separates setup from
      // traversal, and annotate it with the build-vs-adopt counters.
      const ExecutionContext::IndexBuildStats index_after =
          solve_context->index_build_stats();
      if (stats.setup_millis > 0.0) {
        obs::Span setup;
        setup.name = "index_setup";
        setup.start_ns = solve_start_ns;
        setup.end_ns =
            solve_start_ns + static_cast<uint64_t>(stats.setup_millis * 1e6);
        const auto note = [&setup](const char* key, int64_t delta) {
          if (delta != 0) setup.annotations.emplace_back(key,
                                                         std::to_string(delta));
        };
        note("kdtree_builds", index_after.kdtree_builds -
                                  index_before.kdtree_builds);
        note("rtree_builds",
             index_after.rtree_builds - index_before.rtree_builds);
        note("score_maps", index_after.score_maps - index_before.score_maps);
        note("score_reuses",
             index_after.score_reuses - index_before.score_reuses);
        note("parent_index_hits", index_after.parent_index_hits -
                                      index_before.parent_index_hits);
        note("snapshot_adopts",
             index_after.snapshot_hits - index_before.snapshot_hits);
        request.trace->AdoptChild(std::move(setup));
      }
      solve_span.Annotate("pushdown", pushdown ? "true" : "false");
      stats.AnnotateSpan(&solve_span);
    }
    // Created non-const (then viewed as const) so TakeResult can move the
    // payload out of a uniquely owned response.
    response.result = std::make_shared<ArspResult>(std::move(*result));
    response.stats = stats;
    response.pushdown = pushdown;
    if (cacheable) {
      // Completeness decides the key: a complete result (every full solve,
      // plus pushdown runs that ended up resolving everything) is the
      // universal answer and goes under the full key; a partial result
      // answers only its goal and goes under the goal key.
      const bool complete = response.result->is_complete();
      const std::string& store_key = complete ? cache_key : goal_cache_key;
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = cache_index_.find(store_key);
      if (it == cache_index_.end()) {
        lru_.emplace_front(store_key,
                           CacheEntry{response.result, response.solver,
                                      response.stats, complete, pushdown});
        cache_index_[store_key] = lru_.begin();
        while (lru_.size() > options_.result_cache_capacity) {
          cache_index_.erase(lru_.back().first);
          lru_.pop_back();
        }
      }
    }
  }

  // Derived retrievals. Object-level goals go through AnswerGoal, which
  // slices complete results post hoc (identical to the historical
  // TopKObjects / ObjectsAboveThreshold / count-controlled recipes,
  // asserted in tests/engine_test.cc) and assembles partial (goal-pruned)
  // results from their exact object bounds. Ids in the output are base
  // object ids, so callers can map them to names regardless of the window.
  const ArspResult& result = *response.result;
  obs::ScopedSpan goal_span(request.trace, "goal_answer");
  switch (request.derived.kind) {
    case DerivedKind::kNone:
      break;
    case DerivedKind::kTopKInstances:
      response.ranked = TopKInstances(result, request.derived.k);
      break;
    case DerivedKind::kTopKObjects:
    case DerivedKind::kObjectsAboveThreshold:
    case DerivedKind::kCountControlled:
      // `goal` is the exact goal a pushdown solve was pruned for — the
      // same value must reach AnswerGoal (CHECK-enforced on partials).
      response.ranked =
          AnswerGoal(result, view, goal, &response.count_threshold);
      break;
  }
  if (request.trace != nullptr &&
      request.derived.kind != DerivedKind::kNone) {
    goal_span.Annotate("ranked", static_cast<int64_t>(response.ranked.size()));
  }
  return response;
}

std::shared_ptr<ExecutionContext> ArspEngine::FindOrCreatePooledContext(
    int base_id, const std::string& constraint_key,
    const ConstraintSpec& constraints,
    const std::shared_ptr<const UncertainDataset>& base_dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pool_key = std::make_pair(base_id, constraint_key);
  const auto pooled = contexts_.find(pool_key);
  if (pooled != contexts_.end()) {
    pooled->second.last_used = ++pool_tick_;
    return pooled->second.context;
  }
  DatasetView base_view(base_dataset);  // full view, shares ownership
  auto context =
      constraints.has_weight_ratios()
          ? std::make_shared<ExecutionContext>(std::move(base_view),
                                               constraints.weight_ratios())
          : std::make_shared<ExecutionContext>(std::move(base_view),
                                               constraints.region());
  // Pool only while the base is still registered (a context pooled under a
  // dead id would be unreachable forever).
  if (datasets_.count(base_id) > 0) {
    contexts_.emplace(pool_key, PooledContext{context, ++pool_tick_});
    const size_t capacity = std::max<size_t>(1, options_.context_pool_capacity);
    while (contexts_.size() > capacity) {
      EvictLeastRecentlyUsed(contexts_);
    }
  }
  return context;
}

ExecutionContext::IndexBuildStats ArspEngine::index_stats(
    DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutionContext::IndexBuildStats total;
  for (const auto& [key, pooled] : contexts_) {
    if (key.first != handle.id) continue;
    total += pooled.context->index_build_stats();
  }
  return total;
}

ColumnBytes ArspEngine::index_memory(DatasetHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  ColumnBytes total;
  for (const auto& [key, pooled] : contexts_) {
    if (key.first != handle.id) continue;
    const ColumnBytes bytes = pooled.context->IndexMemoryFootprint();
    total.resident += bytes.resident;
    total.mapped += bytes.mapped;
  }
  return total;
}

std::vector<StatusOr<QueryResponse>> ArspEngine::SolveBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<StatusOr<QueryResponse>> results(
      requests.size(), Status::Internal("request not executed"));
  if (requests.empty()) return results;
  if (requests.size() == 1) {
    results[0] = Solve(requests[0]);
    return results;
  }

  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) {
      int threads = options_.num_threads;
      if (threads <= 0) {
        // DefaultConcurrency handles hardware_concurrency() == 0 (allowed
        // by the standard), where the old code degraded to a 1-thread pool.
        threads = ThreadPool::DefaultConcurrency();
      }
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool = pool_.get();
  }

  std::latch done(static_cast<ptrdiff_t>(requests.size()));
  for (size_t i = 0; i < requests.size(); ++i) {
    pool->Submit([this, &requests, &results, &done, i] {
      results[i] = Solve(requests[i]);
      done.count_down();
    });
  }
  done.wait();
  return results;
}

ArspResult ArspEngine::TakeResult(QueryResponse&& response) {
  std::shared_ptr<const ArspResult> shared = std::move(response.result);
  ARSP_CHECK_MSG(shared != nullptr, "TakeResult: response has no result");
  if (shared.use_count() == 1) {
    // Safe: SolveImpl allocates every payload as a non-const ArspResult,
    // and unique ownership means no other reader exists.
    return std::move(const_cast<ArspResult&>(*shared));
  }
  return *shared;
}

std::string ArspEngine::LatencyStats::ToString() const {
  std::ostringstream os;
  os << "requests=" << count << " window=" << window << " min_ms=" << min_ms
     << " mean_ms=" << mean_ms << " p50_ms=" << p50_ms
     << " p95_ms=" << p95_ms << " p99_ms=" << p99_ms
     << " p999_ms=" << p999_ms;
  return os.str();
}

ArspEngine::LatencyStats ArspEngine::latency_stats() const {
  LatencyStats stats;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.count = latency_count_;
    const size_t filled = std::min<size_t>(
        static_cast<size_t>(latency_count_), latency_ring_.size());
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() + static_cast<ptrdiff_t>(filled));
  }
  if (window.empty()) return stats;
  stats.window = static_cast<int64_t>(window.size());
  std::sort(window.begin(), window.end());
  double sum = 0.0;
  for (double v : window) sum += v;
  stats.min_ms = window.front();
  stats.mean_ms = sum / static_cast<double>(window.size());
  // Nearest-rank percentiles over the retained window, via the shared
  // helper so every latency reporter (arsp_loadgen included) agrees.
  stats.p50_ms = SortedPercentile(window, 0.50);
  stats.p95_ms = SortedPercentile(window, 0.95);
  stats.p99_ms = SortedPercentile(window, 0.99);
  stats.p999_ms = SortedPercentile(window, 0.999);
  return stats;
}

ArspEngine::CacheStats ArspEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{cache_hits_, cache_misses_, lru_.size()};
}

void ArspEngine::ClearResultCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_index_.clear();
}

size_t ArspEngine::pooled_contexts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contexts_.size();
}

}  // namespace arsp
