// Copyright 2026 The ARSP Authors.
//
// MWTT — the "any space-partitioning tree" remark of §III-B made concrete:
// the kd-ASP* state machine over a multi-way tree that splits each node
// into `fanout` equal slabs along its widest mapped dimension (the
// one-dimensional STR discipline R-trees use for bulk loading). Sits
// between KDTT+ (fanout 2) and QDTT+ (fanout 2^{d'}) and lets the ablation
// benchmarks sweep the partitioning trade-off explicitly.

#ifndef ARSP_CORE_MWTT_ALGORITHM_H_
#define ARSP_CORE_MWTT_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Options for the multi-way tree traversal.
struct MwttOptions {
  /// Children per node (≥ 2). 2 reproduces KDTT+'s shape with slab splits.
  int fanout = 8;
};

/// Computes ARSP with the multi-way tree traversal (construction fused
/// with the pre-order traversal, like KDTT+).
ArspResult ComputeArspMwtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const MwttOptions& options = {});

}  // namespace arsp

#endif  // ARSP_CORE_MWTT_ALGORITHM_H_
