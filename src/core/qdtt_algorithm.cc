// Copyright 2026 The ARSP Authors.

#include "src/core/qdtt_algorithm.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/parallel_traversal.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;
using internal::GoalChannel;
using internal::ParallelExecutor;
using internal::PathChain;
using internal::TraversalLane;

// Runs over the context's SoA score storage; see KdAspRunner for the
// conventions (row index == local instance id, view-local object ids) and
// for the frontier-spawning parallel scheme — here each non-empty quadrant
// chunk at the frontier becomes one task.
class QuadAspRunner {
 public:
  QuadAspRunner(ScoreSpan scores, double* probs, ParallelExecutor* executor,
                int frontier_depth)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        probs_(probs),
        executor_(executor),
        frontier_depth_(frontier_depth) {
    ARSP_CHECK_MSG(scores_.n == 0 || dim_ <= 63,
                   "QDTT+ quadrant codes support at most 63 mapped "
                   "dimensions; use KDTT+ or B&B for larger vertex sets");
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run(TraversalLane& lane) {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    Recurse(lane, 0, scores_.n, candidates, 1, nullptr);
  }

 private:
  uint64_t QuadrantCode(const double* p, const double* center) const {
    uint64_t code = 0;
    for (int k = 0; k < dim_; ++k) {
      code = (code << 1) | (p[k] > center[k] ? 1u : 0u);
    }
    return code;
  }

  void Recurse(TraversalLane& lane, int begin, int end,
               const std::vector<int>& parent_candidates, int depth,
               const std::shared_ptr<const PathChain>& chain) {
    if (lane.SkipSubtree(order_, begin, end, depth)) return;
    ++lane.counters.nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    const bool capture = executor_ != nullptr && depth < frontier_depth_;
    std::vector<std::pair<int, double>> adds;
    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &lane.state, &kept, &undo_log,
                                  &lane.class_scratch, &lane.counters,
                                  capture ? &adds : nullptr);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), lane.state, probs_,
                                     &lane.counters, &lane.channel)) {
      // Partition the range into quadrants around the box center by sorting
      // on the quadrant code; only non-empty quadrants recurse (no 2^{d'}
      // allocation, though the fan-out still hurts in high dimensions).
      std::vector<double> center(static_cast<size_t>(dim_));
      for (int k = 0; k < dim_; ++k) {
        center[static_cast<size_t>(k)] =
            0.5 * (pmin[static_cast<size_t>(k)] + pmax[static_cast<size_t>(k)]);
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, &center](int a, int b) {
                  return QuadrantCode(scores_.row(a), center.data()) <
                         QuadrantCode(scores_.row(b), center.data());
                });
      const bool spawn = capture && depth + 1 == frontier_depth_;
      std::shared_ptr<const PathChain> node_chain;
      std::shared_ptr<const std::vector<int>> shared_kept;
      if (capture) {
        node_chain = std::make_shared<const PathChain>(chain, std::move(adds));
        if (spawn) {
          shared_kept =
              std::make_shared<const std::vector<int>>(std::move(kept));
        }
      }
      int chunk = begin;
      while (chunk < end) {
        const uint64_t code = QuadrantCode(
            scores_.row(order_[static_cast<size_t>(chunk)]), center.data());
        int chunk_end = chunk + 1;
        while (chunk_end < end &&
               QuadrantCode(scores_.row(order_[static_cast<size_t>(chunk_end)]),
                            center.data()) == code) {
          ++chunk_end;
        }
        if (spawn) {
          Spawn(node_chain, chunk, chunk_end, shared_kept);
        } else {
          Recurse(lane, chunk, chunk_end, kept, depth + 1, node_chain);
        }
        chunk = chunk_end;
      }
    }
    lane.state.Undo(undo_log);
  }

  void Spawn(const std::shared_ptr<const PathChain>& chain, int begin,
             int end, const std::shared_ptr<const std::vector<int>>& kept) {
    executor_->Spawn([this, chain, begin, end, kept](TraversalLane& lane) {
      if (lane.stopped) return;  // global goal-met: skip even the replay
      std::vector<AspTraversalState::Change> replay_log;
      chain->Replay(&lane.state, &replay_log);
      Recurse(lane, begin, end, *kept, frontier_depth_, nullptr);
      lane.state.Undo(replay_log);
    });
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  double* const probs_;  // result->instance_probs, disjoint subtree writes
  ParallelExecutor* const executor_;  // null = serial
  const int frontier_depth_;
};

class QdttSolver : public ArspSolver {
 public:
  const char* name() const override { return "qdtt+"; }
  const char* display_name() const override { return "QDTT+"; }
  const char* description() const override {
    return "quadtree traversal (2^d' quadrants per node), construction "
           "fused with pruning";
  }
  uint32_t capabilities() const override {
    return kCapExponentialInVertices | kCapGoalPushdown |
           kCapIntraQueryParallel;
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(
        options.ExpectOnly({"parallelism", "frontier_depth"}));
    ARSP_RETURN_IF_ERROR(
        internal::ReadParallelOptions(options, &parallelism_,
                                      &frontier_depth_));
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    GoalPruner* active = pruner.active() ? &pruner : nullptr;

    std::optional<internal::SharedGoalState> shared;
    std::optional<ParallelExecutor> executor;
    if (parallelism_ >= 2) {
      shared.emplace(active);
      executor.emplace(parallelism_, view.num_objects(), &*shared,
                       scores.objects);
      if (!executor->parallel()) {  // core budget granted a single worker
        executor.reset();
        shared.reset();
      }
    }
    if (executor.has_value()) {
      // Quadrant fan-out is at most 2^d' but usually far smaller; estimate
      // conservatively so auto depth lands near the task-count target.
      const int branch = std::min(8, 1 << std::min(scores.dim, 3));
      const int frontier =
          frontier_depth_ > 0
              ? frontier_depth_
              : internal::DefaultFrontierDepth(branch,
                                               executor->num_workers());
      QuadAspRunner runner(scores, result.instance_probs.data(), &*executor,
                           frontier);
      runner.Run(executor->main_lane());
      executor->RunAndWait();
      executor->MergedCounters().StoreInto(&result);
      result.tasks_spawned = executor->tasks_spawned();
      result.tasks_stolen = executor->tasks_stolen();
      result.parallel_workers = executor->num_workers();
    } else {
      TraversalLane lane(view.num_objects(), GoalChannel(active));
      QuadAspRunner runner(scores, result.instance_probs.data(), nullptr, 0);
      runner.Run(lane);
      lane.counters.StoreInto(&result);
    }
    pruner.Finish(&result);
    return result;
  }

 private:
  int parallelism_ = 1;
  int frontier_depth_ = 0;  // 0 = auto
};

ARSP_REGISTER_SOLVER(qdtt_plus, "qdtt+",
                     [] { return std::make_unique<QdttSolver>(); });

}  // namespace

namespace internal {
void LinkQdttSolver() {}
}  // namespace internal

ArspResult ComputeArspQdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region) {
  ExecutionContext context(dataset, region);
  return QdttSolver().Solve(context).value();
}

}  // namespace arsp
