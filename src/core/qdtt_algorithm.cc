// Copyright 2026 The ARSP Authors.

#include "src/core/qdtt_algorithm.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

class QuadAspRunner {
 public:
  QuadAspRunner(const std::vector<MappedInstance>& mapped, int num_objects,
                ArspResult* result)
      : mapped_(mapped),
        order_(mapped_.size()),
        state_(num_objects),
        result_(result) {
    ARSP_CHECK_MSG(mapped_.empty() || mapped_.front().point.dim() <= 63,
                   "QDTT+ quadrant codes support at most 63 mapped "
                   "dimensions; use KDTT+ or B&B for larger vertex sets");
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run() {
    if (mapped_.empty()) return;
    std::vector<int> candidates(order_);
    Recurse(0, static_cast<int>(mapped_.size()), candidates);
  }

 private:
  void ComputeCorners(int begin, int end, Point* pmin, Point* pmax) const {
    const int dim = mapped_.front().point.dim();
    *pmin = mapped_[static_cast<size_t>(order_[static_cast<size_t>(begin)])]
                .point;
    *pmax = *pmin;
    for (int i = begin + 1; i < end; ++i) {
      const Point& p =
          mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])].point;
      for (int k = 0; k < dim; ++k) {
        if (p[k] < (*pmin)[k]) (*pmin)[k] = p[k];
        if (p[k] > (*pmax)[k]) (*pmax)[k] = p[k];
      }
    }
  }

  uint64_t QuadrantCode(const Point& p, const Point& center) const {
    uint64_t code = 0;
    for (int k = 0; k < p.dim(); ++k) {
      code = (code << 1) | (p[k] > center[k] ? 1u : 0u);
    }
    return code;
  }

  bool HandleTerminal(const Point& pmin, const Point& pmax, int begin,
                      int end) {
    if (state_.chi() >= 2) {
      ++result_->nodes_pruned;
      return true;
    }
    if (state_.chi() == 1) {
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        if (mi.point == pmin) {
          result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
              state_.LeafProbability(mi.object, mi.prob);
        }
      }
      ++result_->nodes_pruned;
      return true;
    }
    if (pmin == pmax) {
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
            state_.LeafProbability(mi.object, mi.prob);
      }
      return true;
    }
    return false;
  }

  void Recurse(int begin, int end, const std::vector<int>& parent_candidates) {
    ++result_->nodes_visited;
    Point pmin, pmax;
    ComputeCorners(begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    for (int cid : parent_candidates) {
      const MappedInstance& mi = mapped_[static_cast<size_t>(cid)];
      ++result_->dominance_tests;
      if (DominatesWeak(mi.point, pmin)) {
        state_.Add(mi.object, mi.prob, &undo_log);
      } else if (DominatesWeak(mi.point, pmax)) {
        kept.push_back(cid);
      }
    }

    if (!HandleTerminal(pmin, pmax, begin, end)) {
      // Partition the range into quadrants around the box center by sorting
      // on the quadrant code; only non-empty quadrants recurse (no 2^{d'}
      // allocation, though the fan-out still hurts in high dimensions).
      Point center(pmin.dim());
      for (int k = 0; k < pmin.dim(); ++k) {
        center[k] = 0.5 * (pmin[k] + pmax[k]);
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, &center](int a, int b) {
                  return QuadrantCode(mapped_[static_cast<size_t>(a)].point,
                                      center) <
                         QuadrantCode(mapped_[static_cast<size_t>(b)].point,
                                      center);
                });
      int chunk = begin;
      while (chunk < end) {
        const uint64_t code = QuadrantCode(
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(chunk)])]
                .point,
            center);
        int chunk_end = chunk + 1;
        while (chunk_end < end &&
               QuadrantCode(
                   mapped_[static_cast<size_t>(
                               order_[static_cast<size_t>(chunk_end)])]
                       .point,
                   center) == code) {
          ++chunk_end;
        }
        Recurse(chunk, chunk_end, kept);
        chunk = chunk_end;
      }
    }
    state_.Undo(undo_log);
  }

  const std::vector<MappedInstance>& mapped_;
  std::vector<int> order_;
  AspTraversalState state_;
  ArspResult* result_;
};

class QdttSolver : public ArspSolver {
 public:
  const char* name() const override { return "qdtt+"; }
  const char* display_name() const override { return "QDTT+"; }
  const char* description() const override {
    return "quadtree traversal (2^d' quadrants per node), construction "
           "fused with pruning";
  }
  uint32_t capabilities() const override { return kCapExponentialInVertices; }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(context.dataset().num_instances()), 0.0);
    if (context.dataset().num_instances() == 0) return result;
    QuadAspRunner runner(context.mapped_instances(),
                         context.dataset().num_objects(), &result);
    runner.Run();
    return result;
  }
};

ARSP_REGISTER_SOLVER(qdtt_plus, "qdtt+",
                     [] { return std::make_unique<QdttSolver>(); });

}  // namespace

namespace internal {
void LinkQdttSolver() {}
}  // namespace internal

ArspResult ComputeArspQdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region) {
  ExecutionContext context(dataset, region);
  return QdttSolver().Solve(context).value();
}

}  // namespace arsp
