// Copyright 2026 The ARSP Authors.

#include "src/core/qdtt_algorithm.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

// Runs over the context's SoA score storage; see KdAspRunner for the
// conventions (row index == local instance id, view-local object ids).
class QuadAspRunner {
 public:
  QuadAspRunner(ScoreSpan scores, int num_objects, ArspResult* result,
                GoalPruner* pruner)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        state_(num_objects),
        result_(result),
        gate_(pruner, result) {
    ARSP_CHECK_MSG(scores_.n == 0 || dim_ <= 63,
                   "QDTT+ quadrant codes support at most 63 mapped "
                   "dimensions; use KDTT+ or B&B for larger vertex sets");
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run() {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    Recurse(0, scores_.n, candidates, 1);
  }

 private:
  uint64_t QuadrantCode(const double* p, const double* center) const {
    uint64_t code = 0;
    for (int k = 0; k < dim_; ++k) {
      code = (code << 1) | (p[k] > center[k] ? 1u : 0u);
    }
    return code;
  }

  void Recurse(int begin, int end, const std::vector<int>& parent_candidates,
               int depth) {
    if (gate_.Skip(order_, begin, end, depth)) return;
    ++result_->nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &state_, &kept, &undo_log,
                                  &class_scratch_, result_);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), state_, result_,
                                     gate_.pruner())) {
      // Partition the range into quadrants around the box center by sorting
      // on the quadrant code; only non-empty quadrants recurse (no 2^{d'}
      // allocation, though the fan-out still hurts in high dimensions).
      std::vector<double> center(static_cast<size_t>(dim_));
      for (int k = 0; k < dim_; ++k) {
        center[static_cast<size_t>(k)] =
            0.5 * (pmin[static_cast<size_t>(k)] + pmax[static_cast<size_t>(k)]);
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, &center](int a, int b) {
                  return QuadrantCode(scores_.row(a), center.data()) <
                         QuadrantCode(scores_.row(b), center.data());
                });
      int chunk = begin;
      while (chunk < end) {
        const uint64_t code = QuadrantCode(
            scores_.row(order_[static_cast<size_t>(chunk)]), center.data());
        int chunk_end = chunk + 1;
        while (chunk_end < end &&
               QuadrantCode(scores_.row(order_[static_cast<size_t>(chunk_end)]),
                            center.data()) == code) {
          ++chunk_end;
        }
        Recurse(chunk, chunk_end, kept, depth + 1);
        chunk = chunk_end;
      }
    }
    state_.Undo(undo_log);
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  std::vector<unsigned char> class_scratch_;  // FilterAspCandidates batches
  AspTraversalState state_;
  ArspResult* result_;
  internal::GoalGate gate_;
};

class QdttSolver : public ArspSolver {
 public:
  const char* name() const override { return "qdtt+"; }
  const char* display_name() const override { return "QDTT+"; }
  const char* description() const override {
    return "quadtree traversal (2^d' quadrants per node), construction "
           "fused with pruning";
  }
  uint32_t capabilities() const override {
    return kCapExponentialInVertices | kCapGoalPushdown;
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    QuadAspRunner runner(scores, view.num_objects(), &result,
                         pruner.active() ? &pruner : nullptr);
    runner.Run();
    pruner.Finish(&result);
    return result;
  }
};

ARSP_REGISTER_SOLVER(qdtt_plus, "qdtt+",
                     [] { return std::make_unique<QdttSolver>(); });

}  // namespace

namespace internal {
void LinkQdttSolver() {}
}  // namespace internal

ArspResult ComputeArspQdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region) {
  ExecutionContext context(dataset, region);
  return QdttSolver().Solve(context).value();
}

}  // namespace arsp
