// Copyright 2026 The ARSP Authors.

#include "src/core/mwtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

// Runs over the context's SoA score storage; see KdAspRunner for the
// conventions (row index == local instance id, view-local object ids).
class MultiWayAspRunner {
 public:
  MultiWayAspRunner(ScoreSpan scores, int num_objects, int fanout,
                    ArspResult* result, GoalPruner* pruner)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        fanout_(fanout),
        state_(num_objects),
        result_(result),
        gate_(pruner, result) {
    ARSP_CHECK_MSG(fanout >= 2, "MWTT fanout must be >= 2 (got %d)", fanout);
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run() {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    Recurse(0, scores_.n, candidates, 1);
  }

 private:
  void Recurse(int begin, int end, const std::vector<int>& parent_candidates,
               int depth) {
    if (gate_.Skip(order_, begin, end, depth)) return;
    ++result_->nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &state_, &kept, &undo_log,
                                  &class_scratch_, result_);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), state_, result_,
                                     gate_.pruner())) {
      // Sort the range along the widest dimension and recurse on `fanout`
      // equal slabs (1-D STR slicing). Slabs inherit small extents on the
      // split dimension, improving min-corner dominance tests.
      int split_dim = 0;
      double widest = -1.0;
      for (int k = 0; k < dim_; ++k) {
        if (pmax[static_cast<size_t>(k)] - pmin[static_cast<size_t>(k)] >
            widest) {
          widest = pmax[static_cast<size_t>(k)] - pmin[static_cast<size_t>(k)];
          split_dim = k;
        }
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, split_dim](int a, int b) {
                  return scores_.row(a)[split_dim] <
                         scores_.row(b)[split_dim];
                });
      const int total = end - begin;
      const int slab = std::max(1, (total + fanout_ - 1) / fanout_);
      for (int chunk = begin; chunk < end; chunk += slab) {
        Recurse(chunk, std::min(end, chunk + slab), kept, depth + 1);
      }
    }
    state_.Undo(undo_log);
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  std::vector<unsigned char> class_scratch_;  // FilterAspCandidates batches
  const int fanout_;
  AspTraversalState state_;
  ArspResult* result_;
  internal::GoalGate gate_;
};

class MwttSolver : public ArspSolver {
 public:
  explicit MwttSolver(int fanout = MwttOptions{}.fanout) : fanout_(fanout) {}

  const char* name() const override { return "mwtt"; }
  const char* display_name() const override { return "MWTT"; }
  const char* description() const override {
    return "multi-way tree traversal (equal slabs along the widest mapped "
           "dimension); option fanout=N";
  }
  uint32_t capabilities() const override { return kCapGoalPushdown; }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(options.ExpectOnly({"fanout"}));
    StatusOr<int64_t> fanout = options.IntOr("fanout", fanout_);
    if (!fanout.ok()) return fanout.status();
    if (*fanout < 2) {
      return Status::InvalidArgument("mwtt fanout must be >= 2, got " +
                                     std::to_string(*fanout));
    }
    fanout_ = static_cast<int>(*fanout);
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    MultiWayAspRunner runner(scores, view.num_objects(), fanout_,
                             &result, pruner.active() ? &pruner : nullptr);
    runner.Run();
    pruner.Finish(&result);
    return result;
  }

 private:
  int fanout_;
};

ARSP_REGISTER_SOLVER(mwtt, "mwtt",
                     [] { return std::make_unique<MwttSolver>(); });

}  // namespace

namespace internal {
void LinkMwttSolver() {}
}  // namespace internal

ArspResult ComputeArspMwtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const MwttOptions& options) {
  ExecutionContext context(dataset, region);
  return MwttSolver(options.fanout).Solve(context).value();
}

}  // namespace arsp
