// Copyright 2026 The ARSP Authors.

#include "src/core/mwtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/asp_traversal_state.h"
#include "src/core/parallel_traversal.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;
using internal::GoalChannel;
using internal::ParallelExecutor;
using internal::PathChain;
using internal::TraversalLane;

// Runs over the context's SoA score storage; see KdAspRunner for the
// conventions (row index == local instance id, view-local object ids) and
// for the frontier-spawning parallel scheme — here each slab at the
// frontier becomes one task.
class MultiWayAspRunner {
 public:
  MultiWayAspRunner(ScoreSpan scores, int fanout, double* probs,
                    ParallelExecutor* executor, int frontier_depth)
      : scores_(scores),
        dim_(scores.dim),
        order_(static_cast<size_t>(scores.n)),
        fanout_(fanout),
        probs_(probs),
        executor_(executor),
        frontier_depth_(frontier_depth) {
    ARSP_CHECK_MSG(fanout >= 2, "MWTT fanout must be >= 2 (got %d)", fanout);
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run(TraversalLane& lane) {
    if (scores_.n == 0) return;
    std::vector<int> candidates(order_);
    Recurse(lane, 0, scores_.n, candidates, 1, nullptr);
  }

 private:
  void Recurse(TraversalLane& lane, int begin, int end,
               const std::vector<int>& parent_candidates, int depth,
               const std::shared_ptr<const PathChain>& chain) {
    if (lane.SkipSubtree(order_, begin, end, depth)) return;
    ++lane.counters.nodes_visited;
    std::vector<double> pmin, pmax;
    internal::ComputeScoreCorners(scores_, order_, begin, end, &pmin, &pmax);

    const bool capture = executor_ != nullptr && depth < frontier_depth_;
    std::vector<std::pair<int, double>> adds;
    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    internal::FilterAspCandidates(scores_, parent_candidates, pmin.data(),
                                  pmax.data(), &lane.state, &kept, &undo_log,
                                  &lane.class_scratch, &lane.counters,
                                  capture ? &adds : nullptr);

    if (!internal::HandleAspTerminal(scores_, order_, begin, end, pmin.data(),
                                     pmax.data(), lane.state, probs_,
                                     &lane.counters, &lane.channel)) {
      // Sort the range along the widest dimension and recurse on `fanout`
      // equal slabs (1-D STR slicing). Slabs inherit small extents on the
      // split dimension, improving min-corner dominance tests.
      int split_dim = 0;
      double widest = -1.0;
      for (int k = 0; k < dim_; ++k) {
        if (pmax[static_cast<size_t>(k)] - pmin[static_cast<size_t>(k)] >
            widest) {
          widest = pmax[static_cast<size_t>(k)] - pmin[static_cast<size_t>(k)];
          split_dim = k;
        }
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, split_dim](int a, int b) {
                  return scores_.row(a)[split_dim] <
                         scores_.row(b)[split_dim];
                });
      const int total = end - begin;
      const int slab = std::max(1, (total + fanout_ - 1) / fanout_);
      const bool spawn = capture && depth + 1 == frontier_depth_;
      std::shared_ptr<const PathChain> node_chain;
      std::shared_ptr<const std::vector<int>> shared_kept;
      if (capture) {
        node_chain = std::make_shared<const PathChain>(chain, std::move(adds));
        if (spawn) {
          shared_kept =
              std::make_shared<const std::vector<int>>(std::move(kept));
        }
      }
      for (int chunk = begin; chunk < end; chunk += slab) {
        const int chunk_end = std::min(end, chunk + slab);
        if (spawn) {
          Spawn(node_chain, chunk, chunk_end, shared_kept);
        } else {
          Recurse(lane, chunk, chunk_end, kept, depth + 1, node_chain);
        }
      }
    }
    lane.state.Undo(undo_log);
  }

  void Spawn(const std::shared_ptr<const PathChain>& chain, int begin,
             int end, const std::shared_ptr<const std::vector<int>>& kept) {
    executor_->Spawn([this, chain, begin, end, kept](TraversalLane& lane) {
      if (lane.stopped) return;  // global goal-met: skip even the replay
      std::vector<AspTraversalState::Change> replay_log;
      chain->Replay(&lane.state, &replay_log);
      Recurse(lane, begin, end, *kept, frontier_depth_, nullptr);
      lane.state.Undo(replay_log);
    });
  }

  const ScoreSpan scores_;
  const int dim_;
  std::vector<int> order_;
  const int fanout_;
  double* const probs_;  // result->instance_probs, disjoint subtree writes
  ParallelExecutor* const executor_;  // null = serial
  const int frontier_depth_;
};

class MwttSolver : public ArspSolver {
 public:
  explicit MwttSolver(int fanout = MwttOptions{}.fanout) : fanout_(fanout) {}

  const char* name() const override { return "mwtt"; }
  const char* display_name() const override { return "MWTT"; }
  const char* description() const override {
    return "multi-way tree traversal (equal slabs along the widest mapped "
           "dimension); option fanout=N";
  }
  uint32_t capabilities() const override {
    return kCapGoalPushdown | kCapIntraQueryParallel;
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(
        options.ExpectOnly({"fanout", "parallelism", "frontier_depth"}));
    StatusOr<int64_t> fanout = options.IntOr("fanout", fanout_);
    if (!fanout.ok()) return fanout.status();
    if (*fanout < 2) {
      return Status::InvalidArgument("mwtt fanout must be >= 2, got " +
                                     std::to_string(*fanout));
    }
    fanout_ = static_cast<int>(*fanout);
    ARSP_RETURN_IF_ERROR(
        internal::ReadParallelOptions(options, &parallelism_,
                                      &frontier_depth_));
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    const DatasetView& view = context.view();
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(view.num_instances()), 0.0);
    if (view.num_instances() == 0) return result;
    const ScoreSpan scores = context.scores();
    GoalPruner pruner(context.goal(), view, &scores);
    GoalPruner* active = pruner.active() ? &pruner : nullptr;

    std::optional<internal::SharedGoalState> shared;
    std::optional<ParallelExecutor> executor;
    if (parallelism_ >= 2) {
      shared.emplace(active);
      executor.emplace(parallelism_, view.num_objects(), &*shared,
                       scores.objects);
      if (!executor->parallel()) {  // core budget granted a single worker
        executor.reset();
        shared.reset();
      }
    }
    if (executor.has_value()) {
      const int frontier =
          frontier_depth_ > 0
              ? frontier_depth_
              : internal::DefaultFrontierDepth(fanout_,
                                               executor->num_workers());
      MultiWayAspRunner runner(scores, fanout_, result.instance_probs.data(),
                               &*executor, frontier);
      runner.Run(executor->main_lane());
      executor->RunAndWait();
      executor->MergedCounters().StoreInto(&result);
      result.tasks_spawned = executor->tasks_spawned();
      result.tasks_stolen = executor->tasks_stolen();
      result.parallel_workers = executor->num_workers();
    } else {
      TraversalLane lane(view.num_objects(), GoalChannel(active));
      MultiWayAspRunner runner(scores, fanout_, result.instance_probs.data(),
                               nullptr, 0);
      runner.Run(lane);
      lane.counters.StoreInto(&result);
    }
    pruner.Finish(&result);
    return result;
  }

 private:
  int fanout_;
  int parallelism_ = 1;
  int frontier_depth_ = 0;  // 0 = auto
};

ARSP_REGISTER_SOLVER(mwtt, "mwtt",
                     [] { return std::make_unique<MwttSolver>(); });

}  // namespace

namespace internal {
void LinkMwttSolver() {}
}  // namespace internal

ArspResult ComputeArspMwtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const MwttOptions& options) {
  ExecutionContext context(dataset, region);
  return MwttSolver(options.fanout).Solve(context).value();
}

}  // namespace arsp
