// Copyright 2026 The ARSP Authors.

#include "src/core/mwtt_algorithm.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/core/asp_traversal_state.h"
#include "src/core/solver.h"
#include "src/prefs/score_mapper.h"

namespace arsp {

namespace {

using internal::AspTraversalState;

class MultiWayAspRunner {
 public:
  MultiWayAspRunner(const std::vector<MappedInstance>& mapped,
                    int num_objects, int fanout, ArspResult* result)
      : mapped_(mapped),
        order_(mapped_.size()),
        fanout_(fanout),
        state_(num_objects),
        result_(result) {
    ARSP_CHECK_MSG(fanout >= 2, "MWTT fanout must be >= 2 (got %d)", fanout);
    std::iota(order_.begin(), order_.end(), 0);
  }

  void Run() {
    if (mapped_.empty()) return;
    std::vector<int> candidates(order_);
    Recurse(0, static_cast<int>(mapped_.size()), candidates);
  }

 private:
  void ComputeCorners(int begin, int end, Point* pmin, Point* pmax) const {
    const int dim = mapped_.front().point.dim();
    *pmin = mapped_[static_cast<size_t>(order_[static_cast<size_t>(begin)])]
                .point;
    *pmax = *pmin;
    for (int i = begin + 1; i < end; ++i) {
      const Point& p =
          mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])].point;
      for (int k = 0; k < dim; ++k) {
        if (p[k] < (*pmin)[k]) (*pmin)[k] = p[k];
        if (p[k] > (*pmax)[k]) (*pmax)[k] = p[k];
      }
    }
  }

  bool HandleTerminal(const Point& pmin, const Point& pmax, int begin,
                      int end) {
    if (state_.chi() >= 2) {
      ++result_->nodes_pruned;
      return true;
    }
    if (state_.chi() == 1) {
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        if (mi.point == pmin) {
          result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
              state_.LeafProbability(mi.object, mi.prob);
        }
      }
      ++result_->nodes_pruned;
      return true;
    }
    if (pmin == pmax) {
      for (int i = begin; i < end; ++i) {
        const MappedInstance& mi =
            mapped_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
        result_->instance_probs[static_cast<size_t>(mi.instance_id)] =
            state_.LeafProbability(mi.object, mi.prob);
      }
      return true;
    }
    return false;
  }

  void Recurse(int begin, int end, const std::vector<int>& parent_candidates) {
    ++result_->nodes_visited;
    Point pmin, pmax;
    ComputeCorners(begin, end, &pmin, &pmax);

    std::vector<int> kept;
    std::vector<AspTraversalState::Change> undo_log;
    for (int cid : parent_candidates) {
      const MappedInstance& mi = mapped_[static_cast<size_t>(cid)];
      ++result_->dominance_tests;
      if (DominatesWeak(mi.point, pmin)) {
        state_.Add(mi.object, mi.prob, &undo_log);
      } else if (DominatesWeak(mi.point, pmax)) {
        kept.push_back(cid);
      }
    }

    if (!HandleTerminal(pmin, pmax, begin, end)) {
      // Sort the range along the widest dimension and recurse on `fanout`
      // equal slabs (1-D STR slicing). Slabs inherit small extents on the
      // split dimension, improving min-corner dominance tests.
      int split_dim = 0;
      double widest = -1.0;
      for (int k = 0; k < pmin.dim(); ++k) {
        if (pmax[k] - pmin[k] > widest) {
          widest = pmax[k] - pmin[k];
          split_dim = k;
        }
      }
      std::sort(order_.begin() + begin, order_.begin() + end,
                [this, split_dim](int a, int b) {
                  return mapped_[static_cast<size_t>(a)].point[split_dim] <
                         mapped_[static_cast<size_t>(b)].point[split_dim];
                });
      const int total = end - begin;
      const int slab = std::max(1, (total + fanout_ - 1) / fanout_);
      for (int chunk = begin; chunk < end; chunk += slab) {
        Recurse(chunk, std::min(end, chunk + slab), kept);
      }
    }
    state_.Undo(undo_log);
  }

  const std::vector<MappedInstance>& mapped_;
  std::vector<int> order_;
  const int fanout_;
  AspTraversalState state_;
  ArspResult* result_;
};

class MwttSolver : public ArspSolver {
 public:
  explicit MwttSolver(int fanout = MwttOptions{}.fanout) : fanout_(fanout) {}

  const char* name() const override { return "mwtt"; }
  const char* display_name() const override { return "MWTT"; }
  const char* description() const override {
    return "multi-way tree traversal (equal slabs along the widest mapped "
           "dimension); option fanout=N";
  }

  Status Configure(const SolverOptions& options) override {
    ARSP_RETURN_IF_ERROR(options.ExpectOnly({"fanout"}));
    StatusOr<int64_t> fanout = options.IntOr("fanout", fanout_);
    if (!fanout.ok()) return fanout.status();
    if (*fanout < 2) {
      return Status::InvalidArgument("mwtt fanout must be >= 2, got " +
                                     std::to_string(*fanout));
    }
    fanout_ = static_cast<int>(*fanout);
    return Status::OK();
  }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    ArspResult result;
    result.instance_probs.assign(
        static_cast<size_t>(context.dataset().num_instances()), 0.0);
    if (context.dataset().num_instances() == 0) return result;
    MultiWayAspRunner runner(context.mapped_instances(),
                             context.dataset().num_objects(), fanout_,
                             &result);
    runner.Run();
    return result;
  }

 private:
  int fanout_;
};

ARSP_REGISTER_SOLVER(mwtt, "mwtt",
                     [] { return std::make_unique<MwttSolver>(); });

}  // namespace

namespace internal {
void LinkMwttSolver() {}
}  // namespace internal

ArspResult ComputeArspMwtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const MwttOptions& options) {
  ExecutionContext context(dataset, region);
  return MwttSolver(options.fanout).Solve(context).value();
}

}  // namespace arsp
