// Copyright 2026 The ARSP Authors.
//
// LOOP (§III-A, second baseline): evaluate Eq. (3) directly. Instances are
// sorted by score under one vertex of the preference region, which
// guarantees that no instance is F-dominated by a successor; each instance
// is then tested against every candidate predecessor with the Theorem-2
// vertex test. O(c² + d d' n²).

#ifndef ARSP_CORE_LOOP_ALGORITHM_H_
#define ARSP_CORE_LOOP_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Computes ARSP with the quadratic sorted-scan baseline.
ArspResult ComputeArspLoop(const UncertainDataset& dataset,
                           const PreferenceRegion& region);

}  // namespace arsp

#endif  // ARSP_CORE_LOOP_ALGORITHM_H_
