// Copyright 2026 The ARSP Authors.

#include "src/core/ov_reduction.h"

#include "src/common/rng.h"

namespace arsp {

OvInstance MakeRandomOvInstance(int n, int dim, double density,
                                uint64_t seed) {
  ARSP_CHECK(n >= 1 && dim >= 1);
  Rng rng(seed);
  OvInstance ov;
  auto fill = [&](std::vector<std::vector<int>>* out) {
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<int> v(static_cast<size_t>(dim));
      for (int k = 0; k < dim; ++k) v[static_cast<size_t>(k)] =
          rng.Bernoulli(density) ? 1 : 0;
      out->push_back(std::move(v));
    }
  };
  fill(&ov.a);
  fill(&ov.b);
  return ov;
}

UncertainDataset BuildOvDataset(const OvInstance& ov) {
  ARSP_CHECK(!ov.a.empty() && !ov.b.empty());
  const int dim = static_cast<int>(ov.a.front().size());
  UncertainDatasetBuilder builder(dim);

  for (const std::vector<int>& b : ov.b) {
    ARSP_CHECK(static_cast<int>(b.size()) == dim);
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = static_cast<double>(b[
        static_cast<size_t>(k)]);
    builder.AddSingleton(std::move(p), 1.0);
  }

  std::vector<Point> xi;
  std::vector<double> probs;
  const double p_each = 1.0 / static_cast<double>(ov.a.size());
  for (const std::vector<int>& a : ov.a) {
    ARSP_CHECK(static_cast<int>(a.size()) == dim);
    Point p(dim);
    for (int k = 0; k < dim; ++k) {
      p[k] = a[static_cast<size_t>(k)] == 0 ? 1.5 : 0.5;
    }
    xi.push_back(std::move(p));
    probs.push_back(p_each);
  }
  builder.AddObject(std::move(xi), std::move(probs));

  auto dataset = builder.Build();
  ARSP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

bool OvPairExists(const ArspResult& result, const UncertainDataset& dataset) {
  const int ta = dataset.num_objects() - 1;  // T_A is the last object
  const auto [begin, end] = dataset.object_range(ta);
  for (int i = begin; i < end; ++i) {
    if (result.instance_probs[static_cast<size_t>(i)] <= kProbabilityEps) {
      return true;
    }
  }
  return false;
}

bool OvPairExistsBrute(const OvInstance& ov) {
  for (const auto& a : ov.a) {
    for (const auto& b : ov.b) {
      int dot = 0;
      for (size_t k = 0; k < a.size(); ++k) dot += a[k] * b[k];
      if (dot == 0) return true;
    }
  }
  return false;
}

}  // namespace arsp
