// Copyright 2026 The ARSP Authors.
//
// The fine-grained hardness reduction of Theorem 1: an Orthogonal Vectors
// instance (A, B ⊆ {0,1}^d) maps to an uncertain dataset such that a pair
// (a, b) with a·b = 0 exists iff some instance of the big object T_A has
// rskyline probability zero. Usable both as a correctness test of the ARSP
// algorithms and as an empirical illustration of the conditional lower
// bound (bench_ablations).

#ifndef ARSP_CORE_OV_REDUCTION_H_
#define ARSP_CORE_OV_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "src/core/arsp_result.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// A binary vector set pair for the Orthogonal Vectors problem.
struct OvInstance {
  std::vector<std::vector<int>> a;
  std::vector<std::vector<int>> b;
};

/// Draws |A| = |B| = n random vectors in {0,1}^d with 1-probability
/// `density`.
OvInstance MakeRandomOvInstance(int n, int dim, double density,
                                uint64_t seed);

/// Theorem-1 construction: one singleton object (p = 1) per b ∈ B, plus one
/// object T_A (the last object) whose instances are ξ(a) with
/// ξ(a)[i] = 3/2 if a[i] = 0 else 1/2, each with probability 1/|A|.
UncertainDataset BuildOvDataset(const OvInstance& ov);

/// Decodes the reduction: true iff some instance of T_A (the last object)
/// has zero rskyline probability in `result`.
bool OvPairExists(const ArspResult& result, const UncertainDataset& dataset);

/// Quadratic reference solver for Orthogonal Vectors.
bool OvPairExistsBrute(const OvInstance& ov);

}  // namespace arsp

#endif  // ARSP_CORE_OV_REDUCTION_H_
