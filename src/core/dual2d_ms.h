// Copyright 2026 The ARSP Authors.
//
// DUAL-MS specialized to d = 2 (§V-D, Fig. 7a): for a query instance t the
// two half-space probes of the reduction collapse into a single continuous
// angular range around t. Each other instance s becomes the angle of the
// vector s - t; the F-dominators of t under ratio range [l, h] are exactly
// the instances with angle in
//
//     [ π - arctan(l) ,  2π - arctan(h) ] .
//
// Preprocessing sorts, per instance, all other instances by angle and
// stores zero-aware prefix products of (1 - p(s)); a query is then two
// binary searches per instance. This is the paper's "polynomial
// preprocessing, sublinear per-instance query" trade-off, including its
// admitted quadratic memory cost — the reason Fig. 7(b) runs it only on
// IIP-scale data.
//
// Restriction (matching the paper's IIP experiment): every object has a
// single instance, so the per-object product of Eq. (3) is a per-instance
// product and composes into prefix products.

#ifndef ARSP_CORE_DUAL2D_MS_H_
#define ARSP_CORE_DUAL2D_MS_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"
#include "src/core/arsp_result.h"
#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Preprocessed angular structure answering ARSP queries for any ratio
/// range [l, h] in O(n log n) total (O(log n) per instance).
class Dual2dMs {
 public:
  /// Builds the structure. Requires dim == 2 and single-instance objects;
  /// refuses datasets whose quadratic index would exceed `max_memory_bytes`.
  static StatusOr<Dual2dMs> Build(const UncertainDataset& dataset,
                                  size_t max_memory_bytes = size_t{6} << 30);

  /// View variant (the Fig. 7b m% sweeps build per-prefix structures
  /// without materializing the prefix); result rows are view-local ids.
  static StatusOr<Dual2dMs> Build(const DatasetView& view,
                                  size_t max_memory_bytes = size_t{6} << 30);

  /// Estimated index size for an n-instance dataset, in bytes.
  static size_t EstimateMemoryBytes(int num_instances);

  /// ARSP for the ratio range l ≤ ω[1]/ω[2] ≤ h.
  ArspResult Query(double ratio_lo, double ratio_hi) const;

  /// Actual index size in bytes.
  size_t MemoryBytes() const;

 private:
  struct PerInstance {
    double prob = 0.0;
    std::vector<double> angles;      // sorted, one per foreign instance
    // Σ log(1-p) over non-certain factors: log-space keeps thousands of
    // survival factors from underflowing to 0/0 in a ratio of products.
    std::vector<double> prefix_logs;
    std::vector<int> prefix_zeros;   // count of (1-p) ≈ 0 factors
  };

  explicit Dual2dMs(std::vector<PerInstance> table)
      : table_(std::move(table)) {}

  std::vector<PerInstance> table_;
};

}  // namespace arsp

#endif  // ARSP_CORE_DUAL2D_MS_H_
