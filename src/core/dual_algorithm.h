// Copyright 2026 The ARSP Authors.
//
// DUAL (§IV-A): under weight ratio constraints, finding the instances that
// F-dominate t reduces to 2^{d-1} half-space reporting problems — one per
// orthant of the space partitioned by the axis hyperplanes through t, each
// with the query hyperplane h_{t,k} of Eq. (6).
//
// The paper serves these queries with Meiser point location over hyperplane
// arrangements (Theorem 6), which it itself calls "inherently theoretical"
// (O(n^{d+ε}) space). We substitute a kd-tree: each probe intersects an
// orthant box with the half-space below h_{t,k} and reports the per-object
// probability mass. The query pattern (2^{d-1} probes per instance) and the
// reduction are exactly the paper's; see DESIGN.md "Substitutions".

#ifndef ARSP_CORE_DUAL_ALGORITHM_H_
#define ARSP_CORE_DUAL_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/geometry/hyperplane.h"
#include "src/prefs/weight_ratio.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Computes ARSP under weight ratio constraints via the half-space
/// reporting reduction.
ArspResult ComputeArspDual(const UncertainDataset& dataset,
                           const WeightRatioConstraints& wr);

/// Builds the Eq. (6) hyperplane h_{t,k} for query instance t and region
/// code k (bit i of k = 1 iff s[i] ≥ t[i] in that region). Exposed for
/// tests and for the eclipse DUAL-S algorithm.
Hyperplane MakeRegionHyperplane(const Point& t, int region_code,
                                const WeightRatioConstraints& wr);

}  // namespace arsp

#endif  // ARSP_CORE_DUAL_ALGORITHM_H_
