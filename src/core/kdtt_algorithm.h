// Copyright 2026 The ARSP Authors.
//
// KDTT / KDTT+ (§III-B, Algorithm 1): map instances to the d'-dimensional
// score space SV(·), where F-dominance becomes coordinate dominance
// (Theorem 2), then run the kd-ASP* traversal to compute all skyline
// probabilities of the mapped dataset. Time O(c² + d d' n + n^{2-1/d'}).
//
// KDTT first builds the whole kd-tree and then traverses it (the structure
// of Afshani et al. [12]); KDTT+ fuses construction into the pre-order
// traversal so that pruned subtrees are never even built.

#ifndef ARSP_CORE_KDTT_ALGORITHM_H_
#define ARSP_CORE_KDTT_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Options for the kd-traversal family.
struct KdttOptions {
  /// true = KDTT+ (construction fused with traversal; pruned subtrees are
  /// not built); false = KDTT (build the full tree, then traverse).
  bool integrated = true;
};

/// Computes ARSP with the kd-tree traversal algorithm.
ArspResult ComputeArspKdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region,
                           const KdttOptions& options = {});

}  // namespace arsp

#endif  // ARSP_CORE_KDTT_ALGORITHM_H_
