// Copyright 2026 The ARSP Authors.

#include "src/core/certain_rskyline.h"

#include <algorithm>
#include <numeric>

#include "src/prefs/fdominance.h"

namespace arsp {

std::vector<int> ComputeSkyline(const std::vector<Point>& points) {
  const int n = static_cast<int>(points.size());
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Sorting by coordinate sum guarantees a dominator precedes (or ties with)
  // everything it strictly dominates.
  std::vector<double> keys(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < points[static_cast<size_t>(i)].dim(); ++k) {
      keys[static_cast<size_t>(i)] += points[static_cast<size_t>(i)][k];
    }
  }
  std::sort(order.begin(), order.end(), [&keys](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });

  std::vector<int> skyline;
  for (int idx : order) {
    bool dominated = false;
    for (int s : skyline) {
      if (DominatesStrict(points[static_cast<size_t>(s)],
                          points[static_cast<size_t>(idx)])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<int> ComputeRskyline(const std::vector<Point>& points,
                                 const PreferenceRegion& region) {
  const int n = static_cast<int>(points.size());
  const std::vector<Point>& vertices = region.vertices();
  const Point& omega = vertices.front();

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> keys(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys[static_cast<size_t>(i)] = Score(omega, points[static_cast<size_t>(i)]);
  }
  std::sort(order.begin(), order.end(), [&keys](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });

  std::vector<int> result;
  for (int pos = 0; pos < n; ++pos) {
    const int idx = order[static_cast<size_t>(pos)];
    bool dominated = false;
    // Any F-dominator scores ≤ under ω, so it lies at an earlier position
    // or inside the equal-score group around pos.
    for (int prev = 0; prev < n && !dominated; ++prev) {
      if (prev == pos) continue;
      const int sid = order[static_cast<size_t>(prev)];
      if (keys[static_cast<size_t>(sid)] > keys[static_cast<size_t>(idx)]) {
        break;  // sorted: everything later scores strictly higher
      }
      dominated = FDominatesVertex(points[static_cast<size_t>(sid)],
                                   points[static_cast<size_t>(idx)], vertices);
    }
    if (!dominated) result.push_back(idx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace arsp
