// Copyright 2026 The ARSP Authors.

#include "src/core/arsp_result.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace arsp {

int CountNonZero(const ArspResult& result, double eps) {
  ARSP_CHECK_MSG(result.is_complete(),
                 "CountNonZero needs a complete result; this one was pruned "
                 "for a goal");
  int count = 0;
  for (double p : result.instance_probs) {
    if (p > eps) ++count;
  }
  return count;
}

std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const UncertainDataset& dataset) {
  return ObjectProbabilities(result, DatasetView(dataset));
}

std::vector<double> ObjectProbabilities(const ArspResult& result,
                                        const DatasetView& view) {
  ARSP_CHECK_MSG(result.is_complete(),
                 "ObjectProbabilities needs a complete result; partial "
                 "(goal-pruned) results answer through AnswerGoal");
  ARSP_CHECK(static_cast<int>(result.instance_probs.size()) ==
             view.num_instances());
  std::vector<double> out(static_cast<size_t>(view.num_objects()), 0.0);
  for (int i = 0; i < view.num_instances(); ++i) {
    out[static_cast<size_t>(view.object_of(i))] +=
        result.instance_probs[static_cast<size_t>(i)];
  }
  return out;
}

std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const UncertainDataset& dataset, int k) {
  return TopKObjects(result, DatasetView(dataset), k);
}

std::vector<std::pair<int, double>> TopKObjects(
    const ArspResult& result, const DatasetView& view, int k) {
  std::vector<double> probs = ObjectProbabilities(result, view);
  std::vector<std::pair<int, double>> ranked;
  ranked.reserve(probs.size());
  for (int j = 0; j < view.num_objects(); ++j) {
    ranked.emplace_back(view.base_object_id(j), probs[static_cast<size_t>(j)]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (k >= 0 && static_cast<int>(ranked.size()) > k) ranked.resize(
      static_cast<size_t>(k));
  return ranked;
}

double MaxAbsDiff(const ArspResult& a, const ArspResult& b) {
  ARSP_CHECK(a.instance_probs.size() == b.instance_probs.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.instance_probs.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(a.instance_probs[i] - b.instance_probs[i]));
  }
  return worst;
}

}  // namespace arsp
