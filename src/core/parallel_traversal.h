// Copyright 2026 The ARSP Authors.
//
// Intra-query parallel traversal driver for the kd/quad/multi-way ASP
// solvers. The serial traversals are pre-order walks whose per-subtree work
// touches only (a) the subtree's slice of the shared `order` permutation,
// (b) the instance_probs entries of that slice, and (c) the lane-private
// (σ, β, χ) state — so a subtree is a self-contained work item once the
// root→subtree σ path has been replayed. The driver:
//
//  * splits the traversal at a *frontier depth* D: the walk above D runs on
//    the calling thread (lane 0) as in serial, and every child subtree at
//    depth D becomes one TaskArena task;
//  * hands each task a PathChain — the chain of per-node (object, prob)
//    Add-deltas from the root to the subtree — which the task replays into
//    its lane's state before descending. Replay performs the exact same
//    Add calls in the exact same order as the serial walk, and Add/Undo
//    are bitwise-exact, so the subtree computes bit-identical values no
//    matter which lane runs it;
//  * merges lanes at the end: instance probabilities need no merge at all
//    (disjoint writes — the canonical node-index order of the output array
//    IS the merge order), and counters are associative sums (see
//    TraversalCounters).
//
// Goal pushdown under parallelism flows through SharedGoalState (declared
// in asp_traversal_state.h, defined here): lanes buffer resolutions and
// flush them to the single authoritative GoalPruner under a lock; decided
// masks and the global early-exit flag come back as epoch-published
// snapshots that lanes poll between tasks. Monotone pruning only, so no
// torn decisions.

#ifndef ARSP_CORE_PARALLEL_TRAVERSAL_H_
#define ARSP_CORE_PARALLEL_TRAVERSAL_H_

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/task_arena.h"
#include "src/core/asp_traversal_state.h"

namespace arsp {
namespace internal {

/// Immutable chain of per-node Add-deltas from the traversal root down to
/// one frontier subtree. Nodes share their prefix (shared_ptr parent
/// links), so capturing a chain per frontier task costs only that node's
/// own deltas. Replay applies root-first — the serial Add order.
class PathChain {
 public:
  PathChain(std::shared_ptr<const PathChain> parent,
            std::vector<std::pair<int, double>> adds)
      : parent_(std::move(parent)), adds_(std::move(adds)) {}

  /// Re-applies every (object, prob) delta from the root to this node into
  /// `state`, logging into `undo_log` so the caller can unwind afterwards.
  void Replay(AspTraversalState* state,
              std::vector<AspTraversalState::Change>* undo_log) const {
    if (parent_ != nullptr) parent_->Replay(state, undo_log);
    for (const auto& add : adds_) {
      state->Add(add.first, add.second, undo_log);
    }
  }

 private:
  std::shared_ptr<const PathChain> parent_;
  std::vector<std::pair<int, double>> adds_;
};

/// Parses the shared "parallelism" / "frontier_depth" solver options into
/// the given fields (left untouched when absent, so solver defaults
/// survive). parallelism must be >= 1 (1 = serial); frontier_depth must be
/// 0 (auto) or in [2, 12]. Callers still list the keys in ExpectOnly —
/// alongside their solver-specific ones.
Status ReadParallelOptions(const SolverOptions& options, int* parallelism,
                           int* frontier_depth);

/// Frontier depth for a traversal with the given branching factor: the
/// smallest depth whose level holds at least kTaskFactor tasks per worker
/// (so steal-half has slack to balance irregular subtrees), clamped to
/// [2, 12] — at least one split level, at most ~4k tasks even for binary
/// trees.
int DefaultFrontierDepth(int branch_factor, int workers);

/// Per-worker multiplier in DefaultFrontierDepth's task-count target.
inline constexpr int kTaskFactor = 8;

/// Ties a TaskArena to one TraversalLane per worker. Lane 0 belongs to the
/// calling thread: the runner descends to the frontier on it (helpers
/// execute frontier tasks concurrently on lanes 1..W-1), and after the
/// descent unwinds, lane 0's pristine state lets the caller join task
/// execution in RunAndWait(). Construct once per solve; `parallel()` false
/// (budget granted a single worker) means callers should take their pure
/// serial path and skip task capture entirely.
class ParallelExecutor {
 public:
  /// `shared` may be null or inert (full goal): lanes then get inactive
  /// channels. `instance_objects` is the local instance → object map the
  /// buffered channels answer AllDecided from (may be null when `shared`
  /// is null/inert).
  ParallelExecutor(int requested_workers, int num_objects,
                   SharedGoalState* shared, const int* instance_objects)
      : arena_(requested_workers) {
    for (int w = 0; w < arena_.num_workers(); ++w) {
      lanes_.emplace_back(num_objects,
                          shared != nullptr && shared->active()
                              ? GoalChannel(shared, instance_objects)
                              : GoalChannel());
      lanes_.back().channel.BeginTask();
    }
  }

  bool parallel() const { return arena_.num_workers() >= 2; }
  int num_workers() const { return arena_.num_workers(); }

  /// The calling thread's lane; use it for the above-frontier descent.
  TraversalLane& main_lane() { return lanes_[0]; }

  /// Submits one subtree task. The wrapper refreshes the lane's goal
  /// snapshot before the body and flushes its buffered resolutions after,
  /// so a task is the unit of goal-state propagation.
  void Spawn(std::function<void(TraversalLane&)> body) {
    arena_.Submit([this, body = std::move(body)](int worker) {
      TraversalLane& lane = lanes_[static_cast<size_t>(worker)];
      lane.channel.BeginTask();
      body(lane);
      lane.channel.Flush();
    });
  }

  /// Runs every spawned task to completion (caller participates), then
  /// flushes lane 0 — the descent may have buffered resolutions too.
  void RunAndWait() {
    arena_.RunAndWait();
    lanes_[0].channel.Flush();
  }

  /// Lane-summed counters; call after RunAndWait(). Totals equal the
  /// serial run's (associative sums / max — see TraversalCounters).
  TraversalCounters MergedCounters() const {
    TraversalCounters total;
    for (const TraversalLane& lane : lanes_) total.MergeFrom(lane.counters);
    return total;
  }

  int64_t tasks_spawned() const { return arena_.tasks_spawned(); }
  int64_t tasks_stolen() const { return arena_.tasks_stolen(); }

 private:
  TaskArena arena_;
  // deque: lanes are neither movable nor copyable once workers hold
  // references, and only the constructor appends.
  std::deque<TraversalLane> lanes_;
};

}  // namespace internal
}  // namespace arsp

#endif  // ARSP_CORE_PARALLEL_TRAVERSAL_H_
