// Copyright 2026 The ARSP Authors.
//
// QDTT+ (§III-B, remark): the quadtree variant of Algorithm 1. Each node
// partitions its point set around the center of its bounding box into up to
// 2^{d'} quadrants, which yields smaller MBRs (and earlier pruning) in low
// dimensions but suffers when d' grows — exactly the trade-off the paper's
// Fig. 5 measures. Construction is fused with the pre-order traversal.

#ifndef ARSP_CORE_QDTT_ALGORITHM_H_
#define ARSP_CORE_QDTT_ALGORITHM_H_

#include "src/core/arsp_result.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Computes ARSP with the quadtree traversal algorithm (QDTT+).
ArspResult ComputeArspQdtt(const UncertainDataset& dataset,
                           const PreferenceRegion& region);

}  // namespace arsp

#endif  // ARSP_CORE_QDTT_ALGORITHM_H_
