// Copyright 2026 The ARSP Authors.

#include "src/core/dual_algorithm.h"

#include <memory>
#include <vector>

#include "src/core/solver.h"
#include "src/index/kdtree.h"

namespace arsp {

namespace {

// Vertical tolerance for the below-or-on test of Eq. (6); dominance at the
// boundary (h'(r*) = 0) is inclusive per Theorem 5.
constexpr double kBelowEps = 1e-9;

// Region code of s relative to t: bit i = 1 iff s[i] >= t[i] (the paper's
// "0 if less than t[i], 1 otherwise"). Raw rows straight out of the
// flattened kd-tree arena and the view's columnar storage.
int RegionCode(const double* s, const double* t, int d) {
  int code = 0;
  for (int i = 0; i < d - 1; ++i) {
    if (s[i] >= t[i]) code |= (1 << i);
  }
  return code;
}

ArspResult RunDual(ExecutionContext& context) {
  const DatasetView& view = context.view();
  const WeightRatioConstraints& wr = context.weight_ratios();
  const int d = wr.dim();
  const int n = view.num_instances();
  const int m = view.num_objects();

  ArspResult result;
  result.instance_probs.assign(static_cast<size_t>(n), 0.0);
  if (n == 0) return result;

  // Kd-tree over the original points, shared through the context. For a
  // derived view this is the parent's full-coverage tree (item ids are base
  // instance ids): probes filter hits through LocalInstanceOf and pass the
  // view's id_bound so all-delta subtrees are pruned without descent —
  // the prefix-reuse path that makes m% sweeps pay one tree build total.
  const KdTree& tree = context.instance_kdtree();
  const Mbr& bounds = tree.root_mbr();
  const int id_bound = view.id_bound();

  std::vector<double> sigma(static_cast<size_t>(m), 0.0);
  std::vector<int> touched;

  for (int ti = 0; ti < n; ++ti) {
    const double* t_row = view.coords(ti);
    const Point t_point = view.point(ti);
    const int t_object = view.object_of(ti);
    touched.clear();
    for (int k = 0; k < (1 << (d - 1)); ++k) {
      // Orthant box of region k, clipped to the indexed bounds (a superset
      // of the view's — exact, just looser clipping). Boxes of adjacent
      // regions share their boundary; the exact region-code check in the
      // visitor prevents double counting at s[i] == t[i].
      Point lo = bounds.min_corner();
      Point hi = bounds.max_corner();
      bool feasible = true;
      for (int i = 0; i < d - 1 && feasible; ++i) {
        if ((k >> i) & 1) {
          lo[i] = t_point[i];
          feasible = t_point[i] <= hi[i];
        } else {
          hi[i] = t_point[i];
          feasible = lo[i] <= t_point[i];
        }
      }
      if (!feasible) continue;
      const Mbr box(lo, hi);
      const Hyperplane plane = MakeRegionHyperplane(t_point, k, wr);

      ++result.index_probes;
      tree.ForEachInBoxBelow(
          box, plane, kBelowEps, id_bound, [&](const KdTree::EntryRef& item) {
            const int si = view.LocalInstanceOf(item.id);
            if (si < 0) return;  // outside the view (shared tree)
            const int s_object = view.object_of(si);
            if (s_object == t_object) return;
            if (RegionCode(item.coords, t_row, d) != k) return;
            ++result.dominance_tests;
            double& bucket = sigma[static_cast<size_t>(s_object)];
            if (bucket == 0.0) touched.push_back(s_object);
            bucket += item.weight;
          });
    }

    double prob = view.prob(ti);
    for (int j : touched) {
      const double sum = sigma[static_cast<size_t>(j)];
      if (sum >= 1.0 - kProbabilityEps) {
        prob = 0.0;
        break;
      }
      prob *= (1.0 - sum);
    }
    result.instance_probs[static_cast<size_t>(ti)] = prob;
    for (int j : touched) sigma[static_cast<size_t>(j)] = 0.0;
  }
  return result;
}

class DualSolver : public ArspSolver {
 public:
  const char* name() const override { return "dual"; }
  const char* display_name() const override { return "DUAL"; }
  const char* description() const override {
    return "half-space reporting reduction for weight ratio constraints "
           "(Eq. 6), served by kd-tree probes";
  }
  uint32_t capabilities() const override { return kCapRequiresWeightRatios; }

 protected:
  StatusOr<ArspResult> SolveImpl(ExecutionContext& context) override {
    return RunDual(context);
  }
};

ARSP_REGISTER_SOLVER(dual, "dual",
                     [] { return std::make_unique<DualSolver>(); });

}  // namespace

namespace internal {
void LinkDualSolver() {}
}  // namespace internal

Hyperplane MakeRegionHyperplane(const Point& t, int region_code,
                                const WeightRatioConstraints& wr) {
  const int d = wr.dim();
  // Eq. (6): x[d] = Σ_i c_i (t[i] - x[i]) + t[d] with c_i = l_i for bit 0
  // and h_i for bit 1. In the library's x[d] = coef·x - offset form:
  //   coef_i = -c_i,  offset = -(Σ_i c_i t[i] + t[d]).
  std::vector<double> coef(static_cast<size_t>(d - 1));
  double constant = t[d - 1];
  for (int i = 0; i < d - 1; ++i) {
    const double c = ((region_code >> i) & 1) ? wr.hi(i) : wr.lo(i);
    coef[static_cast<size_t>(i)] = -c;
    constant += c * t[i];
  }
  return Hyperplane(std::move(coef), -constant);
}

ArspResult ComputeArspDual(const UncertainDataset& dataset,
                           const WeightRatioConstraints& wr) {
  ExecutionContext context(dataset, wr);
  return DualSolver().Solve(context).value();
}

}  // namespace arsp
