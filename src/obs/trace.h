// Copyright 2026 The ARSP Authors.
//
// Per-request tracing: a Trace carries a 64-bit trace id and a tree of
// Spans (name, monotonic start/end nanoseconds, key=value annotations).
// One Trace is created per QueryRequest when the caller asks for it and
// threaded by pointer through engine → solver → (optionally) TaskArena.
//
// The zero-cost contract: a null Trace* — the default everywhere — makes
// every tracing call a no-op that performs no allocation and no clock
// read, so traced and untraced solves are bit-identical and the disabled
// path stays inside the perf gate. Instrumented code writes
//
//   obs::ScopedSpan span(trace, "solve");     // trace may be nullptr
//   span.Annotate("solver", name);            // no-op when disabled
//
// and never branches on enablement itself.
//
// Spans nest lexically: ScopedSpan opens a child of the innermost open
// span and closes it on destruction, so the open spans always form a
// stack rooted at the trace root. Only the innermost open span can gain
// children, which is what makes raw Span* stable while a span is open
// (closed siblings may move when a children vector grows; open ancestors
// never do).
//
// A Trace is single-threaded by design — one per request, used on the
// thread driving that request. TaskArena worker events go through the
// separate ChromeTraceWriter (ARSP_TRACE_FILE), which is thread-safe.
//
// Cross-process stitching: Span trees serialize to a compact byte string
// (SerializeSpans / DeserializeSpans) that rides in QueryResponseWire;
// the coordinator adopts each shard's subtree under its own scatter span.
// Timestamps are per-process monotonic clocks, so durations are exact
// within a process and the tree structure is exact across processes, but
// absolute offsets between processes are not comparable.

#ifndef ARSP_OBS_TRACE_H_
#define ARSP_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace arsp {
namespace obs {

/// One timed, named, annotated node in the trace tree.
struct Span {
  std::string name;
  uint64_t start_ns = 0;  // steady_clock, this process
  uint64_t end_ns = 0;    // 0 while open
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<Span> children;

  double DurationMs() const {
    return end_ns >= start_ns
               ? static_cast<double>(end_ns - start_ns) / 1e6
               : 0.0;
  }
};

class ScopedSpan;

/// A per-request trace. Construct with NewTraceId() (or a propagated id
/// from an upstream coordinator) to enable; pass nullptr where a Trace*
/// is expected to disable.
class Trace {
 public:
  /// Opens the root span ("request" unless named otherwise).
  explicit Trace(uint64_t trace_id, std::string root_name = "request");
  ~Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  uint64_t id() const { return id_; }

  /// Closes the root span (idempotent). Called automatically by the
  /// destructor; call earlier to stop the clock before rendering.
  void Finish();

  /// The root span; valid after Finish() (or any time for structure).
  const Span& root() const { return root_; }

  /// Adopts `subtree` as a child of the innermost open span — the
  /// coordinator stitching hook for deserialized shard spans.
  void AdoptChild(Span subtree);

  /// Annotates the innermost open span.
  void Annotate(const std::string& key, std::string value);

  /// Random 64-bit nonzero trace id.
  static uint64_t NewTraceId();

  /// Monotonic now in nanoseconds (process-local).
  static uint64_t NowNs();

 private:
  friend class ScopedSpan;

  Span* OpenChild(const char* name);
  void CloseTop(Span* span);

  uint64_t id_;
  Span root_;
  std::vector<Span*> open_;  // stack of open spans, open_[0] == &root_
};

/// RAII child span. All methods are no-ops when constructed with a null
/// trace — the zero-cost disabled mode.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name)
      : trace_(trace),
        span_(trace != nullptr ? trace->OpenChild(name) : nullptr) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->CloseTop(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(const std::string& key, std::string value) {
    if (span_ != nullptr) span_->annotations.emplace_back(key,
                                                          std::move(value));
  }
  void Annotate(const std::string& key, int64_t value) {
    if (span_ != nullptr) {
      span_->annotations.emplace_back(key, std::to_string(value));
    }
  }

  bool enabled() const { return span_ != nullptr; }

 private:
  Trace* trace_;
  Span* span_;
};

/// Serializes a list of span trees to the compact format carried in
/// QueryResponseWire (u8 format version, then a recursive length-prefixed
/// encoding).
std::string SerializeSpans(const std::vector<Span>& spans);
/// Inverse; returns false on malformed or truncated input (out is cleared).
bool DeserializeSpans(const std::string& bytes, std::vector<Span>* out);

/// Renders the span tree as an indented text timeline:
///   trace 1a2b3c4d5e6f7081
///     request                          12.41ms
///       cache_probe                     0.02ms  hit=false
///       solve                          11.80ms  solver=kdtt+
/// Offsets are relative to the outermost span of each process subtree.
std::string RenderSpanTree(const Span& root, uint64_t trace_id);

/// Appends the span tree (and, if recorded, TaskArena task events) to the
/// Chrome trace_event JSON file named by ARSP_TRACE_FILE. No-op when the
/// env var is unset. Each call writes one JSON array — load the file in
/// chrome://tracing or Perfetto after slicing out one array.
void MaybeWriteChromeTrace(const Span& root, uint64_t trace_id);

/// Thread-safe collector for TaskArena per-task events, active only when
/// ARSP_TRACE_FILE is set (checked once). TaskArena records one complete
/// event per executed task; MaybeWriteChromeTrace drains them into the
/// same file so the flamegraph shows the per-worker lanes under the query
/// spans.
class TaskEventSink {
 public:
  struct Event {
    uint64_t start_ns;
    uint64_t end_ns;
    int worker;
    bool stolen;
  };

  /// The process-global sink; enabled() is false unless ARSP_TRACE_FILE
  /// was set at first use.
  static TaskEventSink& Global();

  bool enabled() const { return enabled_; }
  void Record(const Event& event);
  /// Removes and returns everything recorded so far.
  std::vector<Event> Drain();

 private:
  TaskEventSink();
  bool enabled_;
  std::vector<Event> events_;
  // A plain mutex: the sink is off unless explicitly profiling.
  std::mutex mu_;
};

}  // namespace obs
}  // namespace arsp

#endif  // ARSP_OBS_TRACE_H_
