// Copyright 2026 The ARSP Authors.
//
// Process-global metrics registry: named counters, gauges, and fixed-bucket
// histograms with Prometheus text exposition. Dependency-free (no src/net,
// no src/core) so every layer can record without cycles.
//
// Hot-path contract: once a caller holds a Counter*/Gauge*/Histogram*, every
// increment/observe is lock-free — counters stripe their value across
// cache-line-padded atomic shards keyed by thread, histograms use one
// relaxed atomic per bucket. Only registration (name → instrument lookup)
// takes a lock, and even that is a shared_mutex read lock once the
// instrument exists. Instruments live for the process lifetime; pointers
// never dangle.
//
// Naming scheme (see ARCHITECTURE.md "Observability"): arsp_<noun>_<unit>
// with _total for counters, e.g. arsp_queries_total{solver="kdtt+",
// goal="topk",outcome="ok"}. Labels are baked into the instrument at
// lookup time — one instrument per label combination, exactly how the
// Prometheus client model works.

#ifndef ARSP_OBS_METRICS_H_
#define ARSP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace arsp {
namespace obs {

/// One (label name, label value) pair; vectors of these are sorted by name
/// at lookup so {a=1,b=2} and {b=2,a=1} resolve to the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter, striped across cache-line-padded atomic shards so
/// concurrent writers from different threads don't bounce one line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static size_t ShardIndex();
  Shard shards_[kShards];
};

/// Last-write-wins gauge (plus Add for up/down counts like live
/// connections).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration and
/// immutable after; Observe is a branchless-ish linear scan (bucket counts
/// are small — latency histograms here use ~14 bounds) plus three relaxed
/// atomic adds. Exposed in Prometheus cumulative-bucket form.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  /// Upper bounds, ascending; the implicit +Inf bucket is not included.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, bounds().size() + 1 entries (the
  /// last is the +Inf overflow bucket).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  /// Default latency bucket bounds in milliseconds: 0.25ms .. 8192ms,
  /// doubling — wide enough for both kernel-hot microqueries and 10M-row
  /// cold solves.
  static std::vector<double> LatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;
  std::atomic<uint64_t> count_{0};
  // Sum as fixed-point microunits so it can be a lock-free integer atomic.
  std::atomic<int64_t> sum_micros_{0};
};

/// The registry. Process-global via Global(); separate instances exist only
/// for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Finds or creates the instrument for (name, labels). The returned
  /// pointer is valid for the registry's lifetime. `help` is recorded the
  /// first time a family is seen.
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  /// `bounds` applies only on first creation of this (name, labels) series;
  /// later calls return the existing histogram regardless of bounds.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds,
                          const Labels& labels = {},
                          const std::string& help = "");

  /// Prometheus text exposition format, version 0.0.4: # HELP / # TYPE per
  /// family, one line per series, families and series in lexical order.
  std::string RenderPrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string label_text;  // rendered {k="v",...} or ""
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string help;
    std::map<std::string, Series> series;  // keyed by label_text
  };

  Series* FindOrCreate(const std::string& name, const Labels& labels,
                       const std::string& help, Kind kind,
                       std::vector<double>* bounds);

  mutable std::shared_mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace obs
}  // namespace arsp

#endif  // ARSP_OBS_METRICS_H_
