// Copyright 2026 The ARSP Authors.

#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>

namespace arsp {
namespace obs {

// -------------------------------------------------------------------- Trace

uint64_t Trace::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Trace::NewTraceId() {
  // Seeded once per process; a splitmix-style step per id keeps this cheap
  // and collision-free enough for correlating log lines.
  static std::atomic<uint64_t> state = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ull,
                               std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "no trace" on the wire
}

Trace::Trace(uint64_t trace_id, std::string root_name) : id_(trace_id) {
  root_.name = std::move(root_name);
  root_.start_ns = NowNs();
  open_.push_back(&root_);
}

Trace::~Trace() { Finish(); }

void Trace::Finish() {
  // Close everything still open, innermost first (normally just the root).
  while (!open_.empty()) {
    if (open_.back()->end_ns == 0) open_.back()->end_ns = NowNs();
    open_.pop_back();
  }
}

Span* Trace::OpenChild(const char* name) {
  if (open_.empty()) return nullptr;  // after Finish(): ignore late spans
  Span* parent = open_.back();
  parent->children.emplace_back();
  Span* child = &parent->children.back();
  child->name = name;
  child->start_ns = NowNs();
  open_.push_back(child);
  return child;
}

void Trace::CloseTop(Span* span) {
  if (span == nullptr || open_.empty()) return;
  // Lexical nesting guarantees LIFO closes; tolerate a mismatch (e.g. a
  // span outliving Finish) by only popping when it really is the top.
  if (open_.back() == span) {
    span->end_ns = NowNs();
    open_.pop_back();
  }
}

void Trace::AdoptChild(Span subtree) {
  if (open_.empty()) {
    root_.children.push_back(std::move(subtree));
  } else {
    open_.back()->children.push_back(std::move(subtree));
  }
}

void Trace::Annotate(const std::string& key, std::string value) {
  if (open_.empty()) return;
  open_.back()->annotations.emplace_back(key, std::move(value));
}

// ------------------------------------------------------------ serialization

namespace {

constexpr uint8_t kSpanFormatVersion = 1;
// A span tree from one request is small; this guards against garbage
// lengths in a corrupted frame, not real usage.
constexpr size_t kMaxSpanNodes = 1 << 16;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

void PutString(std::string* out, const std::string& s) {
  const uint16_t len =
      static_cast<uint16_t>(s.size() > 0xffff ? 0xffff : s.size());
  PutU16(out, len);
  out->append(s.data(), len);
}

void EncodeSpan(const Span& span, std::string* out) {
  PutString(out, span.name);
  PutU64(out, span.start_ns);
  PutU64(out, span.end_ns);
  PutU16(out, static_cast<uint16_t>(
                  span.annotations.size() > 0xffff ? 0xffff
                                                   : span.annotations.size()));
  size_t annotations = 0;
  for (const auto& [k, v] : span.annotations) {
    if (annotations++ == 0xffff) break;
    PutString(out, k);
    PutString(out, v);
  }
  PutU16(out, static_cast<uint16_t>(
                  span.children.size() > 0xffff ? 0xffff
                                                : span.children.size()));
  size_t children = 0;
  for (const Span& child : span.children) {
    if (children++ == 0xffff) break;
    EncodeSpan(child, out);
  }
}

struct SpanReader {
  const std::string& bytes;
  size_t pos = 0;
  size_t nodes = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || bytes.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    const uint16_t v =
        static_cast<uint16_t>(static_cast<uint8_t>(bytes[pos])) |
        static_cast<uint16_t>(static_cast<uint8_t>(bytes[pos + 1])) << 8;
    pos += 2;
    return v;
  }
  std::string Str() {
    const uint16_t len = U16();
    if (!Need(len)) return "";
    std::string s = bytes.substr(pos, len);
    pos += len;
    return s;
  }
  bool Decode(Span* span) {
    if (++nodes > kMaxSpanNodes) {
      ok = false;
      return false;
    }
    span->name = Str();
    span->start_ns = U64();
    span->end_ns = U64();
    const uint16_t annotations = U16();
    for (uint16_t i = 0; ok && i < annotations; ++i) {
      std::string k = Str();
      std::string v = Str();
      span->annotations.emplace_back(std::move(k), std::move(v));
    }
    const uint16_t children = U16();
    for (uint16_t i = 0; ok && i < children; ++i) {
      span->children.emplace_back();
      Decode(&span->children.back());
    }
    return ok;
  }
};

}  // namespace

std::string SerializeSpans(const std::vector<Span>& spans) {
  std::string out;
  out.push_back(static_cast<char>(kSpanFormatVersion));
  PutU16(&out, static_cast<uint16_t>(
                   spans.size() > 0xffff ? 0xffff : spans.size()));
  size_t count = 0;
  for (const Span& span : spans) {
    if (count++ == 0xffff) break;
    EncodeSpan(span, &out);
  }
  return out;
}

bool DeserializeSpans(const std::string& bytes, std::vector<Span>* out) {
  out->clear();
  if (bytes.empty() ||
      static_cast<uint8_t>(bytes[0]) != kSpanFormatVersion) {
    return false;
  }
  SpanReader reader{bytes, 1};
  const uint16_t count = reader.U16();
  for (uint16_t i = 0; reader.ok && i < count; ++i) {
    out->emplace_back();
    reader.Decode(&out->back());
  }
  if (!reader.ok || reader.pos != bytes.size()) {
    out->clear();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- rendering

namespace {

void RenderSpan(const Span& span, uint64_t base_ns, int depth,
                std::ostringstream* out) {
  // A serialized subtree from another process carries that process's
  // monotonic clock; restart the offset base at each clock domain (detected
  // as a child starting "before" the current base).
  if (span.start_ns < base_ns) base_ns = span.start_ns;
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%-*s %+9.3fms %8.3fms",
                2 * depth, "", std::max(1, 36 - 2 * depth),
                span.name.c_str(),
                static_cast<double>(span.start_ns - base_ns) / 1e6,
                span.DurationMs());
  *out << line;
  for (const auto& [k, v] : span.annotations) {
    *out << "  " << k << "=" << v;
  }
  *out << "\n";
  for (const Span& child : span.children) {
    RenderSpan(child, base_ns, depth + 1, out);
  }
}

}  // namespace

std::string RenderSpanTree(const Span& root, uint64_t trace_id) {
  std::ostringstream out;
  char header[64];
  std::snprintf(header, sizeof(header), "trace %016llx\n",
                static_cast<unsigned long long>(trace_id));
  out << header;
  RenderSpan(root, root.start_ns, 1, &out);
  return out.str();
}

// ------------------------------------------------------------- Chrome trace

TaskEventSink::TaskEventSink()
    : enabled_(std::getenv("ARSP_TRACE_FILE") != nullptr) {}

TaskEventSink& TaskEventSink::Global() {
  static auto* sink = new TaskEventSink();
  return *sink;
}

void TaskEventSink::Record(const Event& event) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  events_.push_back(event);
}

std::vector<TaskEventSink::Event> TaskEventSink::Drain() {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

namespace {

void EmitChromeSpan(const Span& span, uint64_t trace_id, FILE* f,
                    bool* first) {
  std::fprintf(
      f, "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
         "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":\"%016llx\"}}",
      *first ? "" : ",\n", span.name.c_str(),
      static_cast<double>(span.start_ns) / 1e3,
      static_cast<double>(span.end_ns - span.start_ns) / 1e3,
      static_cast<unsigned long long>(trace_id));
  *first = false;
  for (const Span& child : span.children) {
    EmitChromeSpan(child, trace_id, f, first);
  }
}

}  // namespace

void MaybeWriteChromeTrace(const Span& root, uint64_t trace_id) {
  const char* path = std::getenv("ARSP_TRACE_FILE");
  if (path == nullptr) return;
  FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot append ARSP_TRACE_FILE %s\n", path);
    return;
  }
  std::fprintf(f, "[");
  bool first = true;
  EmitChromeSpan(root, trace_id, f, &first);
  for (const TaskEventSink::Event& e : TaskEventSink::Global().Drain()) {
    std::fprintf(
        f, "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
           "\"ts\":%.3f,\"dur\":%.3f}",
        first ? "" : ",\n", e.stolen ? "task(stolen)" : "task", e.worker + 1,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.end_ns - e.start_ns) / 1e3);
    first = false;
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace obs
}  // namespace arsp
