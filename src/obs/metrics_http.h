// Copyright 2026 The ARSP Authors.
//
// MetricsHttpServer — a deliberately tiny HTTP/1.0-style listener serving
// exactly one resource: GET /metrics → the process MetricsRegistry in
// Prometheus text exposition format. Everything else is a 404. One accept
// thread handles scrapes serially (a scrape is a read-render-write of a few
// KB; Prometheus polls on the order of seconds, so concurrency buys
// nothing), every response closes the connection, and malformed or
// oversized request heads are dropped without parsing heroics.
//
// This is an operational side door, not a product API: arspd opens it only
// when --metrics-port is given, bound to the same loopback-by-default
// stance as the wire port. The wire METRICS message returns the same bytes
// for clients that already speak the protocol.

#ifndef ARSP_OBS_METRICS_HTTP_H_
#define ARSP_OBS_METRICS_HTTP_H_

#include <atomic>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace arsp {
namespace obs {

class MetricsRegistry;

class MetricsHttpServer {
 public:
  /// Serves `registry` (defaults to MetricsRegistry::Global() when null —
  /// the injection point exists for tests).
  explicit MetricsHttpServer(MetricsRegistry* registry = nullptr);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds host:port (port 0 = ephemeral; read it back via port()) and
  /// spawns the accept thread. Internal on bind/listen failure.
  Status Start(const std::string& host, int port);

  /// The bound TCP port; -1 before Start().
  int port() const { return port_; }

  /// Stops accepting and joins the accept thread. Idempotent; also run by
  /// the destructor.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeOne(int fd);

  MetricsRegistry* registry_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace obs
}  // namespace arsp

#endif  // ARSP_OBS_METRICS_HTTP_H_
