// Copyright 2026 The ARSP Authors.

#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

namespace arsp {
namespace obs {

namespace {

// %.17g round-trips doubles; trims to a clean integer rendering when exact.
std::string Num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(Labels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

// Inserts extra labels (for histogram `le`) into an already-rendered label
// text.
std::string WithLabel(const std::string& label_text, const std::string& key,
                      const std::string& value) {
  std::string pair = key + "=\"" + EscapeLabelValue(value) + "\"";
  if (label_text.empty()) return "{" + pair + "}";
  std::string out = label_text;
  out.insert(out.size() - 1, "," + pair);
  return out;
}

}  // namespace

// ------------------------------------------------------------------ Counter

size_t Counter::ShardIndex() {
  // A cheap thread-local stripe assignment: hash the thread id once.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return stripe % kShards;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // +Inf by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(v * 1e6),
                        std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    counts.push_back(bucket->load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::Sum() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

std::vector<double> Histogram::LatencyBucketsMs() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 8192.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// ----------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreate(
    const std::string& name, const Labels& labels, const std::string& help,
    Kind kind, std::vector<double>* bounds) {
  const std::string label_text = RenderLabels(labels);
  {
    std::shared_lock lock(mu_);
    auto fit = families_.find(name);
    if (fit != families_.end()) {
      auto sit = fit->second.series.find(label_text);
      if (sit != fit->second.series.end()) return &sit->second;
    }
  }
  std::unique_lock lock(mu_);
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  }
  Series& series = family.series[label_text];
  if (series.label_text.empty() && series.counter == nullptr &&
      series.gauge == nullptr && series.histogram == nullptr) {
    series.label_text = label_text;
    switch (family.kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(
            bounds != nullptr ? std::move(*bounds) : std::vector<double>{});
        break;
    }
  }
  return &series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kCounter, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kGauge, nullptr)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const Labels& labels,
                                         const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kHistogram, &bounds)
      ->histogram.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::shared_lock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    const char* type = family.kind == Kind::kCounter    ? "counter"
                       : family.kind == Kind::kGauge    ? "gauge"
                                                        : "histogram";
    out << "# TYPE " << name << " " << type << "\n";
    for (const auto& [label_text, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out << name << label_text << " " << series.counter->Value() << "\n";
          break;
        case Kind::kGauge:
          out << name << label_text << " " << series.gauge->Value() << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const std::vector<uint64_t> counts = h.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out << name << "_bucket"
                << WithLabel(label_text, "le", Num(h.bounds()[i])) << " "
                << cumulative << "\n";
          }
          cumulative += counts.back();
          out << name << "_bucket" << WithLabel(label_text, "le", "+Inf")
              << " " << cumulative << "\n";
          out << name << "_sum" << label_text << " " << Num(h.Sum()) << "\n";
          out << name << "_count" << label_text << " " << h.Count() << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace arsp
