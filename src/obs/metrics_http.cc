// Copyright 2026 The ARSP Authors.

#include "src/obs/metrics_http.h"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/obs/metrics.h"

namespace arsp {
namespace obs {

namespace {

// Request heads past this are dropped unread — /metrics needs ~20 bytes of
// request line, anything bigger is not a scraper.
constexpr size_t kMaxRequestHead = 8192;

// The Prometheus text exposition content type, format version 0.0.4.
constexpr char kContentType[] = "text/plain; version=0.0.4; charset=utf-8";

void WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; a scrape is best-effort
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                     "\r\nContent-Type: " + kContentType +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  return head + body;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {}

MetricsHttpServer::~MetricsHttpServer() { Shutdown(); }

Status MetricsHttpServer::Start(const std::string& host, int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("metrics server already started");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(port);
  const int gai =
      ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &resolved);
  if (gai != 0) {
    return Status::Internal("cannot resolve metrics bind address '" + host +
                            "': " + gai_strerror(gai));
  }
  int fd = -1;
  Status bind_status = Status::Internal("no usable address");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      bind_status = Status::OK();
      break;
    }
    bind_status = Status::Internal("metrics bind " + host + ":" + port_str +
                                   ": " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (!bind_status.ok()) return bind_status;

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeOne(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::ServeOne(int fd) {
  // Read the request head (up to the blank line). Scrapers send tiny
  // requests; a 2s receive timeout keeps a stuck peer from wedging the
  // single accept thread.
  timeval timeout{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxRequestHead) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  // "GET /metrics" or "GET /metrics?..." or "GET /metrics HTTP/1.1".
  const bool is_get = request_line.rfind("GET ", 0) == 0;
  std::string path;
  if (is_get) {
    const size_t path_end = request_line.find_first_of(" ?", 4);
    path = request_line.substr(4, path_end == std::string::npos
                                      ? std::string::npos
                                      : path_end - 4);
  }
  if (is_get && path == "/metrics") {
    WriteAll(fd, HttpResponse(200, "OK", registry_->RenderPrometheusText()));
  } else if (!is_get) {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed",
                              "only GET is supported\n"));
  } else {
    WriteAll(fd, HttpResponse(404, "Not Found", "try GET /metrics\n"));
  }
}

}  // namespace obs
}  // namespace arsp
