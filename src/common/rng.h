// Copyright 2026 The ARSP Authors.
//
// Deterministic random number generation. Every generator in the project
// (dataset synthesis, constraint sampling, test sweeps) goes through Rng so
// that experiments and tests are reproducible from a single seed.

#ifndef ARSP_COMMON_RNG_H_
#define ARSP_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace arsp {

/// Seeded pseudo-random generator with the distributions the paper's data
/// generation procedure needs (uniform, normal, integer ranges).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds yield equal streams.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double Uniform01() { return Uniform(0.0, 1.0); }

  /// Uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal draw clamped to [lo, hi] (the paper draws rectangle edge lengths
  /// from a normal restricted to a range).
  double ClampedNormal(double mean, double stddev, double lo, double hi) {
    double v = Normal(mean, stddev);
    if (v < lo) v = lo;
    if (v > hi) v = hi;
    return v;
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Underlying engine, for use with <random> utilities (e.g. shuffle).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace arsp

#endif  // ARSP_COMMON_RNG_H_
