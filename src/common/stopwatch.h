// Copyright 2026 The ARSP Authors.
//
// Wall-clock stopwatch used by the benchmark harness to separate
// preprocessing time from query time, mirroring the paper's reporting.

#ifndef ARSP_COMMON_STOPWATCH_H_
#define ARSP_COMMON_STOPWATCH_H_

#include <chrono>

namespace arsp {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  /// Starts (or restarts) timing.
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace arsp

#endif  // ARSP_COMMON_STOPWATCH_H_
