// Copyright 2026 The ARSP Authors.

#include "src/common/status.h"

namespace arsp {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace arsp
