// Copyright 2026 The ARSP Authors.

#include "src/common/task_arena.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "src/obs/trace.h"

namespace arsp {
namespace {

std::atomic<int> g_in_use{0};
std::atomic<int> g_total_override{0};  // testing hook; 0 = none

int ResolveTotal() {
  if (const char* env = std::getenv("ARSP_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int CoreBudget::Total() {
  int override_total = g_total_override.load(std::memory_order_relaxed);
  if (override_total > 0) return override_total;
  static const int kTotal = ResolveTotal();
  return kTotal;
}

void CoreBudget::Reserve(int n) {
  if (n > 0) g_in_use.fetch_add(n, std::memory_order_relaxed);
}

int CoreBudget::TryAcquire(int max_slots) {
  if (max_slots <= 0) return 0;
  int total = Total();
  int in_use = g_in_use.load(std::memory_order_relaxed);
  while (true) {
    int available = total - in_use;
    if (available <= 0) return 0;
    int want = available < max_slots ? available : max_slots;
    if (g_in_use.compare_exchange_weak(in_use, in_use + want,
                                       std::memory_order_relaxed)) {
      return want;
    }
    // in_use was reloaded by the failed CAS; retry with the fresh value.
  }
}

void CoreBudget::Release(int n) {
  if (n > 0) g_in_use.fetch_sub(n, std::memory_order_relaxed);
}

int CoreBudget::InUse() { return g_in_use.load(std::memory_order_relaxed); }

namespace internal {
void SetCoreBudgetTotalForTesting(int total) {
  g_total_override.store(total, std::memory_order_relaxed);
}
}  // namespace internal

TaskArena::TaskArena(int requested_workers) {
  if (requested_workers < 1) requested_workers = 1;
  granted_helpers_ = CoreBudget::TryAcquire(requested_workers - 1);
  queues_.reserve(granted_helpers_ + 1);
  for (int i = 0; i < granted_helpers_ + 1; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  helpers_.reserve(granted_helpers_);
  for (int i = 0; i < granted_helpers_; ++i) {
    helpers_.emplace_back([this, i] { HelperLoop(i + 1); });
  }
}

TaskArena::~TaskArena() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  for (auto& t : helpers_) t.join();
  CoreBudget::Release(granted_helpers_);
}

void TaskArena::Submit(Task task) {
  spawned_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const int target =
      static_cast<int>(submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<uint32_t>(num_workers()));
  {
    std::lock_guard<std::mutex> qlock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Lock mu_ so a helper between its queued_ check and its cv wait cannot
  // miss this wakeup.
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_one();
}

void TaskArena::FinishTask() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }
}

bool TaskArena::RunOneTask(int worker) {
  // Own deque first: LIFO from the back keeps the working set warm.
  Task task;
  bool have = false;
  bool stole = false;
  {
    WorkerQueue& own = *queues_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      have = true;
    }
  }
  if (!have) {
    // Steal half (rounded up) of the first non-empty victim, FIFO from the
    // front; run the first stolen task, keep the rest on our own deque.
    int n = num_workers();
    for (int off = 1; off < n && !have; ++off) {
      int victim = (worker + off) % n;
      std::deque<Task> loot;
      {
        WorkerQueue& vq = *queues_[victim];
        std::lock_guard<std::mutex> lock(vq.mu);
        size_t avail = vq.tasks.size();
        if (avail == 0) continue;
        size_t take = (avail + 1) / 2;
        for (size_t i = 0; i < take; ++i) {
          loot.push_back(std::move(vq.tasks.front()));
          vq.tasks.pop_front();
        }
      }
      stolen_.fetch_add(static_cast<int64_t>(loot.size()),
                        std::memory_order_relaxed);
      task = std::move(loot.front());
      loot.pop_front();
      have = true;
      stole = true;
      if (!loot.empty()) {
        WorkerQueue& own = *queues_[worker];
        std::lock_guard<std::mutex> lock(own.mu);
        for (auto& t : loot) own.tasks.push_back(std::move(t));
      }
    }
  }
  if (!have) return false;
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  // Optional per-task profiling events (ARSP_TRACE_FILE): one Chrome
  // trace_event complete event per executed task, keyed by worker lane.
  // enabled() is a cached bool, so the untraced hot path pays one branch.
  obs::TaskEventSink& sink = obs::TaskEventSink::Global();
  if (sink.enabled()) {
    obs::TaskEventSink::Event event;
    event.worker = worker;
    event.stolen = stole;
    event.start_ns = obs::Trace::NowNs();
    task(worker);
    event.end_ns = obs::Trace::NowNs();
    sink.Record(event);
  } else {
    task(worker);
  }
  FinishTask();
  return true;
}

void TaskArena::HelperLoop(int worker) {
  while (true) {
    if (RunOneTask(worker)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void TaskArena::RunAndWait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (RunOneTask(0)) continue;
    // Nothing claimable: helpers hold the remaining tasks. Wait for the
    // all-done notification (or for work to reappear — tasks may submit
    // subtasks).
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace arsp
