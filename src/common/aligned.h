// Copyright 2026 The ARSP Authors.
//
// Cache-line-aligned vector storage for the SoA data plane. ScoreBuffer's
// coordinate/probability streams start on 64-byte boundaries so hot spans
// never share a cache line with unrelated allocations and vector loads hit
// full lines from row 0. This is a layout guarantee, not a kernel
// precondition — spans may window a buffer at arbitrary row offsets, so
// the SIMD kernels always use unaligned loads (see src/simd/kernels.h).

#ifndef ARSP_COMMON_ALIGNED_H_
#define ARSP_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace arsp {

/// Minimal C++17 allocator handing out `Alignment`-aligned blocks via the
/// aligned operator new. Stateless: all instances are interchangeable.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Alignment of the SoA score streams.
inline constexpr std::size_t kScoreAlignment = 64;

/// A std::vector whose data() is 64-byte (cache-line) aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kScoreAlignment>>;

}  // namespace arsp

#endif  // ARSP_COMMON_ALIGNED_H_
