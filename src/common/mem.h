// Copyright 2026 The ARSP Authors.
//
// Process memory introspection for the --stats / STATS reporting paths and
// the scale bench: peak resident set size as the kernel accounts it.

#ifndef ARSP_COMMON_MEM_H_
#define ARSP_COMMON_MEM_H_

#include <cstdint>

namespace arsp {

/// Peak resident set size of the calling process in bytes, or 0 when the
/// platform offers no way to ask (the value is reporting-only; callers must
/// treat 0 as "unknown", never as "no memory").
int64_t PeakRssBytes();

}  // namespace arsp

#endif  // ARSP_COMMON_MEM_H_
