// Copyright 2026 The ARSP Authors.

#include "src/common/mem.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace arsp {

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace arsp
