// Copyright 2026 The ARSP Authors.
//
// Tick-based least-recently-used eviction for bounded map caches. Shared by
// ExecutionContext's per-fanout R-tree cache and ArspEngine's context pool
// so their eviction policy cannot drift apart.

#ifndef ARSP_COMMON_LRU_H_
#define ARSP_COMMON_LRU_H_

#include <algorithm>

namespace arsp {

/// Erases the entry with the smallest `second.last_used` tick. The map must
/// be non-empty and its mapped type must expose a `last_used` field that
/// callers bump (from a monotonic counter) on every checkout.
template <typename Map>
void EvictLeastRecentlyUsed(Map& map) {
  map.erase(std::min_element(map.begin(), map.end(),
                             [](const auto& a, const auto& b) {
                               return a.second.last_used < b.second.last_used;
                             }));
}

}  // namespace arsp

#endif  // ARSP_COMMON_LRU_H_
