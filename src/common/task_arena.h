// Copyright 2026 The ARSP Authors.
//
// Intra-query parallel execution primitives:
//
//  * CoreBudget — one process-global concurrency ledger shared by the
//    engine's ThreadPool (batch parallelism: one thread per in-flight
//    query) and TaskArena (intra-query parallelism: several workers inside
//    one query). The total is ARSP_THREADS when set, else the hardware
//    concurrency. ThreadPool *reserves* unconditionally (its size is an
//    explicit caller decision and existing behavior must not shrink);
//    TaskArena only *tries* to acquire what is left, so a daemon running a
//    full SolveBatch pool can never fan out pool_size × query_threads OS
//    threads — parallel queries inside a saturated pool degrade gracefully
//    to serial, which by the determinism contract changes nothing but wall
//    time.
//
//  * TaskArena — a work-stealing task scheduler: per-worker deques, owner
//    pushes/pops at the back, idle workers steal half a victim's deque from
//    the front (steal-half amortizes steal traffic on irregular subtree
//    sizes). The constructing thread participates as worker 0 during
//    RunAndWait(), so a TaskArena granted zero extra workers is simply a
//    serial loop over the submitted tasks in submission order — the
//    degenerate case the bit-identity contract leans on.
//
// Tasks must not throw. Submit is intended from the owner thread (between
// RunAndWait rounds) or from inside a running task; RunAndWait may be
// called repeatedly (B&B submits one round per heap batch).

#ifndef ARSP_COMMON_TASK_ARENA_H_
#define ARSP_COMMON_TASK_ARENA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace arsp {

/// Process-global concurrency budget (see file comment). All methods are
/// thread-safe; the total is resolved once from ARSP_THREADS / hardware
/// concurrency and cached.
class CoreBudget {
 public:
  /// Total concurrent threads the process should run: max(1, ARSP_THREADS)
  /// when the env var is set and parses, else hardware concurrency (with
  /// the same ≥1 fallback ThreadPool::DefaultConcurrency applies).
  static int Total();

  /// Unconditionally records `n` slots as in use (ThreadPool: explicit pool
  /// sizes are honored even when they overshoot the budget — the budget
  /// then simply denies intra-query workers).
  static void Reserve(int n);

  /// Grants up to `max_slots` of the remaining budget (possibly 0) and
  /// records them in use. Never oversubscribes past Total().
  static int TryAcquire(int max_slots);

  /// Returns `n` previously Reserve()d / TryAcquire()d slots.
  static void Release(int n);

  /// Slots currently in use (diagnostic).
  static int InUse();
};

namespace internal {
/// Test hook: overrides Total() (0 restores the env/hardware value).
void SetCoreBudgetTotalForTesting(int total);
}  // namespace internal

/// Work-stealing task scheduler (see file comment).
class TaskArena {
 public:
  /// A task; the argument is the running worker's id in
  /// [0, num_workers()) — workers use it to index per-worker state.
  using Task = std::function<void(int)>;

  /// Asks the CoreBudget for `requested_workers - 1` helper threads (the
  /// caller is the remaining worker); the grant may be smaller, down to
  /// zero helpers. `requested_workers` < 1 is clamped to 1.
  explicit TaskArena(int requested_workers);
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// Helpers granted + the calling thread.
  int num_workers() const { return static_cast<int>(queues_.size()); }

  /// Enqueues one task. Tasks submitted from the owner thread are dealt
  /// round-robin across worker deques (seeding the steal-half balancing);
  /// tasks submitted from inside a task land on the submitting worker's
  /// own deque.
  void Submit(Task task);

  /// Runs until every submitted task has completed; the calling thread
  /// participates as worker 0. May be called repeatedly.
  void RunAndWait();

  /// Tasks ever submitted / tasks claimed by a worker other than the one
  /// whose deque held them (cumulative; stolen ≤ spawned).
  int64_t tasks_spawned() const {
    return spawned_.load(std::memory_order_relaxed);
  }
  int64_t tasks_stolen() const {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Claims and runs one task as `worker` (own deque first, then
  /// steal-half). Returns false when every deque was empty.
  bool RunOneTask(int worker);
  void HelperLoop(int worker);
  void FinishTask();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> helpers_;
  int granted_helpers_ = 0;

  std::mutex mu_;                 // guards cv waits (counters are atomic)
  std::condition_variable cv_;    // "work available" and "all done"
  std::atomic<int64_t> queued_{0};   // tasks sitting in some deque
  std::atomic<int64_t> pending_{0};  // submitted − completed
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> spawned_{0};
  std::atomic<int64_t> stolen_{0};
  // Round-robin dealing cursor. Atomic because tasks may Submit subtasks
  // from worker threads concurrently with the owner; which deque a task
  // lands in never affects results (the merge is canonical-order).
  std::atomic<uint32_t> submit_cursor_{0};
};

}  // namespace arsp

#endif  // ARSP_COMMON_TASK_ARENA_H_
