// Copyright 2026 The ARSP Authors.

#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/task_arena.h"

namespace arsp {

int ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? kFallbackConcurrency : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  // Pool sizes are explicit caller decisions, so this reserves
  // unconditionally; intra-query TaskArenas only take what remains, which
  // keeps batch × intra-query parallelism within one core budget.
  CoreBudget::Reserve(count);
  threads_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  CoreBudget::Release(num_threads());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace arsp
