// Copyright 2026 The ARSP Authors.
//
// Rng is header-only; this translation unit anchors the target.

#include "src/common/rng.h"
