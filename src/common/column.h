// Copyright 2026 The ARSP Authors.
//
// The storage-trait seam of the out-of-core data plane: a Column<T> is one
// contiguous typed array that is either *owned* (an AlignedVector built in
// memory — datasets from CSV/generators, indexes from bulk loaders) or
// *borrowed* (a read-only span into an mmap'ed snapshot section — see
// src/io/snapshot.h). Consumers read through data()/operator[] and cannot
// tell the difference; only construction and mutation know. This is what
// lets a snapshot load with zero parse and zero copy: every hot array in
// UncertainDataset, ScoreBuffer, KdTree, and RTree is a Column, and the
// loader points them straight into the mapped file, paging on demand.
//
// Lifetime: a borrowed column does NOT keep its backing alive. Whoever
// assembles borrowed columns (the snapshot loader) must pin the mapping,
// e.g. via the shared_ptr backing slot on UncertainDataset.

#ifndef ARSP_COMMON_COLUMN_H_
#define ARSP_COMMON_COLUMN_H_

#include <cstddef>
#include <type_traits>
#include <utility>

#include "src/common/aligned.h"
#include "src/common/macros.h"

namespace arsp {

template <typename T>
class Column {
  static_assert(std::is_trivially_copyable_v<T>,
                "Columns hold flat POD data (they map 1:1 to file sections)");

 public:
  /// An empty owned column.
  Column() = default;

  /// Owned column taking over an existing vector.
  explicit Column(AlignedVector<T> data)
      : owned_(std::move(data)), data_(owned_.data()), size_(owned_.size()) {}

  /// Borrowed read-only window; `data` must outlive the column (the caller
  /// pins the backing, e.g. an mmap region).
  static Column Borrowed(const T* data, std::size_t size) {
    Column c;
    c.data_ = data;
    c.size_ = size;
    c.borrowed_ = true;
    return c;
  }

  // Copy/move keep the owned/borrowed distinction; a copied owned column
  // deep-copies its storage (columns sit inside value types like KdTree).
  Column(const Column& other) { *this = other; }
  Column& operator=(const Column& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    data_ = borrowed_ ? other.data_ : owned_.data();
    return *this;
  }
  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    data_ = borrowed_ ? other.data_ : owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
    return *this;
  }

  bool borrowed() const { return borrowed_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bytes() const { return size_ * sizeof(T); }

  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](std::size_t i) const {
    ARSP_DCHECK(i < size_);
    return data_[i];
  }

  // ------------------------------------------------------ owned mutation
  // Every mutator CHECKs that the column is owned: borrowed (mapped)
  // storage is immutable by contract, and silently copying it on write
  // would defeat the paging budget the caller signed up for.

  AlignedVector<T>& mutable_vec() {
    ARSP_CHECK_MSG(!borrowed_, "mutating a borrowed (mapped) column");
    return owned_;
  }
  T* mutable_data() { return mutable_vec().data(); }
  void resize(std::size_t n) {
    mutable_vec().resize(n);
    sync();
  }
  void resize(std::size_t n, const T& value) {
    mutable_vec().resize(n, value);
    sync();
  }
  void reserve(std::size_t n) { mutable_vec().reserve(n); }
  void push_back(const T& v) {
    mutable_vec().push_back(v);
    sync();
  }
  void clear() {
    mutable_vec().clear();
    sync();
  }
  T& at_mut(std::size_t i) {
    ARSP_DCHECK(i < size_);
    return mutable_data()[i];
  }

  /// Re-derives the cached view after direct mutable_vec() surgery.
  void sync() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

 private:
  AlignedVector<T> owned_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool borrowed_ = false;
};

/// Resident vs. mapped byte split of one column — the unit the index
/// memory-footprint stats aggregate.
struct ColumnBytes {
  std::size_t resident = 0;  ///< owned heap bytes
  std::size_t mapped = 0;    ///< borrowed (mmap-backed) bytes

  ColumnBytes& operator+=(const ColumnBytes& other) {
    resident += other.resident;
    mapped += other.mapped;
    return *this;
  }
  template <typename T>
  void Add(const Column<T>& column) {
    (column.borrowed() ? mapped : resident) += column.bytes();
  }
};

}  // namespace arsp

#endif  // ARSP_COMMON_COLUMN_H_
