// Copyright 2026 The ARSP Authors.
//
// Minimal Status / StatusOr in the style of RocksDB and Abseil. Public
// factory functions that can fail (bad constraints, degenerate preference
// regions, invalid datasets) return Status or StatusOr<T> instead of
// throwing, so callers can handle recoverable input errors explicitly.

#ifndef ARSP_COMMON_STATUS_H_
#define ARSP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/macros.h"

namespace arsp {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
  /// Transient overload / backpressure: the operation is safe to retry
  /// after a delay (the cluster admission controller's RETRY_LATER).
  kUnavailable,
};

/// Result of an operation that can fail without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: d must be >= 2".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result of an operation that yields a T on success.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status) : status_(std::move(status)) {
    ARSP_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& value() const& {
    ARSP_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                   status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    ARSP_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                   status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    ARSP_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                   status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define ARSP_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::arsp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace arsp

#endif  // ARSP_COMMON_STATUS_H_
