// Copyright 2026 The ARSP Authors.

#include "src/common/percentile.h"

#include <algorithm>
#include <cstddef>

namespace arsp {

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[index];
}

std::vector<double> Percentiles(std::vector<double>* sample,
                                const std::vector<double>& quantiles) {
  std::sort(sample->begin(), sample->end());
  std::vector<double> out;
  out.reserve(quantiles.size());
  for (double q : quantiles) out.push_back(SortedPercentile(*sample, q));
  return out;
}

}  // namespace arsp
