// Copyright 2026 The ARSP Authors.
//
// Shared percentile computation. Every consumer of latency windows — the
// engine's latency_stats(), arsp_loadgen's report — must agree on one
// definition, so it lives here: nearest-rank over a sorted sample,
// index = round(q · (n − 1)), the historical ArspEngine rule.

#ifndef ARSP_COMMON_PERCENTILE_H_
#define ARSP_COMMON_PERCENTILE_H_

#include <vector>

namespace arsp {

/// Nearest-rank percentile of a *sorted ascending* sample: element at index
/// round(q · (n − 1)). q is clamped to [0, 1]. Returns 0.0 for an empty
/// sample. Tail quantiles (p99 = 0.99, p99.9 = 0.999 — the standard
/// reporting set across latency_stats(), daemon STATS, and arsp_loadgen)
/// degrade gracefully on small samples: with n below 1/(1−q) the index
/// rounds to n−1 and the tail percentile is simply the max.
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Sorts `sample` in place, then returns the percentile for each q in
/// `quantiles` (same order). Returns zeros for an empty sample.
std::vector<double> Percentiles(std::vector<double>* sample,
                                const std::vector<double>& quantiles);

}  // namespace arsp

#endif  // ARSP_COMMON_PERCENTILE_H_
