// Copyright 2026 The ARSP Authors.
//
// A fixed-size worker pool with a FIFO task queue. ArspEngine fans
// SolveBatch requests across it; anything else that needs background work
// (future service frontend, parallel benchmarks) can share the abstraction.

#ifndef ARSP_COMMON_THREAD_POOL_H_
#define ARSP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arsp {

/// Fixed pool of worker threads draining a FIFO queue of tasks. Tasks must
/// not throw; completion signalling (latches, futures) is the submitter's
/// responsibility. The destructor drains already-queued tasks, then joins.
/// Pool threads are charged against the process-global CoreBudget
/// (src/common/task_arena.h) for their lifetime, so intra-query TaskArenas
/// never oversubscribe on top of batch parallelism.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  /// The worker count to use when the caller wants "one per core":
  /// std::thread::hardware_concurrency(), except that the standard allows
  /// it to return 0 when the platform cannot tell — then this falls back to
  /// kFallbackConcurrency instead of silently creating a 0 → 1-thread pool.
  static int DefaultConcurrency();

  /// Fallback worker count when hardware concurrency is unknown (≥ 1).
  static constexpr int kFallbackConcurrency = 2;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace arsp

#endif  // ARSP_COMMON_THREAD_POOL_H_
