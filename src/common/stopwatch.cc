// Copyright 2026 The ARSP Authors.
//
// Stopwatch is header-only; this translation unit anchors the target.

#include "src/common/stopwatch.h"
