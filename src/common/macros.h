// Copyright 2026 The ARSP Authors.
//
// Lightweight checked-assertion macros used across the library. Following the
// RocksDB/Arrow convention, internal invariant violations abort with a
// readable message rather than throwing: corrupted state in a query engine is
// not recoverable, and exceptions are banned from hot paths.

#ifndef ARSP_COMMON_MACROS_H_
#define ARSP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a formatted message. Used for unrecoverable internal errors.
#define ARSP_FATAL(...)                                              \
  do {                                                               \
    std::fprintf(stderr, "[ARSP FATAL] %s:%d: ", __FILE__, __LINE__); \
    std::fprintf(stderr, __VA_ARGS__);                               \
    std::fprintf(stderr, "\n");                                      \
    std::abort();                                                    \
  } while (0)

// Checks an invariant in all build modes (cheap conditions only).
#define ARSP_CHECK(cond)                              \
  do {                                                \
    if (!(cond)) ARSP_FATAL("check failed: %s", #cond); \
  } while (0)

#define ARSP_CHECK_MSG(cond, ...)   \
  do {                              \
    if (!(cond)) ARSP_FATAL(__VA_ARGS__); \
  } while (0)

// Debug-only check for conditions that are too expensive for release builds.
#ifndef NDEBUG
#define ARSP_DCHECK(cond) ARSP_CHECK(cond)
#else
#define ARSP_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // ARSP_COMMON_MACROS_H_
