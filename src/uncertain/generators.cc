// Copyright 2026 The ARSP Authors.

#include "src/uncertain/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Object center by distribution, in [0,1]^d.
Point MakeCenter(Distribution dist, int dim, Rng& rng) {
  Point c(dim);
  switch (dist) {
    case Distribution::kIndependent:
      for (int i = 0; i < dim; ++i) c[i] = rng.Uniform01();
      break;
    case Distribution::kCorrelated: {
      // Points near the main diagonal: a shared position plus small noise.
      const double u = rng.Uniform01();
      for (int i = 0; i < dim; ++i) c[i] = Clamp01(u + rng.Normal(0.0, 0.05));
      break;
    }
    case Distribution::kAntiCorrelated: {
      // Points near the hyperplane Σ x_i ≈ d/2 with strong per-dimension
      // spread: good in one attribute implies bad in others.
      const double level = rng.ClampedNormal(0.5, 0.05, 0.0, 1.0);
      std::vector<double> g(static_cast<size_t>(dim));
      double sum = 0.0;
      for (int i = 0; i < dim; ++i) {
        g[static_cast<size_t>(i)] = rng.Uniform01() + 1e-9;
        sum += g[static_cast<size_t>(i)];
      }
      for (int i = 0; i < dim; ++i) {
        c[i] = Clamp01(level * dim * g[static_cast<size_t>(i)] / sum);
      }
      break;
    }
  }
  return c;
}

}  // namespace

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "IND";
    case Distribution::kAntiCorrelated:
      return "ANTI";
    case Distribution::kCorrelated:
      return "CORR";
  }
  return "?";
}

UncertainDataset GenerateSynthetic(const SyntheticConfig& config) {
  ARSP_CHECK(config.num_objects >= 1);
  ARSP_CHECK(config.max_instances >= 1);
  ARSP_CHECK(config.dim >= 1);
  ARSP_CHECK(config.phi >= 0.0 && config.phi <= 1.0);
  Rng rng(config.seed);
  UncertainDatasetBuilder builder(config.dim);

  const int num_truncated =
      static_cast<int>(config.phi * config.num_objects + 0.5);

  for (int j = 0; j < config.num_objects; ++j) {
    const bool truncated = j < num_truncated;
    const Point center = MakeCenter(config.distribution, config.dim, rng);

    // Rectangle edge lengths ~ N(l/2, l/8) clamped to [0, l], per dimension.
    Point half(config.dim);
    for (int i = 0; i < config.dim; ++i) {
      half[i] = rng.ClampedNormal(config.region_length / 2.0,
                                  config.region_length / 8.0, 0.0,
                                  config.region_length) /
                2.0;
    }

    // Instance count ~ Uniform[1, cnt]; objects that will lose one instance
    // need at least 2 so they do not vanish.
    int count = rng.UniformInt(truncated ? 2 : 1,
                               std::max(config.max_instances, truncated ? 2 : 1));
    const double prob = 1.0 / static_cast<double>(count);

    const int kept = truncated ? count - 1 : count;
    std::vector<Point> points;
    std::vector<double> probs;
    points.reserve(static_cast<size_t>(kept));
    for (int i = 0; i < kept; ++i) {
      Point p(config.dim);
      for (int k = 0; k < config.dim; ++k) {
        p[k] = Clamp01(center[k] + rng.Uniform(-half[k], half[k]));
      }
      points.push_back(std::move(p));
      probs.push_back(prob);
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  auto dataset = builder.Build();
  ARSP_CHECK_MSG(dataset.ok(), "synthetic generator produced invalid data: %s",
                 dataset.status().ToString().c_str());
  return std::move(dataset).value();
}

UncertainDataset GenerateIipLike(int num_records, uint64_t seed) {
  ARSP_CHECK(num_records >= 1);
  Rng rng(seed);
  UncertainDatasetBuilder builder(2);
  for (int j = 0; j < num_records; ++j) {
    // Melting percentage and drifting days, mildly correlated: the longer an
    // iceberg drifts, the more it melts. Lower is preferred for both.
    const double drift_days = rng.Uniform(0.0, 600.0);
    const double melt =
        std::min(100.0, std::max(0.0, drift_days / 6.0 + rng.Normal(0.0, 18.0)));
    // Confidence by sighting source: R/V 0.8, VIS 0.7, RAD 0.6.
    const double roll = rng.Uniform01();
    const double conf = roll < 0.45 ? 0.8 : (roll < 0.75 ? 0.7 : 0.6);
    builder.AddSingleton(Point{melt, drift_days}, conf);
  }
  auto dataset = builder.Build();
  ARSP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

UncertainDataset GenerateCarLike(int num_models, uint64_t seed) {
  ARSP_CHECK(num_models >= 1);
  Rng rng(seed);
  UncertainDatasetBuilder builder(4);
  for (int j = 0; j < num_models; ++j) {
    // Model-level quality factor drives all four attributes; individual cars
    // scatter widely around it (the paper notes CAR has large attribute
    // variance). Orientation: lower is better, so power and year are negated.
    const double quality = rng.Uniform01();
    const int cars = rng.UniformInt(1, 30);
    std::vector<Point> points;
    std::vector<double> probs;
    for (int i = 0; i < cars; ++i) {
      const double price =
          5000.0 + 60000.0 * (1.0 - quality) + rng.Normal(0.0, 9000.0);
      const double power = 60.0 + 300.0 * quality + rng.Normal(0.0, 45.0);
      const double mileage =
          rng.Uniform(0.0, 250000.0) * (0.4 + 0.6 * (1.0 - quality));
      const double year = 2000.0 + 22.0 * quality + rng.Normal(0.0, 4.0);
      points.push_back(Point{std::max(500.0, price), -std::max(40.0, power),
                             std::max(0.0, mileage), -year});
      probs.push_back(1.0 / static_cast<double>(cars));
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  auto dataset = builder.Build();
  ARSP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::vector<std::string> NbaMetricNames(int dim) {
  static const char* kAll[8] = {"rebounds", "assists",   "points",
                                "steals",   "blocks",    "turnovers",
                                "minutes",  "field_goals"};
  ARSP_CHECK(dim >= 1 && dim <= 8);
  std::vector<std::string> out;
  for (int i = 0; i < dim; ++i) out.emplace_back(kAll[i]);
  return out;
}

UncertainDataset GenerateNbaLike(int num_players, int dim, uint64_t seed,
                                 std::vector<std::string>* names) {
  ARSP_CHECK(num_players >= 1);
  ARSP_CHECK(dim >= 1 && dim <= 8);
  Rng rng(seed);
  UncertainDatasetBuilder builder(dim);
  if (names != nullptr) names->clear();

  // Per-metric league-wide scale (per game): rebounds, assists, points,
  // steals, blocks, turnovers, minutes, field goals made.
  static const double kScale[8] = {5.0, 3.5, 12.0, 0.9, 0.6, 1.8, 24.0, 4.5};

  for (int j = 0; j < num_players; ++j) {
    // Latent overall skill is heavy-tailed so genuine stars exist; each
    // metric gets a strong independent tilt so rebounders, passers and
    // scorers are genuinely different players — without it the aggregated
    // rskyline collapses to a single all-round star, unlike the paper's
    // Table I where several specialists coexist.
    const double overall = std::exp(rng.Normal(0.0, 0.25));
    // Playing position drives anti-correlated specialisation: bigs rebound
    // and block, guards assist and steal. Without it a single all-rounder
    // F-dominates the whole league on average, which real rosters (and the
    // paper's Table I, where specialists like Gobert and Capela co-exist
    // with Jokic) do not show.
    const double position = rng.Uniform(-1.0, 1.0);
    static const double kPositionLoad[8] = {1.0,  -1.0, 0.0, -0.7,
                                            1.2,  -0.3, 0.1, 0.2};
    std::vector<double> skill(static_cast<size_t>(dim));
    for (int k = 0; k < dim; ++k) {
      skill[static_cast<size_t>(k)] =
          overall *
          std::exp(kPositionLoad[k] * position + rng.Normal(0.0, 0.4));
    }
    // Per-player game-to-game volatility: some players are consistent, some
    // streaky — the Table-I analysis depends on both kinds existing. Real
    // game logs are very noisy (half the league has zero-point games and
    // 20-point games), so volatility is high across the board.
    const double volatility = rng.Uniform(0.35, 0.9);

    const int games = rng.UniformInt(20, 180);
    std::vector<Point> points;
    std::vector<double> probs;
    points.reserve(static_cast<size_t>(games));
    for (int g = 0; g < games; ++g) {
      Point p(dim);
      for (int k = 0; k < dim; ++k) {
        double v = kScale[k] * skill[static_cast<size_t>(k)] *
                   std::max(0.0, 1.0 + rng.Normal(0.0, volatility));
        // Turnovers (index 5) are already lower-is-better; every other
        // metric counts up, so negate for the lower-preferred convention.
        p[k] = (k == 5) ? v : -v;
      }
      points.push_back(std::move(p));
      probs.push_back(1.0 / static_cast<double>(games));
    }
    builder.AddObject(std::move(points), std::move(probs));
    if (names != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "Player-%03d", j + 1);
      names->emplace_back(buf);
    }
  }
  auto dataset = builder.Build();
  ARSP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::vector<Point> AggregateByMean(const UncertainDataset& dataset) {
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(dataset.num_objects()));
  for (int j = 0; j < dataset.num_objects(); ++j) {
    const auto [begin, end] = dataset.object_range(j);
    Point mean(dataset.dim());
    double total = 0.0;
    for (int i = begin; i < end; ++i) {
      const double p = dataset.prob(i);
      const double* row = dataset.coords(i);
      for (int k = 0; k < dataset.dim(); ++k) {
        mean[k] += p * row[k];
      }
      total += p;
    }
    ARSP_CHECK(total > 0.0);
    for (int k = 0; k < dataset.dim(); ++k) mean[k] /= total;
    out.push_back(std::move(mean));
  }
  return out;
}

UncertainDataset TakeObjects(const UncertainDataset& dataset, int count) {
  ARSP_CHECK(count >= 1 && count <= dataset.num_objects());
  // The explicit-copy path: a materialized prefix view. Query paths that
  // only need to *read* the prefix should use DatasetView directly.
  return DatasetView::Create(dataset, ViewSpec::Prefix(count))
      .value()
      .Materialize();
}

namespace {

// "key=value,key=value" bag for generator specs. All values stay strings;
// typed reads validate on use so error messages can name the key.
class SpecParams {
 public:
  static StatusOr<SpecParams> Parse(const std::string& text) {
    SpecParams params;
    std::string token;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i < text.size() && text[i] != ',') {
        token += text[i];
        continue;
      }
      if (token.empty()) {
        token.clear();
        continue;  // tolerate "a=1,,b=2" and trailing commas
      }
      const size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        return Status::InvalidArgument("generator spec token '" + token +
                                       "' is not key=value");
      }
      params.values_[token.substr(0, eq)] = token.substr(eq + 1);
      token.clear();
    }
    return params;
  }

  StatusOr<int64_t> IntOr(const std::string& key, int64_t def) {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    used_.insert(key);
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end != it->second.c_str() + it->second.size() || it->second.empty()) {
      return Status::InvalidArgument("generator spec key '" + key +
                                     "' needs an integer (got '" +
                                     it->second + "')");
    }
    return static_cast<int64_t>(v);
  }

  StatusOr<double> DoubleOr(const std::string& key, double def) {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    used_.insert(key);
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end != it->second.c_str() + it->second.size() || it->second.empty()) {
      return Status::InvalidArgument("generator spec key '" + key +
                                     "' needs a number (got '" + it->second +
                                     "')");
    }
    return v;
  }

  StatusOr<Distribution> DistOr(const std::string& key, Distribution def) {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    used_.insert(key);
    if (it->second == "IND") return Distribution::kIndependent;
    if (it->second == "ANTI") return Distribution::kAntiCorrelated;
    if (it->second == "CORR") return Distribution::kCorrelated;
    return Status::InvalidArgument("generator spec key '" + key +
                                   "' must be IND, ANTI, or CORR (got '" +
                                   it->second + "')");
  }

  /// InvalidArgument naming the first key no typed read consumed — typos
  /// fail instead of silently falling back to defaults.
  Status ExpectAllUsed() const {
    for (const auto& [key, value] : values_) {
      if (used_.count(key) == 0) {
        return Status::InvalidArgument("unknown generator spec key '" + key +
                                       "'");
      }
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

// Pulls a value out of a StatusOr or propagates its error.
#define ARSP_SPEC_ASSIGN(lhs, expr)            \
  do {                                         \
    auto _v = (expr);                          \
    if (!_v.ok()) return _v.status();          \
    lhs = *_v;                                 \
  } while (0)

void FillPlaceholderNames(int count, std::vector<std::string>* names) {
  if (names == nullptr) return;
  names->clear();
  names->reserve(static_cast<size_t>(count));
  for (int j = 0; j < count; ++j) names->push_back("obj-" + std::to_string(j));
}

// Upper bound on spec-controlled counts (objects, instances per object).
// Values are narrowed to int below, so without a cap 2^32+5 would wrap to
// 5 and silently generate the wrong dataset; the bound also keeps a wire
// LOAD_DATASET from requesting an absurd allocation. strtoll overflow
// saturates at LLONG_MAX and lands above the cap, so it is caught too.
constexpr int64_t kMaxSpecCount = 100'000'000;

}  // namespace

StatusOr<UncertainDataset> GenerateFromSpec(const std::string& spec,
                                            std::vector<std::string>* names) {
  const size_t colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  auto params = SpecParams::Parse(
      colon == std::string::npos ? std::string() : spec.substr(colon + 1));
  if (!params.ok()) return params.status();

  if (family == "synthetic") {
    SyntheticConfig config;
    ARSP_SPEC_ASSIGN(config.num_objects, params->IntOr("m", config.num_objects));
    ARSP_SPEC_ASSIGN(config.max_instances,
                     params->IntOr("cnt", config.max_instances));
    ARSP_SPEC_ASSIGN(config.dim, params->IntOr("d", config.dim));
    ARSP_SPEC_ASSIGN(config.region_length,
                     params->DoubleOr("l", config.region_length));
    ARSP_SPEC_ASSIGN(config.phi, params->DoubleOr("phi", config.phi));
    ARSP_SPEC_ASSIGN(config.distribution,
                     params->DistOr("dist", config.distribution));
    ARSP_SPEC_ASSIGN(config.seed, params->IntOr("seed", 42));
    ARSP_RETURN_IF_ERROR(params->ExpectAllUsed());
    if (config.num_objects < 1 || config.num_objects > kMaxSpecCount ||
        config.max_instances < 1 || config.max_instances > kMaxSpecCount ||
        config.dim < 1 || config.dim > 64 || config.phi < 0.0 ||
        config.phi > 1.0) {
      return Status::InvalidArgument(
          "synthetic spec needs m>=1, cnt>=1, d in [1,64], phi in [0,1] "
          "(counts capped at " + std::to_string(kMaxSpecCount) + ")");
    }
    UncertainDataset dataset = GenerateSynthetic(config);
    FillPlaceholderNames(dataset.num_objects(), names);
    return dataset;
  }
  if (family == "iip") {
    int64_t n = 0, seed = 1;
    ARSP_SPEC_ASSIGN(n, params->IntOr("n", 500));
    ARSP_SPEC_ASSIGN(seed, params->IntOr("seed", 1));
    ARSP_RETURN_IF_ERROR(params->ExpectAllUsed());
    if (n < 1 || n > kMaxSpecCount) {
      return Status::InvalidArgument("iip spec needs n in [1, " +
                                     std::to_string(kMaxSpecCount) + "]");
    }
    UncertainDataset dataset = GenerateIipLike(
        static_cast<int>(n), static_cast<uint64_t>(seed));
    FillPlaceholderNames(dataset.num_objects(), names);
    return dataset;
  }
  if (family == "car") {
    int64_t m = 0, seed = 1;
    ARSP_SPEC_ASSIGN(m, params->IntOr("m", 40));
    ARSP_SPEC_ASSIGN(seed, params->IntOr("seed", 1));
    ARSP_RETURN_IF_ERROR(params->ExpectAllUsed());
    if (m < 1 || m > kMaxSpecCount) {
      return Status::InvalidArgument("car spec needs m in [1, " +
                                     std::to_string(kMaxSpecCount) + "]");
    }
    UncertainDataset dataset =
        GenerateCarLike(static_cast<int>(m), static_cast<uint64_t>(seed));
    FillPlaceholderNames(dataset.num_objects(), names);
    return dataset;
  }
  if (family == "nba") {
    int64_t m = 0, d = 0, seed = 1;
    ARSP_SPEC_ASSIGN(m, params->IntOr("m", 50));
    ARSP_SPEC_ASSIGN(d, params->IntOr("d", 4));
    ARSP_SPEC_ASSIGN(seed, params->IntOr("seed", 1));
    ARSP_RETURN_IF_ERROR(params->ExpectAllUsed());
    if (m < 1 || m > kMaxSpecCount || d < 1 || d > 8) {
      return Status::InvalidArgument("nba spec needs m in [1, " +
                                     std::to_string(kMaxSpecCount) +
                                     "] and d in [1,8]");
    }
    return GenerateNbaLike(static_cast<int>(m), static_cast<int>(d),
                           static_cast<uint64_t>(seed), names);
  }
  return Status::InvalidArgument(
      "unknown generator family '" + family +
      "' (expected synthetic:, iip:, car:, or nba:)");
}

#undef ARSP_SPEC_ASSIGN

}  // namespace arsp
