// Copyright 2026 The ARSP Authors.

#include "src/uncertain/uncertain_dataset.h"

#include <algorithm>

namespace arsp {

namespace {
constexpr double kProbEps = 1e-9;
}  // namespace

double UncertainDataset::NumPossibleWorlds() const {
  double worlds = 1.0;
  for (int j = 0; j < num_objects(); ++j) {
    const bool may_be_absent = object_prob(j) < 1.0 - kProbEps;
    worlds *= static_cast<double>(object_size(j) + (may_be_absent ? 1 : 0));
  }
  return worlds;
}

ColumnBytes UncertainDataset::memory_bytes() const {
  ColumnBytes bytes;
  bytes.Add(coords_);
  bytes.Add(probs_);
  bytes.Add(instance_objects_);
  bytes.Add(object_starts_);
  bytes.Add(object_probs_);
  return bytes;
}

int UncertainDatasetBuilder::AddObject(std::vector<Point> points,
                                       std::vector<double> probs) {
  object_points_.push_back(std::move(points));
  object_probs_.push_back(std::move(probs));
  return static_cast<int>(object_points_.size()) - 1;
}

StatusOr<UncertainDataset> UncertainDatasetBuilder::Build() {
  UncertainDataset out;
  out.dim_ = dim_;
  out.bounds_ = Mbr::Empty(dim_);

  const int m = static_cast<int>(object_points_.size());
  size_t total_instances = 0;
  for (const auto& points : object_points_) total_instances += points.size();
  out.coords_.reserve(total_instances * static_cast<size_t>(dim_));
  out.probs_.reserve(total_instances);
  out.instance_objects_.reserve(total_instances);
  out.object_starts_.reserve(static_cast<size_t>(m) + 1);
  out.object_probs_.reserve(static_cast<size_t>(m));

  if (m > 0) out.object_starts_.push_back(0);
  int next_instance = 0;
  for (int j = 0; j < m; ++j) {
    const auto& points = object_points_[static_cast<size_t>(j)];
    const auto& probs = object_probs_[static_cast<size_t>(j)];
    if (points.empty()) {
      return Status::InvalidArgument("object has no instances");
    }
    if (points.size() != probs.size()) {
      return Status::InvalidArgument(
          "instance points and probabilities differ in count");
    }
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      if (points[i].dim() != dim_) {
        return Status::InvalidArgument("instance dimensionality mismatch");
      }
      if (!(probs[i] > 0.0) || probs[i] > 1.0 + kProbEps) {
        return Status::InvalidArgument(
            "instance probability must be in (0, 1]");
      }
      total += probs[i];
    }
    if (total > 1.0 + kProbEps) {
      return Status::InvalidArgument(
          "object probabilities sum to more than 1");
    }
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      for (int k = 0; k < dim_; ++k) out.coords_.push_back(p[k]);
      out.probs_.push_back(std::min(probs[i], 1.0));
      out.instance_objects_.push_back(j);
      out.bounds_.Extend(p);
      ++next_instance;
    }
    out.object_starts_.push_back(next_instance);
    out.object_probs_.push_back(std::min(total, 1.0));
  }
  return out;
}

}  // namespace arsp
