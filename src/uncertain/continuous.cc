// Copyright 2026 The ARSP Authors.

#include "src/uncertain/continuous.h"

#include <cmath>

#include "src/core/kdtt_algorithm.h"

namespace arsp {

int ContinuousUncertainDataset::AddUniformBox(Point center, Point half_extent,
                                              double existence_prob) {
  ARSP_CHECK(center.dim() == dim_ && half_extent.dim() == dim_);
  ARSP_CHECK(existence_prob > 0.0 && existence_prob <= 1.0);
  for (int k = 0; k < dim_; ++k) ARSP_CHECK(half_extent[k] >= 0.0);
  objects_.push_back(ContinuousObject{ContinuousKind::kUniformBox,
                                      std::move(center),
                                      std::move(half_extent),
                                      existence_prob});
  return static_cast<int>(objects_.size()) - 1;
}

int ContinuousUncertainDataset::AddGaussian(Point mean, Point stddev,
                                            double existence_prob) {
  ARSP_CHECK(mean.dim() == dim_ && stddev.dim() == dim_);
  ARSP_CHECK(existence_prob > 0.0 && existence_prob <= 1.0);
  for (int k = 0; k < dim_; ++k) ARSP_CHECK(stddev[k] >= 0.0);
  objects_.push_back(ContinuousObject{ContinuousKind::kGaussian,
                                      std::move(mean), std::move(stddev),
                                      existence_prob});
  return static_cast<int>(objects_.size()) - 1;
}

Point ContinuousUncertainDataset::Sample(int j, Rng& rng) const {
  const ContinuousObject& obj = objects_[static_cast<size_t>(j)];
  Point p(dim_);
  for (int k = 0; k < dim_; ++k) {
    switch (obj.kind) {
      case ContinuousKind::kUniformBox:
        p[k] = obj.spread[k] == 0.0
                   ? obj.center[k]
                   : rng.Uniform(obj.center[k] - obj.spread[k],
                                 obj.center[k] + obj.spread[k]);
        break;
      case ContinuousKind::kGaussian:
        p[k] = obj.spread[k] == 0.0 ? obj.center[k]
                                    : rng.Normal(obj.center[k], obj.spread[k]);
        break;
    }
  }
  return p;
}

UncertainDataset ContinuousUncertainDataset::Discretize(
    int samples_per_object, Rng& rng) const {
  ARSP_CHECK(samples_per_object >= 1);
  UncertainDatasetBuilder builder(dim_);
  for (int j = 0; j < num_objects(); ++j) {
    const double prob =
        objects_[static_cast<size_t>(j)].existence_prob / samples_per_object;
    std::vector<Point> points;
    std::vector<double> probs;
    points.reserve(static_cast<size_t>(samples_per_object));
    for (int i = 0; i < samples_per_object; ++i) {
      points.push_back(Sample(j, rng));
      probs.push_back(prob);
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  auto dataset = builder.Build();
  ARSP_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::vector<double> EstimateContinuousRskyline(
    const ContinuousUncertainDataset& dataset, const PreferenceRegion& region,
    int samples_per_object, int num_trials, uint64_t seed,
    double* max_stderr_out) {
  ARSP_CHECK(num_trials >= 1);
  const int m = dataset.num_objects();
  std::vector<double> sum(static_cast<size_t>(m), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(m), 0.0);

  for (int trial = 0; trial < num_trials; ++trial) {
    Rng rng(seed + static_cast<uint64_t>(trial) * 0x9e3779b97f4a7c15ull);
    const UncertainDataset discrete =
        dataset.Discretize(samples_per_object, rng);
    const ArspResult result = ComputeArspKdtt(discrete, region);
    const std::vector<double> per_object =
        ObjectProbabilities(result, discrete);
    for (int j = 0; j < m; ++j) {
      sum[static_cast<size_t>(j)] += per_object[static_cast<size_t>(j)];
      sum_sq[static_cast<size_t>(j)] +=
          per_object[static_cast<size_t>(j)] * per_object[static_cast<size_t>(j)];
    }
  }

  std::vector<double> mean(static_cast<size_t>(m), 0.0);
  double worst_stderr = 0.0;
  for (int j = 0; j < m; ++j) {
    mean[static_cast<size_t>(j)] = sum[static_cast<size_t>(j)] / num_trials;
    if (num_trials > 1) {
      const double var =
          (sum_sq[static_cast<size_t>(j)] -
           num_trials * mean[static_cast<size_t>(j)] *
               mean[static_cast<size_t>(j)]) /
          (num_trials - 1);
      worst_stderr = std::max(
          worst_stderr, std::sqrt(std::max(0.0, var) / num_trials));
    }
  }
  if (max_stderr_out != nullptr) *max_stderr_out = worst_stderr;
  return mean;
}

}  // namespace arsp
