// Copyright 2026 The ARSP Authors.
//
// Continuous uncertainty — the paper's stated future direction (§VII):
// objects whose location follows a continuous distribution rather than a
// discrete instance set. Exact integration of dominance probabilities is
// expensive; this module provides the standard practical route: Monte-Carlo
// discretization into the library's discrete model, with as many samples as
// the accuracy budget allows, plus a convergence-aware estimator.

#ifndef ARSP_UNCERTAIN_CONTINUOUS_H_
#define ARSP_UNCERTAIN_CONTINUOUS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/prefs/preference_region.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Shape of a continuous object's distribution.
enum class ContinuousKind {
  kUniformBox,  ///< uniform over [center - half, center + half]
  kGaussian,    ///< axis-aligned normal with per-dimension stddev
};

/// One continuously distributed uncertain object.
struct ContinuousObject {
  ContinuousKind kind = ContinuousKind::kUniformBox;
  Point center;
  /// Box half-extents (kUniformBox) or per-dimension stddev (kGaussian).
  Point spread;
  /// Probability that the object materializes at all (≤ 1).
  double existence_prob = 1.0;
};

/// A dataset of continuously distributed objects.
class ContinuousUncertainDataset {
 public:
  explicit ContinuousUncertainDataset(int dim) : dim_(dim) {
    ARSP_CHECK(dim >= 1);
  }

  int dim() const { return dim_; }
  int num_objects() const { return static_cast<int>(objects_.size()); }
  const std::vector<ContinuousObject>& objects() const { return objects_; }

  /// Adds a uniform-box object; returns its id.
  int AddUniformBox(Point center, Point half_extent,
                    double existence_prob = 1.0);
  /// Adds an axis-aligned Gaussian object; returns its id.
  int AddGaussian(Point mean, Point stddev, double existence_prob = 1.0);

  /// Draws one point from object `j`'s distribution.
  Point Sample(int j, Rng& rng) const;

  /// Monte-Carlo discretization: every object becomes
  /// `samples_per_object` equiprobable instances with total mass equal to
  /// its existence probability. The result plugs into every ARSP algorithm.
  UncertainDataset Discretize(int samples_per_object, Rng& rng) const;

 private:
  int dim_;
  std::vector<ContinuousObject> objects_;
};

/// Monte-Carlo estimate of per-object rskyline probabilities with a simple
/// convergence report: the estimate is the mean over `num_trials`
/// independent discretizations, and `max_stderr_out` (if non-null) receives
/// the largest standard error across objects — the knob for deciding
/// whether samples_per_object / num_trials suffice.
std::vector<double> EstimateContinuousRskyline(
    const ContinuousUncertainDataset& dataset, const PreferenceRegion& region,
    int samples_per_object, int num_trials, uint64_t seed,
    double* max_stderr_out = nullptr);

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_CONTINUOUS_H_
