// Copyright 2026 The ARSP Authors.
//
// The uncertain data model of the paper (§II-B): a dataset D of m uncertain
// objects, each a discrete probability distribution over instances in R^d.
// An object materializes as at most one of its instances; objects are
// mutually independent; Σ_t p(t) ≤ 1 per object (strict < 1 means the object
// may be absent from a possible world).

#ifndef ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_
#define ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

/// One instance of an uncertain object.
struct Instance {
  Point point;
  double prob = 0.0;
  int object_id = 0;    ///< Index of the owning object in the dataset.
  int instance_id = 0;  ///< Global index in the flattened instance set I.
};

/// Immutable uncertain dataset; build through UncertainDatasetBuilder.
class UncertainDataset {
 public:
  /// An empty 0-dimensional dataset (useful as a placeholder before
  /// assignment; every query-facing API requires a built dataset).
  UncertainDataset() : bounds_(Mbr::Empty(0)) {}

  /// Data-space dimensionality d.
  int dim() const { return dim_; }
  /// Number of uncertain objects m.
  int num_objects() const { return static_cast<int>(object_ranges_.size()); }
  /// Total number of instances n = |I|.
  int num_instances() const { return static_cast<int>(instances_.size()); }

  /// Flattened instance set I (instances of one object are contiguous).
  const std::vector<Instance>& instances() const { return instances_; }
  const Instance& instance(int i) const {
    return instances_[static_cast<size_t>(i)];
  }

  /// [begin, end) range of object `j` in the flattened instance vector.
  std::pair<int, int> object_range(int j) const {
    return object_ranges_[static_cast<size_t>(j)];
  }
  /// Number of instances of object `j`.
  int object_size(int j) const {
    const auto [b, e] = object_range(j);
    return e - b;
  }
  /// Total existence probability Σ_t p(t) of object `j`.
  double object_prob(int j) const {
    return object_probs_[static_cast<size_t>(j)];
  }

  /// Tight bounding box of all instances.
  const Mbr& bounds() const { return bounds_; }

  /// Number of possible worlds, as a double (it overflows integers fast);
  /// each object contributes (#instances + [Σp < 1]) choices.
  double NumPossibleWorlds() const;

 private:
  friend class UncertainDatasetBuilder;

  int dim_ = 0;
  std::vector<Instance> instances_;
  std::vector<std::pair<int, int>> object_ranges_;
  std::vector<double> object_probs_;
  Mbr bounds_;
};

/// Incremental builder with validation.
class UncertainDatasetBuilder {
 public:
  /// Builder for a d-dimensional dataset.
  explicit UncertainDatasetBuilder(int dim) : dim_(dim) {
    ARSP_CHECK(dim >= 1);
  }

  /// Adds one uncertain object given its instances and probabilities.
  /// Returns the object id.
  int AddObject(std::vector<Point> points, std::vector<double> probs);

  /// Convenience: object with a single certain-ish instance.
  int AddSingleton(Point point, double prob) {
    return AddObject({std::move(point)}, {prob});
  }

  /// Validates (dims match, probs in (0,1], per-object sums ≤ 1) and builds.
  StatusOr<UncertainDataset> Build();

 private:
  int dim_;
  std::vector<std::vector<Point>> object_points_;
  std::vector<std::vector<double>> object_probs_;
};

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_
