// Copyright 2026 The ARSP Authors.
//
// The uncertain data model of the paper (§II-B): a dataset D of m uncertain
// objects, each a discrete probability distribution over instances in R^d.
// An object materializes as at most one of its instances; objects are
// mutually independent; Σ_t p(t) ≤ 1 per object (strict < 1 means the object
// may be absent from a possible world).
//
// Storage is columnar (structure-of-arrays): one contiguous coordinate
// stream (row-major, d doubles per instance), one probability stream, one
// object-id stream, plus per-object range/probability columns. Each stream
// is a Column<T> — owned when built in memory, borrowed when the dataset
// was loaded from an mmap'ed snapshot (src/io/snapshot.h), in which case
// `backing` pins the mapping and prebuilt indexes/scores may ride along.

#ifndef ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_
#define ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/column.h"
#include "src/common/status.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

class KdTree;
class RTree;

/// One instance of an uncertain object, as a value. The dataset no longer
/// stores Instance records (storage is columnar); instance(i) materializes
/// one on demand for cold paths — hot paths read coords()/prob()/object_of().
struct Instance {
  Point point;
  double prob = 0.0;
  int object_id = 0;    ///< Index of the owning object in the dataset.
  int instance_id = 0;  ///< Global index in the flattened instance set I.
};

/// Pre-mapped SV(·) scores shipped inside a snapshot: valid only for the
/// preference-region vertex set identified by `vertex_hash` (an FNV-1a hash
/// of the dimension-major vertex matrix — see ScoreMapper::VertexHash).
/// ExecutionContext::scores() borrows these columns when the hash matches.
struct AttachedScores {
  uint64_t vertex_hash = 0;
  int mapped_dim = 0;
  Column<double> coords;   ///< n × mapped_dim, row-major
  Column<double> probs;    ///< n
  Column<int32_t> objects; ///< n, local object ids
};

/// Immutable uncertain dataset; build through UncertainDatasetBuilder or
/// load through snapshot::Load.
class UncertainDataset {
 public:
  /// An empty 0-dimensional dataset (useful as a placeholder before
  /// assignment; every query-facing API requires a built dataset).
  UncertainDataset() : bounds_(Mbr::Empty(0)) {}

  /// Data-space dimensionality d.
  int dim() const { return dim_; }
  /// Number of uncertain objects m.
  int num_objects() const {
    return object_starts_.empty()
               ? 0
               : static_cast<int>(object_starts_.size()) - 1;
  }
  /// Total number of instances n = |I|.
  int num_instances() const { return static_cast<int>(probs_.size()); }

  /// Raw coordinate row of instance `i` (d contiguous doubles) — the hot
  /// zero-copy accessor; points straight into the column (possibly mmap'ed).
  const double* coords(int i) const {
    return coords_.data() + static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  /// Point of instance `i`, by value (cold paths; allocates).
  Point point(int i) const {
    return Point(std::vector<double>(coords(i), coords(i) + dim_));
  }
  double prob(int i) const { return probs_[static_cast<size_t>(i)]; }
  /// Owning object of instance `i`.
  int object_of(int i) const {
    return instance_objects_[static_cast<size_t>(i)];
  }
  /// Instance `i` materialized as a value (compatibility accessor for cold
  /// paths and tests; hot code reads the columns).
  Instance instance(int i) const {
    return Instance{point(i), prob(i), object_of(i), i};
  }

  /// [begin, end) range of object `j` in the flattened instance order.
  std::pair<int, int> object_range(int j) const {
    return {object_starts_[static_cast<size_t>(j)],
            object_starts_[static_cast<size_t>(j) + 1]};
  }
  /// Number of instances of object `j`.
  int object_size(int j) const {
    const auto [b, e] = object_range(j);
    return e - b;
  }
  /// Total existence probability Σ_t p(t) of object `j`.
  double object_prob(int j) const {
    return object_probs_[static_cast<size_t>(j)];
  }

  /// Tight bounding box of all instances.
  const Mbr& bounds() const { return bounds_; }

  /// Number of possible worlds, as a double (it overflows integers fast);
  /// each object contributes (#instances + [Σp < 1]) choices.
  double NumPossibleWorlds() const;

  // ------------------------------------------------------------ columns
  // Raw column access for the snapshot writer and the footprint stats.
  const Column<double>& coords_column() const { return coords_; }
  const Column<double>& probs_column() const { return probs_; }
  const Column<int32_t>& instance_objects_column() const {
    return instance_objects_;
  }
  const Column<int32_t>& object_starts_column() const {
    return object_starts_;
  }
  const Column<double>& object_probs_column() const { return object_probs_; }

  /// Resident vs. mapped bytes of the dataset's own columns.
  ColumnBytes memory_bytes() const;

  // ------------------------------------------- snapshot loader surface
  // Set once during snapshot::Load, before the dataset is shared; readers
  // treat them as immutable. The backing handle pins the mmap region every
  // borrowed column points into.

  void set_backing(std::shared_ptr<const void> backing) {
    backing_ = std::move(backing);
  }
  const std::shared_ptr<const void>& backing() const { return backing_; }

  void AttachIndexes(std::shared_ptr<const KdTree> kdtree,
                     std::shared_ptr<const RTree> rtree, int rtree_fanout) {
    attached_kdtree_ = std::move(kdtree);
    attached_rtree_ = std::move(rtree);
    attached_rtree_fanout_ = rtree_fanout;
  }
  const std::shared_ptr<const KdTree>& attached_kdtree() const {
    return attached_kdtree_;
  }
  const std::shared_ptr<const RTree>& attached_rtree() const {
    return attached_rtree_;
  }
  int attached_rtree_fanout() const { return attached_rtree_fanout_; }

  void AttachScores(std::shared_ptr<const AttachedScores> scores) {
    attached_scores_ = std::move(scores);
  }
  const std::shared_ptr<const AttachedScores>& attached_scores() const {
    return attached_scores_;
  }

 private:
  friend class UncertainDatasetBuilder;
  friend class SnapshotLoader;

  int dim_ = 0;
  Column<double> coords_;             ///< n × d, row-major
  Column<double> probs_;              ///< n
  Column<int32_t> instance_objects_;  ///< n
  Column<int32_t> object_starts_;     ///< m + 1 (prefix offsets)
  Column<double> object_probs_;       ///< m
  Mbr bounds_;

  std::shared_ptr<const void> backing_;  ///< mmap pin for borrowed columns
  std::shared_ptr<const KdTree> attached_kdtree_;
  std::shared_ptr<const RTree> attached_rtree_;
  int attached_rtree_fanout_ = 0;
  std::shared_ptr<const AttachedScores> attached_scores_;
};

/// Incremental builder with validation.
class UncertainDatasetBuilder {
 public:
  /// Builder for a d-dimensional dataset.
  explicit UncertainDatasetBuilder(int dim) : dim_(dim) {
    ARSP_CHECK(dim >= 1);
  }

  /// Adds one uncertain object given its instances and probabilities.
  /// Returns the object id.
  int AddObject(std::vector<Point> points, std::vector<double> probs);

  /// Convenience: object with a single certain-ish instance.
  int AddSingleton(Point point, double prob) {
    return AddObject({std::move(point)}, {prob});
  }

  /// Validates (dims match, probs in (0,1], per-object sums ≤ 1) and builds.
  StatusOr<UncertainDataset> Build();

 private:
  int dim_;
  std::vector<std::vector<Point>> object_points_;
  std::vector<std::vector<double>> object_probs_;
};

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_UNCERTAIN_DATASET_H_
