// Copyright 2026 The ARSP Authors.

#include "src/uncertain/possible_worlds.h"

namespace arsp {

namespace {

constexpr double kProbEps = 1e-9;

void Recurse(const DatasetView& view, int object_id, PossibleWorld* world,
             const std::function<void(const PossibleWorld&)>& fn) {
  if (object_id == view.num_objects()) {
    fn(*world);
    return;
  }
  const auto [begin, end] = view.object_range(object_id);
  const double saved_prob = world->prob;

  for (int i = begin; i < end; ++i) {
    world->choice[static_cast<size_t>(object_id)] = i;
    world->prob = saved_prob * view.prob(i);
    Recurse(view, object_id + 1, world, fn);
  }
  const double absent = 1.0 - view.object_prob(object_id);
  if (absent > kProbEps) {
    world->choice[static_cast<size_t>(object_id)] = -1;
    world->prob = saved_prob * absent;
    Recurse(view, object_id + 1, world, fn);
  }
  world->prob = saved_prob;
}

}  // namespace

void ForEachPossibleWorld(const UncertainDataset& dataset,
                          const std::function<void(const PossibleWorld&)>& fn,
                          double max_worlds) {
  ForEachPossibleWorld(DatasetView(dataset), fn, max_worlds);
}

void ForEachPossibleWorld(const DatasetView& view,
                          const std::function<void(const PossibleWorld&)>& fn,
                          double max_worlds) {
  ARSP_CHECK_MSG(view.NumPossibleWorlds() <= max_worlds,
                 "possible-world enumeration over %g worlds exceeds limit %g",
                 view.NumPossibleWorlds(), max_worlds);
  PossibleWorld world;
  world.choice.assign(static_cast<size_t>(view.num_objects()), -1);
  world.prob = 1.0;
  Recurse(view, 0, &world, fn);
}

double WorldProbability(const UncertainDataset& dataset,
                        const PossibleWorld& world) {
  ARSP_CHECK(static_cast<int>(world.choice.size()) == dataset.num_objects());
  double prob = 1.0;
  for (int j = 0; j < dataset.num_objects(); ++j) {
    const int pick = world.choice[static_cast<size_t>(j)];
    if (pick < 0) {
      prob *= 1.0 - dataset.object_prob(j);
    } else {
      prob *= dataset.prob(pick);
    }
  }
  return prob;
}

}  // namespace arsp
