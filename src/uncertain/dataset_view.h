// Copyright 2026 The ARSP Authors.
//
// Zero-copy windows over an UncertainDataset. The paper's m% sweeps (Fig. 6)
// and any service serving overlapping sub-queries of one hot dataset need
// "the first m objects" / "this object subset" as a queryable unit; before
// this layer existed the only way to get one was TakeObjects, a deep copy
// that forced every downstream structure (SV(·) mapping, kd-/R-trees) to be
// rebuilt from scratch per subset.
//
// A DatasetView is a cheap immutable handle (shared internal rep, freely
// copyable) describing a window over a base dataset:
//   * full view        — the whole dataset,
//   * prefix view      — the first `m` objects (the Fig. 6 m% case); since
//                        instances are stored contiguously per object, local
//                        instance/object ids coincide with base ids and the
//                        view needs no id tables at all,
//   * subset view      — an arbitrary (sorted) object subset, carrying
//                        remapped local ids plus the base↔local tables.
// Views never duplicate instance payloads (points/probabilities); they hold
// at most integer id tables and a recomputed bounding box.
//
// Id convention: a view exposes *local* ids — objects 0..num_objects()-1 and
// instances 0..num_instances()-1, instances of one object contiguous —
// exactly the contract of a standalone dataset, so solvers run unchanged on
// views. base_instance_id()/base_object_id() translate local → base, and
// LocalInstanceOf() translates base → local (-1 when outside the view),
// which is how shared full-dataset indexes are probed on behalf of a view.

#ifndef ARSP_UNCERTAIN_DATASET_VIEW_H_
#define ARSP_UNCERTAIN_DATASET_VIEW_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Descriptor of which objects of a base dataset a view exposes. Specs are
/// plain values: build one with Full/Prefix/Subset and pass it to
/// DatasetView::Create (or ArspEngine::AddView).
struct ViewSpec {
  enum class Kind { kFull, kPrefix, kSubset };

  Kind kind = Kind::kFull;
  /// Object count for kPrefix.
  int prefix = 0;
  /// Base object ids for kSubset; Subset() sorts and dedups.
  std::vector<int> objects;

  static ViewSpec Full() { return ViewSpec{}; }
  static ViewSpec Prefix(int num_objects);
  static ViewSpec Subset(std::vector<int> object_ids);

  /// Textual encoding ("full" / "prefix:m" / "subset:j1,j2,..."), for
  /// logs, tests, and callers keying their own view registries. Canonical
  /// (equal keys ⇔ equal windows) only after DatasetView::Create has
  /// normalized the spec — hand-built unsorted subset lists encode their
  /// raw order. ArspEngine does NOT use it: engine fingerprints are handle
  /// ids, which identify a view exactly (the spec is pinned at AddView).
  std::string CacheKey() const;
};

/// Immutable zero-copy window over an UncertainDataset. Cheap to copy (the
/// internal rep is shared); default-constructed views are invalid until
/// assigned. The base dataset must outlive the view unless it was created
/// from a shared_ptr (then the view keeps it alive).
class DatasetView {
 public:
  DatasetView() = default;

  /// Full view; non-owning (the base must outlive the view).
  explicit DatasetView(const UncertainDataset& base);

  /// Full view sharing ownership of the base.
  explicit DatasetView(std::shared_ptr<const UncertainDataset> base);

  /// View per `spec`; InvalidArgument on out-of-range prefixes or object
  /// ids. Non-owning.
  static StatusOr<DatasetView> Create(const UncertainDataset& base,
                                      ViewSpec spec);

  /// View per `spec`, sharing ownership of the base.
  static StatusOr<DatasetView> Create(
      std::shared_ptr<const UncertainDataset> base, ViewSpec spec);

  bool valid() const { return rep_ != nullptr; }
  const UncertainDataset& base() const { return *rep_->base; }
  const ViewSpec& spec() const { return rep_->spec; }

  /// True iff the view exposes every object of the base.
  bool is_full() const { return rep_->spec.kind == ViewSpec::Kind::kFull; }
  /// True for full and prefix views: local ids coincide with base ids and
  /// the view's instances are a contiguous base prefix — the property the
  /// zero-copy score-span and index-prefix reuse paths rely on.
  bool is_prefix() const { return rep_->spec.kind != ViewSpec::Kind::kSubset; }

  /// True iff both views are handles to the same internal rep — the O(1)
  /// "identical window" test (copies of one view share their rep). Used by
  /// ExecutionContext::Derive to recognize same-view goal children and
  /// share the parent's artifacts without containment scans or gathers.
  bool SameRepAs(const DatasetView& other) const {
    return rep_ == other.rep_;
  }

  /// The spec's CacheKey.
  std::string CacheKey() const { return rep_->spec.CacheKey(); }

  int dim() const { return rep_->base->dim(); }
  int num_objects() const { return rep_->num_objects; }
  int num_instances() const { return rep_->num_instances; }

  /// Tight bounding box of the view's instances (recomputed, not the
  /// base's).
  const Mbr& bounds() const { return rep_->bounds; }

  /// [begin, end) local-instance range of local object `j`.
  std::pair<int, int> object_range(int j) const {
    if (is_prefix()) return rep_->base->object_range(j);
    return rep_->object_ranges[static_cast<size_t>(j)];
  }
  int object_size(int j) const {
    const auto [b, e] = object_range(j);
    return e - b;
  }
  double object_prob(int j) const {
    return rep_->base->object_prob(base_object_id(j));
  }
  /// Base object id of local object `j`.
  int base_object_id(int j) const {
    if (is_prefix()) return j;
    return rep_->object_base_ids[static_cast<size_t>(j)];
  }

  /// Raw coordinate row of local instance `i` (dim() contiguous doubles) —
  /// a pointer into the base's columnar storage (this is the zero-copy
  /// part; for a snapshot-loaded base it points into the mmap'ed file).
  const double* coords(int i) const {
    return rep_->base->coords(base_instance_id(i));
  }
  /// Point of local instance `i`, by value (cold paths; allocates — hot
  /// loops read coords()).
  Point point(int i) const {
    return rep_->base->point(base_instance_id(i));
  }
  double prob(int i) const {
    return rep_->base->prob(base_instance_id(i));
  }
  /// Local object id owning local instance `i`.
  int object_of(int i) const {
    if (is_prefix()) return rep_->base->object_of(i);
    return rep_->instance_objects[static_cast<size_t>(i)];
  }
  /// Base instance id of local instance `i`.
  int base_instance_id(int i) const {
    if (is_prefix()) return i;
    return rep_->instance_base_ids[static_cast<size_t>(i)];
  }

  /// Local id of the base instance `base_id`, or -1 when it lies outside
  /// the view. O(1); identity (below the bound) for full/prefix views.
  int LocalInstanceOf(int base_id) const {
    if (is_prefix()) return base_id < rep_->num_instances ? base_id : -1;
    return rep_->local_of_base[static_cast<size_t>(base_id)];
  }

  /// Exclusive upper bound on the base instance ids inside the view: every
  /// member id is < id_bound(). For prefix views this is tight
  /// (num_instances), which lets shared indexes skip whole delta subtrees.
  int id_bound() const { return rep_->id_bound; }

  /// Number of possible worlds of the view (same semantics as
  /// UncertainDataset::NumPossibleWorlds).
  double NumPossibleWorlds() const;

  /// True iff every object in the view has exactly one instance.
  bool single_instance_objects() const;

  /// Deep copy of the view into a standalone dataset — the explicit,
  /// pay-for-it materialization (TakeObjects is implemented with it). Tests
  /// use it to assert view-vs-copy solver equivalence.
  UncertainDataset Materialize() const;

 private:
  struct Rep {
    const UncertainDataset* base = nullptr;
    std::shared_ptr<const UncertainDataset> owner;  // may be null
    ViewSpec spec;
    int num_objects = 0;
    int num_instances = 0;
    int id_bound = 0;
    Mbr bounds;
    // Subset views only (prefix views need no tables):
    std::vector<int> object_base_ids;                // local j -> base j
    std::vector<std::pair<int, int>> object_ranges;  // local ranges
    std::vector<int> instance_base_ids;              // local i -> base i
    std::vector<int> instance_objects;               // local i -> local j
    std::vector<int> local_of_base;                  // base i -> local i | -1
  };

  static StatusOr<DatasetView> CreateImpl(
      const UncertainDataset& base,
      std::shared_ptr<const UncertainDataset> owner, ViewSpec spec);

  explicit DatasetView(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_DATASET_VIEW_H_
