// Copyright 2026 The ARSP Authors.
//
// Possible-world semantics (§II-B, Eq. 1): a possible world samples each
// object independently — one of its instances, or absence when the object's
// probabilities sum to less than 1. Enumeration is exponential and exists to
// serve the ENUM baseline and ground-truth checks in tests.

#ifndef ARSP_UNCERTAIN_POSSIBLE_WORLDS_H_
#define ARSP_UNCERTAIN_POSSIBLE_WORLDS_H_

#include <functional>
#include <vector>

#include "src/uncertain/dataset_view.h"
#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// One possible world: `choice[j]` is the instance id the j-th object
/// materialized as, or -1 when the object is absent. Ids are local to the
/// dataset or view being enumerated (identical for full views).
struct PossibleWorld {
  std::vector<int> choice;
  double prob = 1.0;
};

/// Invokes `fn` for every possible world of `dataset` with its probability
/// (Eq. 1). Aborts if the world count exceeds `max_worlds` — this is a
/// ground-truth tool for small datasets only.
void ForEachPossibleWorld(const UncertainDataset& dataset,
                          const std::function<void(const PossibleWorld&)>& fn,
                          double max_worlds = 2e7);

/// View variant: enumerates the worlds of the view's objects; choices are
/// view-local instance ids.
void ForEachPossibleWorld(const DatasetView& view,
                          const std::function<void(const PossibleWorld&)>& fn,
                          double max_worlds = 2e7);

/// Probability of one fully specified world (Eq. 1); mostly for tests.
double WorldProbability(const UncertainDataset& dataset,
                        const PossibleWorld& world);

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_POSSIBLE_WORLDS_H_
