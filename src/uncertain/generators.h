// Copyright 2026 The ARSP Authors.
//
// Workload generators. The synthetic generator follows the procedure of the
// paper's §V-A verbatim (IND/ANTI/CORR centers, per-object hyper-rectangles,
// cnt/l/ϕ knobs). The "real" datasets the paper evaluates (IIP iceberg
// sightings, CAR listings, NBA game logs) are not redistributable, so we
// ship statistical simulators that reproduce the structural properties the
// paper's analysis relies on — see DESIGN.md "Substitutions".

#ifndef ARSP_UNCERTAIN_GENERATORS_H_
#define ARSP_UNCERTAIN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/uncertain/uncertain_dataset.h"

namespace arsp {

/// Attribute correlation of synthetic object centers [40].
enum class Distribution { kIndependent, kAntiCorrelated, kCorrelated };

/// Short name ("IND" / "ANTI" / "CORR") for logs and benchmark labels.
const char* DistributionName(Distribution dist);

/// Knobs of the §V-A synthetic generator; defaults are the paper's defaults
/// scaled down (see DESIGN.md) — pass explicit values in benchmarks.
struct SyntheticConfig {
  int num_objects = 512;     ///< m
  int max_instances = 20;    ///< cnt; n_i ~ Uniform[1, cnt]
  int dim = 4;               ///< d
  double region_length = 0.2;  ///< l; rectangle edge ~ N(l/2, l/8) in [0, l]
  double phi = 0.0;          ///< fraction of objects with Σ p(t) < 1
  Distribution distribution = Distribution::kIndependent;
  uint64_t seed = 42;
};

/// Generates an uncertain dataset per the paper's procedure: centers in
/// [0,1]^d by distribution, instances uniform in a hyper-rectangle around
/// the center with probability 1/n_i, then one instance removed from the
/// first ϕ·m objects (those objects are generated with n_i ≥ 2).
UncertainDataset GenerateSynthetic(const SyntheticConfig& config);

/// IIP-like iceberg sightings: `num_records` single-instance 2-d objects
/// (melting percentage, drifting days; lower preferred on both after
/// orientation), each with confidence-derived probability in
/// {0.8, 0.7, 0.6}. Every object satisfies Σp < 1 (ϕ = 1), the property
/// Fig. 6(a) and Fig. 7 depend on.
UncertainDataset GenerateIipLike(int num_records, uint64_t seed);

/// CAR-like listings: objects are car models; each model has Uniform[1,30]
/// cars with equal probability 1/|T|; 4 attributes (price, -power, mileage,
/// -year as lower-is-better) with large within-model variance.
UncertainDataset GenerateCarLike(int num_models, uint64_t seed);

/// NBA-like game logs: objects are players, instances per-game stat lines
/// with probability 1/|T|. `dim` selects the first `dim` of the 8 metrics
/// (rebounds, assists, points, steals, blocks, turnovers, minutes, field
/// goals made), all oriented lower-is-better (counting stats negated).
/// Players have latent per-metric skill plus per-game variance so that the
/// Table-I phenomena (stars, high-variance outsiders) occur.
UncertainDataset GenerateNbaLike(int num_players, int dim, uint64_t seed,
                                 std::vector<std::string>* names = nullptr);

/// Names of the NBA-like metrics in generation order.
std::vector<std::string> NbaMetricNames(int dim);

/// Aggregates an uncertain dataset into a certain one by the per-object
/// probability-weighted mean of instances (the paper's "aggregated"
/// comparison baseline). Row j of the result corresponds to object j.
std::vector<Point> AggregateByMean(const UncertainDataset& dataset);

/// Restricts the dataset to its first `count` objects (the paper's
/// "vary m%" sweeps on real datasets).
UncertainDataset TakeObjects(const UncertainDataset& dataset, int count);

/// Builds a dataset from a textual generator spec — the form the arspd
/// LOAD_DATASET message and scripted workloads use to name synthetic data
/// without shipping CSVs:
///   "synthetic:m=512,cnt=20,d=4,l=0.2,phi=0,dist=IND|ANTI|CORR,seed=42"
///   "iip:n=500,seed=1"
///   "car:m=40,seed=1"
///   "nba:m=50,d=4,seed=1"
/// Every key is optional (defaults above / SyntheticConfig defaults);
/// unknown keys, malformed numbers, and out-of-range values are
/// InvalidArgument. `names` (if non-null) receives object names when the
/// generator produces them (NBA), else "obj-<j>" placeholders.
StatusOr<UncertainDataset> GenerateFromSpec(
    const std::string& spec, std::vector<std::string>* names = nullptr);

}  // namespace arsp

#endif  // ARSP_UNCERTAIN_GENERATORS_H_
