// Copyright 2026 The ARSP Authors.

#include "src/uncertain/dataset_view.h"

#include <algorithm>
#include <sstream>

namespace arsp {

namespace {
constexpr double kProbEps = 1e-9;
}  // namespace

ViewSpec ViewSpec::Prefix(int num_objects) {
  ViewSpec spec;
  spec.kind = Kind::kPrefix;
  spec.prefix = num_objects;
  return spec;
}

ViewSpec ViewSpec::Subset(std::vector<int> object_ids) {
  ViewSpec spec;
  spec.kind = Kind::kSubset;
  std::sort(object_ids.begin(), object_ids.end());
  object_ids.erase(std::unique(object_ids.begin(), object_ids.end()),
                   object_ids.end());
  spec.objects = std::move(object_ids);
  return spec;
}

std::string ViewSpec::CacheKey() const {
  switch (kind) {
    case Kind::kFull:
      return "full";
    case Kind::kPrefix:
      return "prefix:" + std::to_string(prefix);
    case Kind::kSubset: {
      std::ostringstream os;
      os << "subset:";
      for (int j : objects) os << j << ',';
      return os.str();
    }
  }
  return "";  // unreachable
}

DatasetView::DatasetView(const UncertainDataset& base)
    : DatasetView(CreateImpl(base, nullptr, ViewSpec::Full()).value().rep_) {}

DatasetView::DatasetView(std::shared_ptr<const UncertainDataset> base) {
  ARSP_CHECK_MSG(base != nullptr, "DatasetView over a null dataset");
  const UncertainDataset& ref = *base;
  rep_ = CreateImpl(ref, std::move(base), ViewSpec::Full()).value().rep_;
}

StatusOr<DatasetView> DatasetView::Create(const UncertainDataset& base,
                                          ViewSpec spec) {
  return CreateImpl(base, nullptr, std::move(spec));
}

StatusOr<DatasetView> DatasetView::Create(
    std::shared_ptr<const UncertainDataset> base, ViewSpec spec) {
  if (base == nullptr) {
    return Status::InvalidArgument("DatasetView over a null dataset");
  }
  const UncertainDataset& ref = *base;
  return CreateImpl(ref, std::move(base), std::move(spec));
}

StatusOr<DatasetView> DatasetView::CreateImpl(
    const UncertainDataset& base, std::shared_ptr<const UncertainDataset> owner,
    ViewSpec spec) {
  auto rep = std::make_shared<Rep>();
  rep->base = &base;
  rep->owner = std::move(owner);

  switch (spec.kind) {
    case ViewSpec::Kind::kFull:
      rep->num_objects = base.num_objects();
      rep->num_instances = base.num_instances();
      rep->id_bound = base.num_instances();
      rep->bounds = base.bounds();
      break;

    case ViewSpec::Kind::kPrefix: {
      if (spec.prefix < 0 || spec.prefix > base.num_objects()) {
        return Status::InvalidArgument(
            "view prefix " + std::to_string(spec.prefix) +
            " out of range [0, " + std::to_string(base.num_objects()) + "]");
      }
      rep->num_objects = spec.prefix;
      rep->num_instances =
          spec.prefix == 0 ? 0 : base.object_range(spec.prefix - 1).second;
      rep->id_bound = rep->num_instances;
      rep->bounds = Mbr::Empty(base.dim());
      for (int i = 0; i < rep->num_instances; ++i) {
        rep->bounds.ExtendRow(base.coords(i));
      }
      break;
    }

    case ViewSpec::Kind::kSubset: {
      for (int j : spec.objects) {
        if (j < 0 || j >= base.num_objects()) {
          return Status::InvalidArgument(
              "view subset object id " + std::to_string(j) +
              " out of range [0, " + std::to_string(base.num_objects()) + ")");
        }
      }
      // Enforce the sorted/unique invariant here, not just in Subset():
      // specs are plain structs, and an unsorted or duplicated id list
      // hand-built by a caller would corrupt the id tables and id_bound
      // (silently wrong probabilities, not an error).
      std::sort(spec.objects.begin(), spec.objects.end());
      spec.objects.erase(std::unique(spec.objects.begin(), spec.objects.end()),
                         spec.objects.end());
      rep->num_objects = static_cast<int>(spec.objects.size());
      rep->bounds = Mbr::Empty(base.dim());
      rep->local_of_base.assign(static_cast<size_t>(base.num_instances()), -1);
      rep->object_base_ids = spec.objects;
      int next = 0;
      for (int local_j = 0; local_j < rep->num_objects; ++local_j) {
        const int base_j = spec.objects[static_cast<size_t>(local_j)];
        const auto [begin, end] = base.object_range(base_j);
        rep->object_ranges.emplace_back(next, next + (end - begin));
        for (int i = begin; i < end; ++i) {
          rep->local_of_base[static_cast<size_t>(i)] = next++;
          rep->instance_base_ids.push_back(i);
          rep->instance_objects.push_back(local_j);
          rep->bounds.ExtendRow(base.coords(i));
        }
      }
      rep->num_instances = next;
      rep->id_bound =
          rep->instance_base_ids.empty() ? 0 : rep->instance_base_ids.back() + 1;
      break;
    }
  }
  rep->spec = std::move(spec);
  return DatasetView(std::move(rep));
}

double DatasetView::NumPossibleWorlds() const {
  double worlds = 1.0;
  for (int j = 0; j < num_objects(); ++j) {
    const bool may_be_absent = object_prob(j) < 1.0 - kProbEps;
    worlds *= static_cast<double>(object_size(j) + (may_be_absent ? 1 : 0));
  }
  return worlds;
}

bool DatasetView::single_instance_objects() const {
  for (int j = 0; j < num_objects(); ++j) {
    if (object_size(j) != 1) return false;
  }
  return true;
}

UncertainDataset DatasetView::Materialize() const {
  UncertainDatasetBuilder builder(dim());
  for (int j = 0; j < num_objects(); ++j) {
    const auto [begin, end] = object_range(j);
    std::vector<Point> points;
    std::vector<double> probs;
    points.reserve(static_cast<size_t>(end - begin));
    probs.reserve(static_cast<size_t>(end - begin));
    for (int i = begin; i < end; ++i) {
      points.push_back(point(i));
      probs.push_back(prob(i));
    }
    builder.AddObject(std::move(points), std::move(probs));
  }
  auto out = builder.Build();
  ARSP_CHECK_MSG(out.ok(), "%s", out.status().ToString().c_str());
  return std::move(out).value();
}

}  // namespace arsp
