// Copyright 2026 The ARSP Authors.

#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/mem.h"
#include "src/common/stopwatch.h"
#include "src/core/queries.h"
#include "src/io/csv.h"
#include "src/io/snapshot.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/simd/kernels.h"
#include "src/uncertain/generators.h"

namespace arsp {
namespace net {

namespace {

// FNV-1a over the load request's identity. Used only for the idempotent-
// reload check, where a collision would wrongly reuse a handle —
// acceptable for a 64-bit hash over inputs the operator controls; names,
// not hashes, are the real identity. CSV text and CSV file sources hash
// identically (file content is read before hashing), so a path preload
// and an inline re-load of the same bytes interoperate; only the
// *interpretation* family (CSV vs generator spec) is mixed in, since the
// same bytes mean different datasets across families.
uint64_t Fingerprint(LoadSource source, bool header,
                     const std::string& content) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  mix(source == LoadSource::kGenerator ? 1 : 0);
  mix(header ? 1 : 0);
  for (char c : content) mix(static_cast<uint8_t>(c));
  return h;
}

DerivedKind ToDerivedKind(WireDerivedKind kind) {
  switch (kind) {
    case WireDerivedKind::kNone: return DerivedKind::kNone;
    case WireDerivedKind::kTopKObjects: return DerivedKind::kTopKObjects;
    case WireDerivedKind::kTopKInstances: return DerivedKind::kTopKInstances;
    case WireDerivedKind::kObjectsAboveThreshold:
      return DerivedKind::kObjectsAboveThreshold;
    case WireDerivedKind::kCountControlled:
      return DerivedKind::kCountControlled;
  }
  return DerivedKind::kNone;
}

// Goal-kind label for the arsp_queries_total metric: a small closed set
// (labels must stay low-cardinality — never the raw goal string, which
// embeds constraint text).
const char* GoalLabel(WireDerivedKind kind) {
  switch (kind) {
    case WireDerivedKind::kNone: return "full";
    case WireDerivedKind::kTopKObjects: return "topk_objects";
    case WireDerivedKind::kTopKInstances: return "topk_instances";
    case WireDerivedKind::kObjectsAboveThreshold: return "threshold";
    case WireDerivedKind::kCountControlled: return "count";
  }
  return "full";
}

}  // namespace

EngineBackend::EngineBackend(EngineOptions options)
    : engine_(options), query_threads_(options.query_threads) {}

ArspServer::ArspServer(ServerOptions options) : options_(std::move(options)) {
  if (options_.backend != nullptr) {
    backend_ = options_.backend;
  } else {
    engine_backend_ = std::make_shared<EngineBackend>(options_.engine);
    backend_ = engine_backend_;
  }
}

ArspEngine& ArspServer::engine() {
  ARSP_CHECK_MSG(engine_backend_ != nullptr,
                 "ArspServer::engine(): a custom backend is installed");
  return engine_backend_->engine();
}

ArspServer::~ArspServer() {
  Shutdown();
  Wait();
}

Status ArspServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("server already started");
  }

  // Resolve the bind address (numeric or hostname, IPv4).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(options_.port);
  const int gai = ::getaddrinfo(options_.host.c_str(), port_str.c_str(),
                                &hints, &resolved);
  if (gai != 0) {
    return Status::Internal("cannot resolve bind address '" + options_.host +
                            "': " + gai_strerror(gai));
  }

  int fd = -1;
  Status bind_status = Status::Internal("no usable address");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      bind_status =
          Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      bind_status = Status::OK();
      break;
    }
    bind_status =
        Status::Internal("bind " + options_.host + ":" + port_str + ": " +
                         std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (!bind_status.ok()) return bind_status;

  if (::listen(fd, 64) != 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Non-blocking accepts bound the shutdown latency: the accept loop polls
  // with a 100ms timeout, but a blocking accept(2) can still hang when a
  // connection that was ready at poll time vanishes before the accept (the
  // peer sent RST, or a SYN-cookie handshake fell through) — the kernel
  // then blocks until the *next* connection. O_NONBLOCK turns that race
  // into EAGAIN and the loop re-polls, so Shutdown() is always observed
  // within one poll tick.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    listen_fd_ = fd;
    port_ = ntohs(bound.sin_port);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int ArspServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

bool ArspServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

int64_t ArspServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

void ArspServer::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  // Live connections may be blocked in RecvFrame; a socket shutdown turns
  // that into EOF and their handlers exit cleanly. The accept loop notices
  // stopping_ on its next poll tick.
  for (int fd : live_connections_) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void ArspServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  // Every handler spliced itself onto finished_threads_ before the drain
  // count hit zero (same critical section); join them all.
  ReapFinishedHandlers();
  std::lock_guard<std::mutex> lock(mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ArspServer::ReapFinishedHandlers() {
  std::list<std::thread> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reap.swap(finished_threads_);
  }
  // A reaped thread may still be running its epilogue; join synchronizes
  // with its true exit.
  for (std::thread& t : reap) t.join();
}

void ArspServer::AcceptLoop() {
  for (;;) {
    ReapFinishedHandlers();
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
      if (options_.max_connections > 0 &&
          active_connections_ >= options_.max_connections) {
        // At the cap: leave pending connections in the TCP backlog and
        // check again next tick. stopping_ is still honored above.
        listen_fd = -1;
      }
    }
    if (listen_fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;  // EAGAIN (ready connection vanished) re-polls
    // Accepted sockets inherit no flags from the listener on Linux, but be
    // explicit: the handlers use blocking reads.
    const int cflags = ::fcntl(conn, F_GETFL, 0);
    if (cflags >= 0 && (cflags & O_NONBLOCK) != 0) {
      ::fcntl(conn, F_SETFL, cflags & ~O_NONBLOCK);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(conn);
        return;
      }
      // Registered before the handler starts, so a Shutdown() between
      // accept and handler startup still unblocks this connection.
      live_connections_.insert(conn);
      ++active_connections_;
      connection_threads_.emplace_back();
      const auto self = std::prev(connection_threads_.end());
      *self = std::thread([this, conn, self] { HandleConnection(conn, self); });
    }
  }
}

void ArspServer::HandleConnection(int fd,
                                  std::list<std::thread>::iterator self) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
    }
    StatusOr<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) {
      // Clean close, peer death, or a framing violation (bad magic /
      // truncated frame / oversized frame): the stream cannot be trusted
      // past this point, so the connection ends either way.
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_served_;
    }
    MessageType reply_type = MessageType::kError;
    std::string reply_payload;
    const bool keep_open =
        HandleRequest(fd, *frame, &reply_type, &reply_payload);
    if (reply_payload.size() > kMaxPayloadBytes) {
      // A legitimate request can produce a response past the max-frame
      // guard (include_instances on a huge dataset). SendFrame would
      // reject it without writing, stranding the client in a read — turn
      // it into an ERROR frame so the connection stays usable.
      reply_type = MessageType::kError;
      reply_payload =
          ErrorResponse::From(
              Status::InvalidArgument(
                  "response exceeds the max-frame guard; retry without "
                  "include_instances or query a smaller view"))
              .EncodePayload();
    }
    const Status sent = SendFrame(fd, reply_type, reply_payload);
    if (!keep_open) {
      // SHUTDOWN: the acknowledgment must be on the wire before the drain
      // shuts this very socket down, or the client sees a dead connection
      // instead of an OK.
      Shutdown();
      break;
    }
    if (!sent.ok()) break;
  }
  // Untrack strictly before close: once the fd is closed the kernel may
  // hand the same number to a new accept, and a late erase would untrack
  // *that* connection — leaving Shutdown unable to unblock it (drain
  // hang). Close inside the same critical section so the accept side
  // cannot interleave a reuse between erase and close.
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_connections_.erase(fd);
    ::close(fd);
    // Park this thread for the reaper strictly before announcing the
    // drain, so Wait() joining after active_connections_ == 0 sees every
    // handler on finished_threads_.
    finished_threads_.splice(finished_threads_.end(), connection_threads_,
                             self);
    --active_connections_;
    if (active_connections_ == 0) drained_cv_.notify_all();
  }
}

bool ArspServer::HandleRequest(int client_fd, const Frame& frame,
                               MessageType* reply_type,
                               std::string* reply_payload) {
  // Encodes the outcome of one typed handler: the success message on OK,
  // an ErrorResponse otherwise. Payload decode errors go the same route —
  // the framing is intact, so the connection survives a malformed message.
  const auto reply_error = [&](const Status& status) {
    *reply_type = MessageType::kError;
    *reply_payload = ErrorResponse::From(status).EncodePayload();
  };

  switch (frame.type) {
    case MessageType::kPing: {
      *reply_type = MessageType::kOk;
      reply_payload->clear();
      return true;
    }
    case MessageType::kShutdown: {
      // The caller sends the acknowledgment and *then* initiates the drain
      // (signal-only — joining happens in Wait()); triggering it here
      // would shut this connection's socket down under the pending reply.
      *reply_type = MessageType::kOk;
      reply_payload->clear();
      return false;
    }
    case MessageType::kLoadDataset: {
      LoadDatasetRequest request;
      const Status st = request.DecodePayload(frame.payload);
      if (!st.ok()) {
        reply_error(st);
        return true;
      }
      auto response = backend_->Load(request);
      if (!response.ok()) {
        reply_error(response.status());
        return true;
      }
      *reply_type = MessageType::kLoadResult;
      *reply_payload = response->EncodePayload();
      return true;
    }
    case MessageType::kAddView: {
      AddViewRequest request;
      const Status st = request.DecodePayload(frame.payload);
      if (!st.ok()) {
        reply_error(st);
        return true;
      }
      auto response = backend_->AddView(request);
      if (!response.ok()) {
        reply_error(response.status());
        return true;
      }
      *reply_type = MessageType::kViewResult;
      *reply_payload = response->EncodePayload();
      return true;
    }
    case MessageType::kQuery: {
      QueryRequestWire request;
      const Status st = request.DecodePayload(frame.payload);
      if (!st.ok()) {
        reply_error(st);
        return true;
      }
      // Admission gate: an overloaded service answers with a typed
      // RETRY_LATER instead of queueing the query behind an unbounded
      // backlog. The connection stays usable — retrying is the client's
      // call (the load generator and the cluster client both honor it).
      QueryGate* const gate = options_.query_gate.get();
      if (gate != nullptr) {
        RetryLaterResponse retry;
        if (!gate->Admit(static_cast<uint64_t>(client_fd),
                         &retry.retry_after_ms, &retry.reason)) {
          obs::MetricsRegistry::Global()
              .GetCounter("arsp_admission_denials_total", {},
                          "QUERY requests refused by the admission gate "
                          "(answered RETRY_LATER).")
              ->Inc();
          *reply_type = MessageType::kRetryLater;
          *reply_payload = retry.EncodePayload();
          return true;
        }
      }
      // The slow-query log needs the phase breakdown, which only a trace
      // carries — force one internally when the log is armed, but never
      // ship forced spans to a client that didn't ask for them.
      const bool forced_trace =
          options_.slow_query_ms >= 0 && !request.want_trace;
      if (forced_trace) request.want_trace = true;
      Stopwatch watch;
      auto response = backend_->Query(request);
      const double elapsed_ms = watch.ElapsedMillis();
      if (gate != nullptr) gate->Release(static_cast<uint64_t>(client_fd));
      if (!response.ok()) {
        reply_error(response.status());
        return true;
      }
      if (!response->trace_spans.empty()) {
        // Retain for the TRACE message (most recent wins).
        std::lock_guard<std::mutex> lock(mu_);
        last_trace_id_ = response->trace_id;
        last_trace_spans_ = response->trace_spans;
      }
      if (options_.slow_query_ms >= 0 &&
          elapsed_ms >= static_cast<double>(options_.slow_query_ms)) {
        LogSlowQuery(request, *response, elapsed_ms);
      }
      if (forced_trace) {
        response->trace_id = 0;
        response->trace_spans.clear();
      }
      *reply_type = MessageType::kQueryResult;
      *reply_payload = response->EncodePayload();
      return true;
    }
    case MessageType::kMetrics: {
      MetricsResponse response;
      response.text = obs::MetricsRegistry::Global().RenderPrometheusText();
      *reply_type = MessageType::kMetricsResult;
      *reply_payload = response.EncodePayload();
      return true;
    }
    case MessageType::kTraceGet: {
      TraceResponse response;
      {
        std::lock_guard<std::mutex> lock(mu_);
        response.trace_id = last_trace_id_;
        response.spans = last_trace_spans_;
      }
      *reply_type = MessageType::kTraceResult;
      *reply_payload = response.EncodePayload();
      return true;
    }
    case MessageType::kStats: {
      StatsRequest request;
      const Status st = request.DecodePayload(frame.payload);
      if (!st.ok()) {
        reply_error(st);
        return true;
      }
      auto response = backend_->Stats(request);
      if (!response.ok()) {
        reply_error(response.status());
        return true;
      }
      *reply_type = MessageType::kStatsResult;
      *reply_payload = response->EncodePayload();
      return true;
    }
    case MessageType::kDrop: {
      DropRequest request;
      Status st = request.DecodePayload(frame.payload);
      if (st.ok()) st = backend_->Drop(request);
      if (!st.ok()) {
        reply_error(st);
        return true;
      }
      *reply_type = MessageType::kOk;
      reply_payload->clear();
      return true;
    }
    default:
      reply_error(Status::InvalidArgument(
          std::string("unexpected message type ") +
          MessageTypeName(frame.type)));
      return true;
  }
}

void ArspServer::LogSlowQuery(const QueryRequestWire& request,
                              const QueryResponseWire& response,
                              double elapsed_ms) {
  // Phase breakdown: the root span's direct children (cache_probe,
  // context_acquire, index_setup, solve, goal_answer — whichever ran).
  std::string phases;
  std::vector<obs::Span> spans;
  if (obs::DeserializeSpans(response.trace_spans, &spans) && !spans.empty()) {
    for (const obs::Span& child : spans[0].children) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "=%.3fms", child.DurationMs());
      phases += " " + child.name + ms;
    }
  }
  std::fprintf(stderr,
               "[arspd] slow query trace=%016" PRIx64
               " dataset=%s solver=%s goal=%s total=%.3fms phases:%s\n",
               response.trace_id, request.dataset.c_str(),
               response.solver.c_str(), response.goal.c_str(), elapsed_ms,
               phases.empty() ? " (none)" : phases.c_str());
}

StatusOr<LoadDatasetResponse> EngineBackend::Load(
    const LoadDatasetRequest& request) {
  if (request.name.empty()) {
    return Status::InvalidArgument("LOAD_DATASET needs a non-empty name");
  }

  // A server-side path ending in ".arsp" is a columnar snapshot: it is
  // mmap-loaded (zero parse, zero copy) instead of read as CSV, and the
  // snapshot header's content hash is the registry fingerprint — two
  // snapshot files with identical sections reuse one handle regardless of
  // path or mtime, exactly like re-shipped CSV bytes.
  const bool is_snapshot =
      request.source == LoadSource::kCsvFile &&
      request.payload.size() > 5 &&
      request.payload.compare(request.payload.size() - 5, 5, ".arsp") == 0;

  // Server-side file sources are read up front so the fingerprint covers
  // content, not the path — a changed file under the same path must not be
  // silently reused. Inline payloads are referenced, not copied (they can
  // be hundreds of MB).
  std::string file_content;
  snapshot::LoadedSnapshot snap;
  uint64_t fingerprint = 0;
  if (is_snapshot) {
    auto loaded = snapshot::LoadSnapshot(request.payload);
    if (!loaded.ok()) return loaded.status();
    snap = std::move(*loaded);
    fingerprint = snap.fingerprint;
  } else {
    if (request.source == LoadSource::kCsvFile) {
      std::ifstream file(request.payload);
      if (!file) {
        return Status::NotFound("cannot open '" + request.payload +
                                "' on the server");
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      file_content = buffer.str();
    }
    const std::string& content = request.source == LoadSource::kCsvFile
                                     ? file_content
                                     : request.payload;
    fingerprint = Fingerprint(request.source, request.header, content);
  }

  // Idempotent re-load: same name + same content reuses the handle (this
  // is what lets separate CLI invocations share one engine dataset and hit
  // the result cache); same name + different content is refused.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = registry_.find(request.name);
    if (it != registry_.end()) {
      if (it->second.is_view || it->second.fingerprint != fingerprint) {
        return Status::InvalidArgument(
            "name '" + request.name +
            "' is already bound to different content (DROP it first)");
      }
      LoadDatasetResponse response;
      response.name = request.name;
      response.num_objects = it->second.num_objects;
      response.num_instances = it->second.num_instances;
      response.dim = it->second.dim;
      response.reused = true;
      return response;
    }
  }

  // Parse / generate outside the registry lock — loads can be slow.
  // Snapshot datasets arrive fully assembled (borrowed columns, attached
  // indexes) and enter the engine by shared pointer — no copy.
  NamedEntry entry;
  if (is_snapshot) {
    entry.num_objects = snap.dataset->num_objects();
    entry.num_instances = snap.dataset->num_instances();
    entry.dim = snap.dataset->dim();
    entry.fingerprint = fingerprint;
    entry.names = std::make_shared<std::vector<std::string>>(
        std::move(snap.object_names));
    entry.handle = engine_.AddDataset(snap.dataset);
  } else {
    const std::string& content = request.source == LoadSource::kCsvFile
                                     ? file_content
                                     : request.payload;
    auto names = std::make_shared<std::vector<std::string>>();
    StatusOr<UncertainDataset> dataset =
        request.source == LoadSource::kGenerator
            ? GenerateFromSpec(content, names.get())
            : ParseUncertainDatasetCsv(content, request.header, names.get());
    if (!dataset.ok()) return dataset.status();
    entry.num_objects = dataset->num_objects();
    entry.num_instances = dataset->num_instances();
    entry.dim = dataset->dim();
    entry.fingerprint = fingerprint;
    entry.names = std::move(names);
    entry.handle = engine_.AddDataset(std::move(*dataset));
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = registry_.emplace(request.name, entry);
  if (!inserted) {
    // A concurrent load of the same name won the race. Converge on the
    // winner when the content matches; otherwise report the conflict.
    engine_.DropDataset(entry.handle);
    if (it->second.is_view || it->second.fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "name '" + request.name +
          "' is already bound to different content (DROP it first)");
    }
  }
  LoadDatasetResponse response;
  response.name = request.name;
  response.num_objects = it->second.num_objects;
  response.num_instances = it->second.num_instances;
  response.dim = it->second.dim;
  response.reused = !inserted;
  return response;
}

StatusOr<AddViewResponse> EngineBackend::AddView(
    const AddViewRequest& request) {
  if (request.view_name.empty()) {
    return Status::InvalidArgument("ADD_VIEW needs a non-empty view name");
  }
  DatasetHandle base_handle;
  std::shared_ptr<const std::vector<std::string>> base_names;
  // Specs are normalized (Subset sorts + dedups) before keying, so the
  // idempotency comparison below cannot be defeated by input order.
  const std::string spec_key =
      request.spec.kind == ViewSpec::Kind::kSubset
          ? ViewSpec::Subset(request.spec.objects).CacheKey()
          : request.spec.CacheKey();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto base = registry_.find(request.base_name);
    if (base == registry_.end()) {
      return Status::NotFound("unknown dataset '" + request.base_name + "'");
    }
    if (base->second.is_view) {
      return Status::InvalidArgument(
          "'" + request.base_name +
          "' is a view — register views against the base dataset");
    }
    const auto existing = registry_.find(request.view_name);
    if (existing != registry_.end()) {
      // Idempotent re-registration (same base, same window): separate CLI
      // invocations repeating a sweep reuse the view — and therefore its
      // derived context and cache entries — instead of erroring out.
      if (existing->second.is_view &&
          existing->second.base == request.base_name &&
          existing->second.view_spec_key == spec_key) {
        AddViewResponse response;
        response.name = request.view_name;
        response.num_objects = existing->second.num_objects;
        response.num_instances = existing->second.num_instances;
        response.dim = existing->second.dim;
        return response;
      }
      return Status::InvalidArgument("name '" + request.view_name +
                                     "' is already registered");
    }
    base_handle = base->second.handle;
    base_names = base->second.names;
  }

  auto handle = engine_.AddView(base_handle, request.spec);
  if (!handle.ok()) return handle.status();
  const DatasetView view = engine_.view(*handle);

  NamedEntry entry;
  entry.handle = *handle;
  entry.is_view = true;
  entry.view_spec_key = spec_key;
  entry.base = request.base_name;
  entry.names = std::move(base_names);
  entry.num_objects = view.num_objects();
  entry.num_instances = view.num_instances();
  entry.dim = view.dim();

  std::lock_guard<std::mutex> lock(mu_);
  const auto base = registry_.find(request.base_name);
  if (base == registry_.end() ||
      base->second.handle.id != base_handle.id) {
    // The base was dropped (and possibly re-loaded under the same name)
    // while the view was being built; the engine-side cascade already
    // destroyed our view handle, so registering the name would bind it to
    // a dead handle. The extra engine drop is a no-op in the
    // already-cascaded case.
    engine_.DropDataset(entry.handle);
    return Status::NotFound("dataset '" + request.base_name +
                            "' was dropped concurrently");
  }
  const auto [it, inserted] = registry_.emplace(request.view_name, entry);
  if (!inserted) {
    engine_.DropDataset(entry.handle);
    return Status::InvalidArgument("name '" + request.view_name +
                                   "' is already registered");
  }
  base->second.views.push_back(request.view_name);
  AddViewResponse response;
  response.name = request.view_name;
  response.num_objects = entry.num_objects;
  response.num_instances = entry.num_instances;
  response.dim = entry.dim;
  return response;
}

StatusOr<QueryResponseWire> EngineBackend::Query(
    const QueryRequestWire& request) {
  DatasetHandle handle;
  std::shared_ptr<const std::vector<std::string>> names;
  int dim = 0;
  int num_objects = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = registry_.find(request.dataset);
    if (it == registry_.end()) {
      return Status::NotFound("unknown dataset '" + request.dataset + "'");
    }
    handle = it->second.handle;
    names = it->second.names;
    dim = it->second.dim;
    num_objects = it->second.num_objects;
  }

  auto constraints = ParseConstraintSpec(request.constraint_spec, dim);
  if (!constraints.ok()) return constraints.status();

  QueryRequest query;
  query.dataset = handle;
  query.constraints = std::move(*constraints);
  query.solver = request.solver;
  for (const std::string& opt : request.options) {
    ARSP_RETURN_IF_ERROR(query.options.ParseKeyValue(opt));
  }
  query.derived.kind = ToDerivedKind(request.derived_kind);
  query.derived.k = request.k;
  query.derived.threshold = request.threshold;
  query.derived.max_objects = request.max_objects;
  query.use_cache = request.use_cache;
  query.allow_pushdown = request.allow_pushdown;
  if (request.parallelism < 0) {
    return Status::InvalidArgument("parallelism must be >= 0, got " +
                                   std::to_string(request.parallelism));
  }
  query.parallelism = request.parallelism;
  // Evaluation scope (wire v3): clamp to the view so the canonical goal —
  // and therefore the cache key — is identical however the coordinator
  // over- or under-shoots the range.
  const bool scoped = request.scope_begin >= 0 && request.scope_end >= 0;
  if (scoped) {
    query.derived.scope_begin = std::min(std::max(0, request.scope_begin),
                                         num_objects);
    query.derived.scope_end =
        std::min(std::max(query.derived.scope_begin, request.scope_end),
                 num_objects);
  }

  // Tracing: enabled only on request (want_trace), reusing a propagated
  // upstream id when one is stamped so one id correlates coordinator and
  // shard timelines. query.trace stays null otherwise — the zero-cost
  // disabled mode.
  std::unique_ptr<obs::Trace> trace;
  if (request.want_trace) {
    trace = std::make_unique<obs::Trace>(
        request.trace_id != 0 ? request.trace_id : obs::Trace::NewTraceId(),
        "engine_query");
    query.trace = trace.get();
  }
  Stopwatch watch;
  auto response = engine_.Solve(query);
  const double elapsed_ms = watch.ElapsedMillis();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const char* const goal_label = GoalLabel(request.derived_kind);
  const char* const queries_help =
      "Queries served, by solver, goal kind, and outcome.";
  if (!response.ok()) {
    metrics
        .GetCounter("arsp_queries_total",
                    {{"solver",
                      request.solver.empty() ? "auto" : request.solver},
                     {"goal", goal_label},
                     {"outcome", "error"}},
                    queries_help)
        ->Inc();
    return response.status();
  }
  metrics
      .GetCounter("arsp_queries_total",
                  {{"solver", response->solver},
                   {"goal", goal_label},
                   {"outcome", "ok"}},
                  queries_help)
      ->Inc();
  if (response->cache_hit) {
    metrics
        .GetCounter("arsp_query_cache_hits_total", {},
                    "Queries answered from the result cache.")
        ->Inc();
  }
  metrics
      .GetHistogram("arsp_query_latency_ms", obs::Histogram::LatencyBucketsMs(),
                    {}, "End-to-end Solve latency per query.")
      ->Observe(elapsed_ms);
  metrics
      .GetHistogram("arsp_query_phase_ms", obs::Histogram::LatencyBucketsMs(),
                    {{"phase", "setup"}},
                    "Per-phase solver time (setup = context/index work, "
                    "solve = the solver proper).")
      ->Observe(response->stats.setup_millis);
  metrics
      .GetHistogram("arsp_query_phase_ms", obs::Histogram::LatencyBucketsMs(),
                    {{"phase", "solve"}},
                    "Per-phase solver time (setup = context/index work, "
                    "solve = the solver proper).")
      ->Observe(response->stats.solve_millis);
  if (response->stats.tasks_spawned > 0) {
    metrics
        .GetCounter("arsp_arena_tasks_total", {},
                    "TaskArena tasks executed by parallel solves.")
        ->Inc(static_cast<uint64_t>(response->stats.tasks_spawned));
    metrics
        .GetCounter("arsp_arena_tasks_stolen_total", {},
                    "TaskArena tasks claimed by work-stealing.")
        ->Inc(static_cast<uint64_t>(response->stats.tasks_stolen));
  }
  if (response->stats.index_bytes_mapped > 0) {
    metrics
        .GetGauge("arsp_index_bytes_mapped", {},
                  "Bytes of mmap-backed index sections behind the most "
                  "recent query.")
        ->Set(response->stats.index_bytes_mapped);
  }

  QueryResponseWire wire;
  wire.solver = response->solver;
  wire.cache_hit = response->cache_hit;
  wire.pushdown = response->pushdown;
  wire.complete = response->result->is_complete();
  wire.goal = response->result->goal.ToString();
  wire.result_size = wire.complete ? CountNonZero(*response->result) : -1;
  wire.count_threshold = response->count_threshold;
  wire.stats = WireSolverStats::From(response->stats);
  wire.ranked.reserve(response->ranked.size());
  // Instance-level rankings carry instance ids, which have no name; every
  // object-level kind carries *base* object ids that index the base's
  // name table regardless of the queried window.
  const bool object_ids =
      request.derived_kind != WireDerivedKind::kTopKInstances;
  for (const auto& [id, prob] : response->ranked) {
    RankedEntry entry;
    entry.object_id = id;
    if (object_ids && names != nullptr &&
        id >= 0 && static_cast<size_t>(id) < names->size()) {
      entry.name = (*names)[static_cast<size_t>(id)];
    }
    entry.prob = prob;
    wire.ranked.push_back(std::move(entry));
  }
  if (request.include_instances && wire.complete && !scoped) {
    wire.instance_probs = response->result->instance_probs;
  }

  // Scoped responses additionally carry per-object reports — the decision
  // and probability bounds of every in-scope object — which is what the
  // coordinator's merge consumes (ranked lists alone are truncated at k and
  // cannot prove exclusion soundness). Report ids are *view-local*, i.e. in
  // the scope's own coordinate system, so the coordinator can issue
  // [j, j+1) refinement scopes without knowing the view mapping.
  const ArspResult& result = *response->result;
  if (scoped && request.derived_kind != WireDerivedKind::kTopKInstances) {
    const DatasetView view = engine_.view(handle);
    const int b = query.derived.scope_begin;
    const int e = query.derived.scope_end;
    wire.object_reports.reserve(static_cast<size_t>(e - b));
    if (!result.is_complete() &&
        static_cast<int>(result.object_decisions.size()) ==
            view.num_objects()) {
      for (int j = b; j < e; ++j) {
        ObjectReportWire o;
        o.object_id = j;
        o.decision =
            static_cast<uint8_t>(result.object_decisions[static_cast<size_t>(j)]);
        o.lower = result.object_bounds[static_cast<size_t>(j)].lower;
        o.upper = result.object_bounds[static_cast<size_t>(j)].upper;
        wire.object_reports.push_back(o);
      }
    } else if (result.is_complete()) {
      // A goal-oblivious solver (or a cached full answer) evaluated
      // everything: every in-scope object is exact.
      const std::vector<double> probs = ObjectProbabilities(result, view);
      for (int j = b; j < e; ++j) {
        ObjectReportWire o;
        o.object_id = j;
        o.decision = static_cast<uint8_t>(ObjectDecision::kExact);
        o.lower = probs[static_cast<size_t>(j)];
        o.upper = o.lower;
        wire.object_reports.push_back(o);
      }
    }
    if (b < e) {
      // The scope's contiguous instance slice (instances of one object are
      // contiguous and objects ascend, so [first(b), last(e-1)) is exactly
      // the scope's instances). For scoped-full goals every in-scope
      // instance is exact whether or not the overall result is "complete" —
      // this is the coordinator's concatenation primitive.
      const int ib = view.object_range(b).first;
      const int ie = view.object_range(e - 1).second;
      if (request.include_instances &&
          static_cast<int>(result.instance_probs.size()) >= ie) {
        wire.instance_offset = ib;
        wire.instance_probs.assign(
            result.instance_probs.begin() + ib,
            result.instance_probs.begin() + ie);
      }
      // kTopKObjects with k < 0 collapses to a full solve (GoalForDerived),
      // so it gets the same per-scope nonzero count the coordinator sums
      // into the global result size.
      const bool full_goal =
          request.derived_kind == WireDerivedKind::kNone ||
          (request.derived_kind == WireDerivedKind::kTopKObjects &&
           request.k < 0);
      if (full_goal && static_cast<int>(result.instance_probs.size()) >= ie) {
        int nonzero = 0;
        for (int i = ib; i < ie; ++i) {
          if (result.instance_probs[static_cast<size_t>(i)] > 0.0) ++nonzero;
        }
        wire.result_size = nonzero;
      }
    } else if (request.derived_kind == WireDerivedKind::kNone ||
               (request.derived_kind == WireDerivedKind::kTopKObjects &&
                request.k < 0)) {
      wire.result_size = 0;
    }
  }
  if (trace != nullptr) {
    trace->Annotate("dataset", request.dataset);
    trace->Annotate("solver", wire.solver);
    trace->Finish();
    wire.trace_id = trace->id();
    wire.trace_spans = obs::SerializeSpans({trace->root()});
    obs::MaybeWriteChromeTrace(trace->root(), trace->id());
  }
  return wire;
}

StatusOr<StatsResponse> EngineBackend::Stats(const StatsRequest& request) {
  StatsResponse response;
  response.kernel_arch = simd::ActiveArchName();
  const ArspEngine::CacheStats cache = engine_.cache_stats();
  response.cache_hits = cache.hits;
  response.cache_misses = cache.misses;
  response.cache_entries = cache.entries;
  response.pooled_contexts = engine_.pooled_contexts();
  const ArspEngine::LatencyStats latency = engine_.latency_stats();
  response.latency_count = latency.count;
  response.latency_window = latency.window;
  response.latency_min_ms = latency.min_ms;
  response.latency_mean_ms = latency.mean_ms;
  response.latency_p50_ms = latency.p50_ms;
  response.latency_p95_ms = latency.p95_ms;
  response.latency_p99_ms = latency.p99_ms;
  response.latency_p999_ms = latency.p999_ms;

  std::vector<DatasetHandle> index_handles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    response.datasets.reserve(registry_.size());
    for (const auto& [name, entry] : registry_) {
      DatasetInfo info;
      info.name = name;
      info.num_objects = entry.num_objects;
      info.num_instances = entry.num_instances;
      info.dim = entry.dim;
      info.is_view = entry.is_view;
      response.datasets.push_back(std::move(info));
    }
    if (!request.dataset.empty()) {
      const auto it = registry_.find(request.dataset);
      if (it == registry_.end()) {
        return Status::NotFound("unknown dataset '" + request.dataset + "'");
      }
      // Index-work counters aggregate the name's own pooled contexts plus,
      // for bases, every view registered over it — the same sum the local
      // CLI sweep prints.
      index_handles.push_back(it->second.handle);
      for (const std::string& view_name : it->second.views) {
        const auto view = registry_.find(view_name);
        if (view != registry_.end()) {
          index_handles.push_back(view->second.handle);
        }
      }
    }
  }
  if (!index_handles.empty()) {
    ExecutionContext::IndexBuildStats total;
    ColumnBytes memory;
    for (const DatasetHandle& handle : index_handles) {
      total += engine_.index_stats(handle);
      const ColumnBytes bytes = engine_.index_memory(handle);
      memory.resident += bytes.resident;
      memory.mapped += bytes.mapped;
    }
    response.has_index_stats = true;
    response.kdtree_builds = total.kdtree_builds;
    response.rtree_builds = total.rtree_builds;
    response.score_maps = total.score_maps;
    response.score_reuses = total.score_reuses;
    response.parent_index_hits = total.parent_index_hits;
    response.index_bytes_resident = static_cast<int64_t>(memory.resident);
    response.index_bytes_mapped = static_cast<int64_t>(memory.mapped);
  }
  response.peak_rss_bytes = PeakRssBytes();
  response.query_threads = query_threads_;
  return response;
}

Status EngineBackend::Drop(const DropRequest& request) {
  DatasetHandle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = registry_.find(request.name);
    if (it == registry_.end()) {
      return Status::NotFound("unknown dataset '" + request.name + "'");
    }
    handle = it->second.handle;
    if (it->second.is_view) {
      // Unlink from the base's view list.
      const auto base = registry_.find(it->second.base);
      if (base != registry_.end()) {
        auto& views = base->second.views;
        views.erase(std::remove(views.begin(), views.end(), request.name),
                    views.end());
      }
      registry_.erase(it);
    } else {
      // The engine cascades a base drop to its views; the registry must
      // agree or later queries would hit dangling handles.
      for (const std::string& view_name : it->second.views) {
        registry_.erase(view_name);
      }
      registry_.erase(it);
    }
  }
  return engine_.DropDataset(handle);
}

}  // namespace net
}  // namespace arsp
