// Copyright 2026 The ARSP Authors.
//
// ServiceBackend — the seam between the wire server's socket machinery and
// whatever answers requests behind it. ArspServer decodes one typed request
// per frame and hands it to a backend; the reply encoding, framing, and
// connection lifecycle stay in the server. Two implementations exist:
//
//   * EngineBackend (src/net/server.h) — one ArspEngine plus the named
//     dataset registry: the classic single-process arspd.
//   * Coordinator (src/cluster/coordinator.h) — fans requests out over a
//     set of shards (each itself a ServiceBackend: in-process engines or
//     remote arspd peers) and merges the per-shard answers.
//
// The coordinator-over-backends recursion is the whole design: a shard
// neither knows nor cares whether it is queried by a CLI, a coordinator,
// or another coordinator.

#ifndef ARSP_NET_BACKEND_H_
#define ARSP_NET_BACKEND_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/protocol.h"

namespace arsp {
namespace net {

/// Answers decoded wire requests. Implementations must be thread-safe: the
/// server calls concurrently from every connection handler.
class ServiceBackend {
 public:
  virtual ~ServiceBackend() = default;

  virtual StatusOr<LoadDatasetResponse> Load(
      const LoadDatasetRequest& request) = 0;
  virtual StatusOr<AddViewResponse> AddView(const AddViewRequest& request) = 0;
  virtual StatusOr<QueryResponseWire> Query(
      const QueryRequestWire& request) = 0;
  virtual StatusOr<StatsResponse> Stats(const StatsRequest& request) = 0;
  virtual Status Drop(const DropRequest& request) = 0;
};

/// Admission hook consulted before every QUERY is dispatched to the
/// backend. Denied queries are answered with a typed RETRY_LATER frame
/// instead of queueing unboundedly; the client sees StatusCode::kUnavailable
/// and retries after the hinted delay. Admit/Release bracket one query
/// (Release runs even when the backend fails), so implementations can keep
/// a bounded pending-work budget. Must be thread-safe.
class QueryGate {
 public:
  virtual ~QueryGate() = default;

  /// Returns true to admit the query. On denial fills the retry hint and a
  /// human-readable reason; Release is NOT called for denied queries.
  virtual bool Admit(uint64_t client_id, uint32_t* retry_after_ms,
                     std::string* reason) = 0;
  /// Marks an admitted query finished.
  virtual void Release(uint64_t client_id) = 0;
};

}  // namespace net
}  // namespace arsp

#endif  // ARSP_NET_BACKEND_H_
