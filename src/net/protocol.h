// Copyright 2026 The ARSP Authors.
//
// The arspd wire protocol: length-prefixed, versioned frames carrying typed
// request/response messages between a thin client (arsp_cli --connect, or
// any ArspClient user) and the long-lived daemon holding one ArspEngine.
//
// Frame layout (all integers little-endian, independent of host order):
//
//   +-------------+-------------+-----------+----------+-----------------+
//   | u32 length  | u16 magic   | u8 version| u8 type  | payload bytes   |
//   +-------------+-------------+-----------+----------+-----------------+
//   length = number of payload bytes (magic/version/type excluded)
//   magic  = kWireMagic, rejects non-arspd peers and stream desync
//   version= kWireVersion; both sides reject frames from the future
//   type   = MessageType
//
// Payloads are flat sequences of primitives encoded by WireWriter and
// decoded by WireReader: u8/u32/u64/i32/f64, strings as u32 length + bytes,
// vectors as u32 count + elements. WireReader is bounds-checked with a
// sticky error, so a truncated or hostile payload can never read out of
// range — decoding either succeeds completely or returns InvalidArgument.
// Frames larger than kMaxPayloadBytes are rejected before any allocation
// (the max-frame guard: a garbage length prefix must not OOM the daemon).
//
// Every message is a plain struct with EncodePayload()/DecodePayload(), so
// the protocol is testable without sockets (tests/protocol_test.cc) and the
// server/client share one serialization path. SendMessage/RecvFrame are the
// blocking fd-level framing helpers both sides use.

#ifndef ARSP_NET_PROTOCOL_H_
#define ARSP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/solver.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {
namespace net {

/// Frame magic ("AR" little-endian-ish constant); rejects stream desync and
/// non-arspd peers at the first frame.
inline constexpr uint16_t kWireMagic = 0xA75F;

/// Protocol version; bumped on any incompatible message change. Both sides
/// reject frames carrying a newer version than they speak.
/// v2: StatsResponse grew kernel_arch (the daemon's simd dispatch arch).
/// v3 (cluster): QueryRequestWire grew the evaluation scope
///     (scope_begin/scope_end), QueryResponseWire grew per-object reports +
///     a shipped-instance offset (shard partial results), and RETRY_LATER
///     became a typed overload reply.
/// v4 (out-of-core): WireSolverStats grew the data-plane memory fields
///     (index_bytes_resident / index_bytes_mapped / peak_rss_bytes), and
///     StatsResponse grew the same per-dataset index footprint plus the
///     daemon's process peak RSS — so a client can see whether a dataset is
///     served from heap-built indexes or a mapped snapshot.
/// v5 (intra-query parallelism): QueryRequestWire grew `parallelism` (the
///     per-query worker request), WireSolverStats grew the executor
///     counters (tasks_spawned / tasks_stolen / parallel_workers), and
///     StatsResponse grew the daemon's configured query_threads policy.
/// v6 (observability): QueryRequestWire grew `trace_id` + `want_trace`
///     (distributed tracing: the coordinator stamps its trace id into
///     scattered frames), QueryResponseWire grew `trace_id` + `trace_spans`
///     (the server-side span subtree, obs::SerializeSpans format),
///     StatsResponse grew the tail latency percentiles (p99 / p99.9), and
///     the METRICS / TRACE message pair was added (Prometheus text dump and
///     most-recent-trace fetch).
inline constexpr uint8_t kWireVersion = 6;

/// Max payload bytes a peer will accept (the max-frame guard). Large enough
/// for a multi-million-instance probability vector, small enough that a
/// corrupt length prefix cannot OOM the process.
inline constexpr uint32_t kMaxPayloadBytes = 256u * 1024u * 1024u;

/// Wire message types. Requests and responses share one numbering space;
/// responses start at 128.
enum class MessageType : uint8_t {
  // Client → server.
  kPing = 1,          ///< liveness probe; empty payload
  kLoadDataset = 2,   ///< LoadDatasetRequest
  kAddView = 3,       ///< AddViewRequest
  kQuery = 4,         ///< QueryRequestWire
  kStats = 5,         ///< StatsRequest
  kDrop = 6,          ///< DropRequest
  kShutdown = 7,      ///< drain and stop the daemon; empty payload
  /// Process metrics dump (Prometheus text, the same bytes the HTTP
  /// /metrics endpoint serves); empty payload. Since wire v6.
  kMetrics = 8,
  /// Fetch the most recent traced query's span tree retained by the
  /// server; empty payload. Since wire v6.
  kTraceGet = 9,
  // Server → client.
  kOk = 128,          ///< generic success (ping, drop, shutdown)
  kError = 129,       ///< ErrorResponse
  kLoadResult = 130,  ///< LoadDatasetResponse
  kViewResult = 131,  ///< AddViewResponse
  kQueryResult = 132, ///< QueryResponseWire
  kStatsResult = 133, ///< StatsResponse
  /// Typed overload reply (RetryLaterResponse): the admission controller
  /// rejected the request; retry after the suggested delay. Distinct from
  /// kError so well-behaved clients can back off without parsing text.
  /// Since wire v3.
  kRetryLater = 134,
  kMetricsResult = 135,  ///< MetricsResponse. Since wire v6.
  kTraceResult = 136,    ///< TraceResponse. Since wire v6.
};

/// Human-readable message-type name for logs and errors.
const char* MessageTypeName(MessageType type);

// ---------------------------------------------------------------- encoding

/// Appends little-endian primitives to a growing byte buffer.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, little-endian.
  void F64(double v);
  /// u32 byte length + raw bytes.
  void Str(const std::string& s);
  void F64Vec(const std::vector<double>& v);
  void I32Vec(const std::vector<int>& v);
  void StrVec(const std::vector<std::string>& v);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader with a sticky error: after any
/// failed read, every subsequent read returns zero values and status() is
/// non-OK. Decoders therefore read unconditionally and check once at the
/// end. Vector/string reads validate the element count against the bytes
/// actually remaining before allocating, so a hostile length cannot OOM.
class WireReader {
 public:
  explicit WireReader(const std::string& bytes) : buf_(bytes) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64();
  std::string Str();
  std::vector<double> F64Vec();
  std::vector<int> I32Vec();
  std::vector<std::string> StrVec();

  /// OK iff every read so far stayed in bounds.
  const Status& status() const { return status_; }
  /// InvalidArgument unless the payload was consumed exactly and fully —
  /// the per-message decode postcondition.
  Status Finish() const;

 private:
  bool Need(size_t n);
  void Fail(const std::string& what);

  const std::string& buf_;
  size_t pos_ = 0;
  Status status_;
};

// ---------------------------------------------------------------- messages

/// How a LOAD_DATASET payload names its data.
enum class LoadSource : uint8_t {
  kCsvText = 0,   ///< `payload` is CSV text shipped inline
  kCsvFile = 1,   ///< `payload` is a path readable by the *server*
  kGenerator = 2, ///< `payload` is a GenerateFromSpec spec ("iip:n=...")
};

/// Registers a dataset under a name. Loading an already-registered name is
/// idempotent when the content fingerprint matches (the existing handle is
/// returned, `reused` set); a mismatch is an error — names are immutable
/// bindings, exactly like engine handles.
struct LoadDatasetRequest {
  std::string name;
  LoadSource source = LoadSource::kCsvText;
  std::string payload;
  bool header = false;  ///< CSV sources: skip the first data line

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

struct LoadDatasetResponse {
  std::string name;
  int32_t num_objects = 0;
  int32_t num_instances = 0;
  int32_t dim = 0;
  bool reused = false;  ///< an identical registration already existed

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Registers a named view over a named base dataset (first-class handle:
/// queryable, droppable, with its own stats).
struct AddViewRequest {
  std::string base_name;
  std::string view_name;
  ViewSpec spec;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

struct AddViewResponse {
  std::string name;
  int32_t num_objects = 0;
  int32_t num_instances = 0;
  int32_t dim = 0;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Mirrors engine DerivedKind on the wire (u8).
enum class WireDerivedKind : uint8_t {
  kNone = 0,
  kTopKObjects = 1,
  kTopKInstances = 2,
  kObjectsAboveThreshold = 3,
  kCountControlled = 4,
};

/// One query against a named dataset or view — the wire form of the
/// engine's QueryRequest: constraint spec + solver + goal + options.
struct QueryRequestWire {
  std::string dataset;          ///< registered dataset or view name
  std::string constraint_spec;  ///< ParseConstraintSpec syntax
  std::string solver = "auto";
  std::vector<std::string> options;  ///< raw "key=value" pairs (CLI --opt)
  WireDerivedKind derived_kind = WireDerivedKind::kNone;
  int32_t k = 10;
  double threshold = 0.5;
  int32_t max_objects = 10;
  bool use_cache = true;
  bool allow_pushdown = true;
  /// Ship the full instance-probability vector back (complete results
  /// only); off by default — it is O(n) bytes.
  bool include_instances = false;
  /// Evaluation scope (view-local object range, half-open); [-1, -1) =
  /// whole view. Set by the cluster coordinator to partition work across
  /// shards; the scoped answer is a bit-identical slice of the unscoped
  /// one. Since wire v3 (absent fields decode as unscoped for v2 frames).
  int32_t scope_begin = -1;
  int32_t scope_end = -1;
  /// Intra-query worker request (QueryRequest::parallelism): 0 = server
  /// policy, 1 = force serial, N >= 2 = request N workers. Results are
  /// bit-identical to serial either way. Since wire v5 (absent fields
  /// decode as 0 = policy for older frames).
  int32_t parallelism = 0;
  /// Distributed tracing (since wire v6). `want_trace` asks the server to
  /// trace this request and return its span subtree in the reply;
  /// `trace_id` propagates the caller's trace id (0 = mint one server-side
  /// when want_trace is set). The coordinator stamps its own id into every
  /// scattered shard frame so one id correlates the whole cross-process
  /// timeline. Tracing never changes results (bit-identity contract).
  uint64_t trace_id = 0;
  bool want_trace = false;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Wire form of SolverStats; field-for-field.
struct WireSolverStats {
  std::string solver;
  double setup_millis = 0.0;
  double solve_millis = 0.0;
  int64_t dominance_tests = 0;
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
  int64_t index_probes = 0;
  int64_t objects_pruned = 0;
  int64_t bound_refinements = 0;
  int64_t early_exit_depth = 0;
  // Data-plane memory accounting (SolverStats field-for-field). Since v4.
  int64_t index_bytes_resident = 0;
  int64_t index_bytes_mapped = 0;
  int64_t peak_rss_bytes = 0;
  // Intra-query executor counters (SolverStats field-for-field). Since v5.
  // tasks_stolen is scheduling-dependent; the other two are deterministic.
  int64_t tasks_spawned = 0;
  int64_t tasks_stolen = 0;
  int64_t parallel_workers = 0;

  static WireSolverStats From(const SolverStats& stats);
  SolverStats ToSolverStats() const;
  void Encode(WireWriter& w) const;
  void Decode(WireReader& r);
};

/// One ranked answer entry: base object id, the server-side object name
/// (CSV key or generator name; empty when unnamed), and Pr_rsky.
struct RankedEntry {
  int32_t object_id = 0;
  std::string name;
  double prob = 0.0;
};

/// Per-object outcome of a (scoped) goal-pruned solve, shipped so the
/// cluster coordinator can merge shard partials and decide whether a
/// refinement round is needed. `decision` mirrors ObjectDecision (u8).
/// Since wire v3.
struct ObjectReportWire {
  /// VIEW-LOCAL object id (the scope's own coordinate system), so the
  /// coordinator can issue [j, j+1) refinement scopes without knowing the
  /// view mapping. Base ids travel in RankedEntry, never here.
  int32_t object_id = 0;
  uint8_t decision = 0;  ///< ObjectDecision: 0 undecided, 1 exact, 2 excluded
  double lower = 0.0;
  double upper = 0.0;
};

struct QueryResponseWire {
  std::string solver;       ///< resolved concrete solver
  bool cache_hit = false;
  bool pushdown = false;
  bool complete = true;     ///< result->is_complete()
  std::string goal;         ///< QueryGoal::ToString() of the served goal
  /// CountNonZero for complete results; -1 for goal-pruned partials (no
  /// full vector exists to count).
  int32_t result_size = -1;
  std::vector<RankedEntry> ranked;
  double count_threshold = 0.0;
  WireSolverStats stats;
  /// Per-instance probabilities. Unscoped requests with include_instances
  /// ship the full vector (complete results only). Scoped requests ship
  /// only the scope's contiguous instance slice, partial results included —
  /// in-scope entries are exact by the scoped-goal contract.
  std::vector<double> instance_probs;
  /// View-local instance id of instance_probs[0]; 0 for full vectors.
  /// Since wire v3.
  int32_t instance_offset = 0;
  /// Per-object bounds/decisions of the *in-scope* objects (scoped
  /// requests only; empty otherwise). Since wire v3.
  std::vector<ObjectReportWire> object_reports;
  /// Distributed tracing (since wire v6): the trace id this reply belongs
  /// to (0 = untraced) and the server-side span subtree in the
  /// obs::SerializeSpans format (empty = untraced). A coordinator
  /// deserializes each shard's subtree and stitches it under its own
  /// scatter span.
  uint64_t trace_id = 0;
  std::string trace_spans;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Typed overload reply (kRetryLater): the server refused admission.
/// Since wire v3.
struct RetryLaterResponse {
  uint32_t retry_after_ms = 0;  ///< suggested backoff; 0 = "soon"
  std::string reason;           ///< which budget rejected (quota, pending)

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

struct StatsRequest {
  /// Empty = engine-level stats only; a registered name additionally fills
  /// the index-work counters for that dataset (bases aggregate their views).
  std::string dataset;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// One registered dataset/view in a STATS listing.
struct DatasetInfo {
  std::string name;
  int32_t num_objects = 0;
  int32_t num_instances = 0;
  int32_t dim = 0;
  bool is_view = false;
};

struct StatsResponse {
  // Engine result cache.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t pooled_contexts = 0;
  // Engine per-request latency (ring-buffer window; see ArspEngine).
  int64_t latency_count = 0;
  int64_t latency_window = 0;
  double latency_min_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::vector<DatasetInfo> datasets;
  /// Tail latency percentiles of the same ring window (appended in wire
  /// v6; declared here with the other latency fields for readability, but
  /// encoded after query_threads to keep the append-only evolution rule).
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  // Index-work counters of the requested dataset (present iff a name was
  // given and known): ExecutionContext::IndexBuildStats field-for-field.
  bool has_index_stats = false;
  int64_t kdtree_builds = 0;
  int64_t rtree_builds = 0;
  int64_t score_maps = 0;
  int64_t score_reuses = 0;
  int64_t parent_index_hits = 0;
  /// The daemon's active simd kernel dispatch arch (simd::ActiveArchName:
  /// "scalar", "avx2", "neon") — the server process's, which may differ
  /// from the client's. Since wire v2.
  std::string kernel_arch;
  // Index/score memory of the requested dataset (valid iff has_index_stats),
  // split into heap-resident vs snapshot-mapped bytes, plus the daemon
  // process's peak RSS (always filled; 0 when the platform cannot report
  // it). Since wire v4.
  int64_t index_bytes_resident = 0;
  int64_t index_bytes_mapped = 0;
  int64_t peak_rss_bytes = 0;
  /// The daemon's intra-query parallelism policy (EngineOptions::
  /// query_threads: 0 = auto, 1 = serial, N >= 2 = N workers). Since v5.
  int64_t query_threads = 0;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

struct DropRequest {
  std::string name;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Reply to kMetrics: the process's Prometheus text exposition — the exact
/// bytes `GET /metrics` on the daemon's --metrics-port serves, so wire
/// clients (arsp_cli --metrics) and HTTP scrapers see one truth.
/// Since wire v6.
struct MetricsResponse {
  std::string text;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Reply to kTraceGet: the most recent traced query the server retained
/// (id 0 and empty spans when none has been traced yet). Since wire v6.
struct TraceResponse {
  uint64_t trace_id = 0;
  /// obs::SerializeSpans format.
  std::string spans;

  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

/// Error reply: the server-side Status, code and message, so the client can
/// reconstruct an equivalent Status.
struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  static ErrorResponse From(const Status& status);
  Status ToStatus() const;
  std::string EncodePayload() const;
  Status DecodePayload(const std::string& bytes);
};

// ----------------------------------------------------------------- framing

/// A received frame: type + raw payload (decode with the matching message).
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Writes one complete frame to a blocking socket/pipe fd, looping over
/// short writes. InvalidArgument if the payload exceeds kMaxPayloadBytes;
/// Internal on write errors (EPIPE included — callers treat any error as a
/// dead connection).
Status SendFrame(int fd, MessageType type, const std::string& payload);

/// Reads one complete frame from a blocking fd. Validates magic, version,
/// and the max-frame guard before allocating the payload. A clean EOF
/// before any header byte returns NotFound("connection closed") — the
/// normal end of a connection; every other failure is InvalidArgument
/// (protocol violation) or Internal (I/O error).
StatusOr<Frame> RecvFrame(int fd);

}  // namespace net
}  // namespace arsp

#endif  // ARSP_NET_PROTOCOL_H_
