// Copyright 2026 The ARSP Authors.
//
// ArspServer — the long-lived query daemon behind arspd: a blocking TCP
// server holding exactly one ArspEngine plus a *named* dataset registry, so
// wire clients address datasets and views by name instead of by engine
// handle. Every query a client sends goes through the same engine paths an
// in-process caller uses — context pool, result cache, goal pushdown — which
// is what makes the amortization of a resident service real: one index
// build, many queries, across connections.
//
// Threading model (deliberately simple — blocking sockets, no event loop):
//   * one accept thread polls the listening socket;
//   * each accepted connection gets a dedicated handler thread that loops
//     RecvFrame → dispatch → SendFrame until the client disconnects.
//     Dedicated threads — NOT slots on a fixed pool — because a handler
//     occupies its thread for the connection's lifetime: pooling would cap
//     concurrent *connections* at the pool size, and on a small machine
//     (pool of 1) a second client deadlocks behind an idle first one.
//     `max_connections` bounds the thread count explicitly instead; excess
//     connections wait in the TCP backlog. Requests on one connection are
//     strictly sequential (responses cannot interleave); concurrency across
//     connections is the engine's own thread-safety.
//   * Shutdown() (SIGINT in arspd, or a SHUTDOWN message) is a clean drain:
//     stop accepting, shut down every live connection socket (which
//     unblocks their reads), then Wait() joins the accept thread and every
//     handler thread.
//
// Registry semantics:
//   * LOAD_DATASET binds a name to content (inline CSV text, a server-side
//     CSV path, or a GenerateFromSpec generator spec). Names are immutable
//     bindings: re-loading a name with identical content (fingerprint
//     match) idempotently returns the existing handle — the cross-
//     connection amortization clients rely on — while different content is
//     an InvalidArgument.
//   * ADD_VIEW binds a view name to a ViewSpec over a base name; view
//     handles are first-class query targets, and ranked answers carry
//     *base* object ids + names regardless of the window.
//   * DROP unbinds; dropping a base cascades to its views (mirroring
//     ArspEngine::DropDataset).

#ifndef ARSP_NET_SERVER_H_
#define ARSP_NET_SERVER_H_

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/net/backend.h"
#include "src/net/protocol.h"

namespace arsp {
namespace net {

/// The single-process backend: one ArspEngine plus the named registry.
/// This is what a plain arspd serves; the cluster layer also uses it
/// directly as an in-process shard (it is a ServiceBackend like any other).
class EngineBackend : public ServiceBackend {
 public:
  explicit EngineBackend(EngineOptions options = {});

  StatusOr<LoadDatasetResponse> Load(const LoadDatasetRequest& request) override;
  StatusOr<AddViewResponse> AddView(const AddViewRequest& request) override;
  StatusOr<QueryResponseWire> Query(const QueryRequestWire& request) override;
  StatusOr<StatsResponse> Stats(const StatsRequest& request) override;
  Status Drop(const DropRequest& request) override;

  /// The engine behind the registry (tests assert cache/index behavior).
  ArspEngine& engine() { return engine_; }

 private:
  /// One registered name: the engine handle behind it plus everything the
  /// wire layer needs to answer without re-deriving (names for ranked
  /// output, shape for listings, the content fingerprint for idempotent
  /// re-loads).
  struct NamedEntry {
    DatasetHandle handle;
    uint64_t fingerprint = 0;
    bool is_view = false;
    std::string view_spec_key;     ///< ViewSpec::CacheKey (views only)
    std::string base;              ///< base name (views only)
    std::vector<std::string> views;  ///< view names over this base
    /// Object names of the *base* dataset (ranked ids are base ids).
    std::shared_ptr<const std::vector<std::string>> names;
    int num_objects = 0;
    int num_instances = 0;
    int dim = 0;
  };

  ArspEngine engine_;
  /// Kept for STATS reporting (the engine does not expose its options).
  const int query_threads_;
  mutable std::mutex mu_;
  std::map<std::string, NamedEntry> registry_;
};

struct ServerOptions {
  /// Bind address. Defaults to loopback: arspd is a backend service; put a
  /// real ingress in front of it before exposing it.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Maximum concurrent connections (each holds one handler thread);
  /// 0 = unlimited. When at the cap, the accept loop leaves new
  /// connections in the TCP backlog until a slot frees.
  int max_connections = 0;
  /// Engine construction knobs (cache capacity, batch threads, ...) for the
  /// default EngineBackend; ignored when `backend` is set.
  EngineOptions engine;
  /// The request backend. Null (the default) builds an internal
  /// EngineBackend from `engine` — the classic single-process daemon. The
  /// cluster layer installs a Coordinator here.
  std::shared_ptr<ServiceBackend> backend;
  /// Optional admission gate for QUERY requests (see QueryGate). Null
  /// admits everything.
  std::shared_ptr<QueryGate> query_gate;
  /// Slow-query log threshold in milliseconds; negative disables (the
  /// default). When enabled, every QUERY is traced internally (the client
  /// does not see the forced spans unless it asked) and any request whose
  /// end-to-end handling exceeds the threshold logs one stderr line with
  /// its trace id, dataset, solver, goal, and per-phase breakdown.
  int slow_query_ms = -1;
};

/// The daemon's server object. Lifecycle: construct → Start() → (serve) →
/// Shutdown() → Wait(). Start/Shutdown/Wait are safe to call from different
/// threads; Shutdown is idempotent and callable from connection handlers
/// (the SHUTDOWN message) — it only signals, Wait() does the joining.
class ArspServer {
 public:
  explicit ArspServer(ServerOptions options = {});
  ~ArspServer();

  ArspServer(const ArspServer&) = delete;
  ArspServer& operator=(const ArspServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Internal on bind/listen
  /// failures (port in use, bad host).
  Status Start();

  /// The bound TCP port (the actual one when options.port was 0); -1 before
  /// Start().
  int port() const;

  /// Initiates a clean drain: stop accepting, unblock every live
  /// connection. Returns immediately; pair with Wait().
  void Shutdown();

  /// Blocks until the accept thread and every connection handler have
  /// finished. Returns immediately if Start() was never called.
  void Wait();

  /// True once Shutdown() ran or a SHUTDOWN message was served — the
  /// daemon's main loop polls this to know when to Wait().
  bool shutdown_requested() const;

  /// The engine behind the wire (tests assert cache/index behavior on it).
  /// Only valid for the default EngineBackend; CHECKs when a custom
  /// ServiceBackend was installed.
  ArspEngine& engine();

  /// Number of requests served since Start (all message types).
  int64_t requests_served() const;

 private:
  void AcceptLoop();
  /// `self` is this handler's node in connection_threads_; the handler
  /// splices it onto finished_threads_ on exit so it can be joined.
  void HandleConnection(int fd, std::list<std::thread>::iterator self);
  /// Joins every thread parked on finished_threads_. Called from the
  /// accept loop each tick (so a long-lived daemon reaps as it goes) and
  /// from Wait() for the final drain.
  void ReapFinishedHandlers();

  /// Dispatches one decoded frame; fills the reply (type + payload).
  /// Returns false when the connection must close (SHUTDOWN). `client_fd`
  /// identifies the connection to the admission gate.
  bool HandleRequest(int client_fd, const Frame& frame,
                     MessageType* reply_type, std::string* reply_payload);

  /// One stderr line for an over-threshold query: trace id, dataset,
  /// solver, goal, total, and the root span's per-phase child durations.
  void LogSlowQuery(const QueryRequestWire& request,
                    const QueryResponseWire& response, double elapsed_ms);

  ServerOptions options_;
  /// Set iff no custom backend was installed (the classic daemon).
  std::shared_ptr<EngineBackend> engine_backend_;
  /// The dispatch target — engine_backend_ or options_.backend.
  std::shared_ptr<ServiceBackend> backend_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::set<int> live_connections_;
  int active_connections_ = 0;
  int listen_fd_ = -1;
  int port_ = -1;
  bool started_ = false;
  bool stopping_ = false;
  int64_t requests_served_ = 0;
  /// Most recent traced query (explicit --trace or forced by the slow-query
  /// log), served back via the TRACE message. Guarded by mu_.
  uint64_t last_trace_id_ = 0;
  std::string last_trace_spans_;

  /// Live handler threads, one per open connection. A handler moves its
  /// own node to finished_threads_ (under mu_) just before exiting; only
  /// ReapFinishedHandlers joins, so no thread ever joins itself.
  std::list<std::thread> connection_threads_;
  std::list<std::thread> finished_threads_;
  std::thread accept_thread_;
};

}  // namespace net
}  // namespace arsp

#endif  // ARSP_NET_SERVER_H_
