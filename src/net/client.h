// Copyright 2026 The ARSP Authors.
//
// ArspClient — the thin client side of the arspd wire protocol: one
// blocking TCP connection, one typed method per message. arsp_cli
// --connect is a shell over this class; embedding applications can use it
// directly. Requests on one client are strictly sequential (the protocol
// has no interleaving); open several clients for concurrency — the daemon
// serves connections in parallel.

#ifndef ARSP_NET_CLIENT_H_
#define ARSP_NET_CLIENT_H_

#include <string>
#include <utility>

#include "src/common/status.h"
#include "src/net/protocol.h"

namespace arsp {
namespace net {

/// Splits "host:port" into its parts; InvalidArgument unless the port is a
/// valid TCP port (host may be a name or numeric address). Shared by
/// arsp_cli --connect and arspd flag parsing.
StatusOr<std::pair<std::string, int>> ParseHostPort(const std::string& spec);

/// One connection to an arspd. Move-only (owns the socket); every call
/// blocks until its response arrives. Not thread-safe — one client per
/// thread.
class ArspClient {
 public:
  ArspClient() = default;
  ~ArspClient();

  ArspClient(ArspClient&& other) noexcept;
  ArspClient& operator=(ArspClient&& other) noexcept;
  ArspClient(const ArspClient&) = delete;
  ArspClient& operator=(const ArspClient&) = delete;

  /// Connects to host:port. Internal on resolution/connection failure.
  static StatusOr<ArspClient> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Liveness probe.
  Status Ping();

  /// Registers (or idempotently re-registers) a named dataset.
  StatusOr<LoadDatasetResponse> LoadDataset(const LoadDatasetRequest& request);

  /// Registers a named view over a named base dataset.
  StatusOr<AddViewResponse> AddView(const AddViewRequest& request);

  /// Runs one query against a registered name.
  StatusOr<QueryResponseWire> Query(const QueryRequestWire& request);

  /// Engine + registry stats; a non-empty `dataset` adds its index-work
  /// counters.
  StatusOr<StatsResponse> Stats(const std::string& dataset = std::string());

  /// Unregisters a dataset or view (bases cascade to their views).
  Status Drop(const std::string& name);

  /// The daemon's process metrics as Prometheus text — the same bytes the
  /// HTTP /metrics endpoint serves. Since wire v6.
  StatusOr<MetricsResponse> Metrics();

  /// The most recent traced query the daemon retained (id 0 / empty spans
  /// when none). Since wire v6.
  StatusOr<TraceResponse> Trace();

  /// Asks the daemon to drain and exit. The connection is closed after the
  /// acknowledgment either way.
  Status Shutdown();

 private:
  /// Sends one request frame and receives the response. kError responses
  /// decode into their carried Status; a response of any type other than
  /// `expect` is an Internal protocol error.
  StatusOr<Frame> RoundTrip(MessageType type, const std::string& payload,
                            MessageType expect);

  int fd_ = -1;
};

}  // namespace net
}  // namespace arsp

#endif  // ARSP_NET_CLIENT_H_
