// Copyright 2026 The ARSP Authors.

#include "src/net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace arsp {
namespace net {

StatusOr<std::pair<std::string, int>> ParseHostPort(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("'" + spec +
                                   "' is not host:port (e.g. 127.0.0.1:7439)");
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end != port_str.c_str() + port_str.size() || port < 1 || port > 65535) {
    return Status::InvalidArgument("bad port '" + port_str +
                                   "' in '" + spec + "'");
  }
  return std::make_pair(spec.substr(0, colon), static_cast<int>(port));
}

ArspClient::~ArspClient() { Close(); }

ArspClient::ArspClient(ArspClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

ArspClient& ArspClient::operator=(ArspClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void ArspClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<ArspClient> ArspClient::Connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(port);
  const int gai =
      ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &resolved);
  if (gai != 0) {
    return Status::Internal("cannot resolve '" + host +
                            "': " + gai_strerror(gai));
  }
  int fd = -1;
  Status status = Status::Internal("no usable address");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status =
          Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      status = Status::OK();
      break;
    }
    status = Status::Internal("connect " + host + ":" + port_str + ": " +
                              std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (!status.ok()) return status;
  ArspClient client;
  client.fd_ = fd;
  return client;
}

StatusOr<Frame> ArspClient::RoundTrip(MessageType type,
                                      const std::string& payload,
                                      MessageType expect) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  ARSP_RETURN_IF_ERROR(SendFrame(fd_, type, payload));
  StatusOr<Frame> frame = RecvFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kError) {
    ErrorResponse error;
    const Status st = error.DecodePayload(frame->payload);
    if (!st.ok()) return st;
    return error.ToStatus();
  }
  if (frame->type == MessageType::kRetryLater) {
    RetryLaterResponse retry;
    const Status st = retry.DecodePayload(frame->payload);
    if (!st.ok()) return st;
    return Status::Unavailable(
        (retry.reason.empty() ? std::string("server overloaded")
                              : retry.reason) +
        " (retry after " + std::to_string(retry.retry_after_ms) + "ms)");
  }
  if (frame->type != expect) {
    return Status::Internal(std::string("expected ") +
                            MessageTypeName(expect) + " response, got " +
                            MessageTypeName(frame->type));
  }
  return frame;
}

Status ArspClient::Ping() {
  return RoundTrip(MessageType::kPing, std::string(), MessageType::kOk)
      .status();
}

StatusOr<LoadDatasetResponse> ArspClient::LoadDataset(
    const LoadDatasetRequest& request) {
  auto frame = RoundTrip(MessageType::kLoadDataset, request.EncodePayload(),
                         MessageType::kLoadResult);
  if (!frame.ok()) return frame.status();
  LoadDatasetResponse response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

StatusOr<AddViewResponse> ArspClient::AddView(const AddViewRequest& request) {
  auto frame = RoundTrip(MessageType::kAddView, request.EncodePayload(),
                         MessageType::kViewResult);
  if (!frame.ok()) return frame.status();
  AddViewResponse response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

StatusOr<QueryResponseWire> ArspClient::Query(
    const QueryRequestWire& request) {
  auto frame = RoundTrip(MessageType::kQuery, request.EncodePayload(),
                         MessageType::kQueryResult);
  if (!frame.ok()) return frame.status();
  QueryResponseWire response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

StatusOr<StatsResponse> ArspClient::Stats(const std::string& dataset) {
  StatsRequest request;
  request.dataset = dataset;
  auto frame = RoundTrip(MessageType::kStats, request.EncodePayload(),
                         MessageType::kStatsResult);
  if (!frame.ok()) return frame.status();
  StatsResponse response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

Status ArspClient::Drop(const std::string& name) {
  DropRequest request;
  request.name = name;
  return RoundTrip(MessageType::kDrop, request.EncodePayload(),
                   MessageType::kOk)
      .status();
}

StatusOr<MetricsResponse> ArspClient::Metrics() {
  auto frame = RoundTrip(MessageType::kMetrics, std::string(),
                         MessageType::kMetricsResult);
  if (!frame.ok()) return frame.status();
  MetricsResponse response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

StatusOr<TraceResponse> ArspClient::Trace() {
  auto frame = RoundTrip(MessageType::kTraceGet, std::string(),
                         MessageType::kTraceResult);
  if (!frame.ok()) return frame.status();
  TraceResponse response;
  ARSP_RETURN_IF_ERROR(response.DecodePayload(frame->payload));
  return response;
}

Status ArspClient::Shutdown() {
  const Status status =
      RoundTrip(MessageType::kShutdown, std::string(), MessageType::kOk)
          .status();
  Close();
  return status;
}

}  // namespace net
}  // namespace arsp
