// Copyright 2026 The ARSP Authors.

#include "src/net/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace arsp {
namespace net {

namespace {

// Every multi-byte integer on the wire is little-endian by construction
// (byte shifts, never memcpy of host-order words), so the protocol is
// endian-portable without per-platform code.
void PutU16(std::string& buf, uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xff));
  buf.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

// Blocking full-buffer write; loops over short writes and EINTR.
// MSG_NOSIGNAL: a peer that vanished mid-response must surface as EPIPE,
// not SIGPIPE-kill the daemon (frame fds are always sockets).
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Blocking full-buffer read. `*got` reports bytes read before EOF so the
// caller can distinguish a clean close (0 bytes) from a truncated frame.
Status ReadAll(int fd, char* data, size_t size, size_t* got) {
  *got = 0;
  while (*got < size) {
    const ssize_t n = ::read(fd, data + *got, size - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::NotFound("connection closed");
    }
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "PING";
    case MessageType::kLoadDataset: return "LOAD_DATASET";
    case MessageType::kAddView: return "ADD_VIEW";
    case MessageType::kQuery: return "QUERY";
    case MessageType::kStats: return "STATS";
    case MessageType::kDrop: return "DROP";
    case MessageType::kShutdown: return "SHUTDOWN";
    case MessageType::kMetrics: return "METRICS";
    case MessageType::kTraceGet: return "TRACE";
    case MessageType::kOk: return "OK";
    case MessageType::kError: return "ERROR";
    case MessageType::kLoadResult: return "LOAD_RESULT";
    case MessageType::kViewResult: return "VIEW_RESULT";
    case MessageType::kQueryResult: return "QUERY_RESULT";
    case MessageType::kStatsResult: return "STATS_RESULT";
    case MessageType::kRetryLater: return "RETRY_LATER";
    case MessageType::kMetricsResult: return "METRICS_RESULT";
    case MessageType::kTraceResult: return "TRACE_RESULT";
  }
  return "UNKNOWN";
}

// ------------------------------------------------------------- WireWriter

void WireWriter::U16(uint16_t v) { PutU16(buf_, v); }

void WireWriter::U32(uint32_t v) { PutU32(buf_, v); }

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::F64Vec(const std::vector<double>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (double x : v) F64(x);
}

void WireWriter::I32Vec(const std::vector<int>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (int x : v) I32(x);
}

void WireWriter::StrVec(const std::vector<std::string>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) Str(s);
}

// ------------------------------------------------------------- WireReader

bool WireReader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (buf_.size() - pos_ < n) {
    Fail("truncated payload");
    return false;
  }
  return true;
}

void WireReader::Fail(const std::string& what) {
  if (status_.ok()) {
    status_ = Status::InvalidArgument(
        what + " at offset " + std::to_string(pos_) + " of " +
        std::to_string(buf_.size()) + " bytes");
  }
}

uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(buf_[pos_++]);
}

uint16_t WireReader::U16() {
  if (!Need(2)) return 0;
  const uint16_t v =
      GetU16(reinterpret_cast<const unsigned char*>(buf_.data()) + pos_);
  pos_ += 2;
  return v;
}

uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  const uint32_t v =
      GetU32(reinterpret_cast<const unsigned char*>(buf_.data()) + pos_);
  pos_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string s = buf_.substr(pos_, len);
  pos_ += len;
  return s;
}

std::vector<double> WireReader::F64Vec() {
  const uint32_t count = U32();
  // Count-vs-remaining check before allocating: 8 bytes per element.
  if (!status_.ok() || buf_.size() - pos_ < static_cast<size_t>(count) * 8) {
    Fail("f64 vector count exceeds payload");
    return {};
  }
  std::vector<double> v;
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) v.push_back(F64());
  return v;
}

std::vector<int> WireReader::I32Vec() {
  const uint32_t count = U32();
  if (!status_.ok() || buf_.size() - pos_ < static_cast<size_t>(count) * 4) {
    Fail("i32 vector count exceeds payload");
    return {};
  }
  std::vector<int> v;
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) v.push_back(I32());
  return v;
}

std::vector<std::string> WireReader::StrVec() {
  const uint32_t count = U32();
  // Each element costs at least its 4-byte length prefix.
  if (!status_.ok() || buf_.size() - pos_ < static_cast<size_t>(count) * 4) {
    Fail("string vector count exceeds payload");
    return {};
  }
  std::vector<std::string> v;
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) v.push_back(Str());
  return v;
}

Status WireReader::Finish() const {
  if (!status_.ok()) return status_;
  if (pos_ != buf_.size()) {
    return Status::InvalidArgument(
        "trailing garbage: consumed " + std::to_string(pos_) + " of " +
        std::to_string(buf_.size()) + " payload bytes");
  }
  return Status::OK();
}

// ------------------------------------------------------------- messages

std::string LoadDatasetRequest::EncodePayload() const {
  WireWriter w;
  w.Str(name);
  w.U8(static_cast<uint8_t>(source));
  w.Str(payload);
  w.Bool(header);
  return w.Take();
}

Status LoadDatasetRequest::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  name = r.Str();
  const uint8_t src = r.U8();
  payload = r.Str();
  header = r.Bool();
  ARSP_RETURN_IF_ERROR(r.Finish());
  if (src > static_cast<uint8_t>(LoadSource::kGenerator)) {
    return Status::InvalidArgument("bad LoadSource " + std::to_string(src));
  }
  source = static_cast<LoadSource>(src);
  return Status::OK();
}

std::string LoadDatasetResponse::EncodePayload() const {
  WireWriter w;
  w.Str(name);
  w.I32(num_objects);
  w.I32(num_instances);
  w.I32(dim);
  w.Bool(reused);
  return w.Take();
}

Status LoadDatasetResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  name = r.Str();
  num_objects = r.I32();
  num_instances = r.I32();
  dim = r.I32();
  reused = r.Bool();
  return r.Finish();
}

std::string AddViewRequest::EncodePayload() const {
  WireWriter w;
  w.Str(base_name);
  w.Str(view_name);
  w.U8(static_cast<uint8_t>(spec.kind));
  w.I32(spec.prefix);
  w.I32Vec(spec.objects);
  return w.Take();
}

Status AddViewRequest::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  base_name = r.Str();
  view_name = r.Str();
  const uint8_t kind = r.U8();
  spec.prefix = r.I32();
  spec.objects = r.I32Vec();
  ARSP_RETURN_IF_ERROR(r.Finish());
  if (kind > static_cast<uint8_t>(ViewSpec::Kind::kSubset)) {
    return Status::InvalidArgument("bad ViewSpec kind " +
                                   std::to_string(kind));
  }
  spec.kind = static_cast<ViewSpec::Kind>(kind);
  return Status::OK();
}

std::string AddViewResponse::EncodePayload() const {
  WireWriter w;
  w.Str(name);
  w.I32(num_objects);
  w.I32(num_instances);
  w.I32(dim);
  return w.Take();
}

Status AddViewResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  name = r.Str();
  num_objects = r.I32();
  num_instances = r.I32();
  dim = r.I32();
  return r.Finish();
}

std::string QueryRequestWire::EncodePayload() const {
  WireWriter w;
  w.Str(dataset);
  w.Str(constraint_spec);
  w.Str(solver);
  w.StrVec(options);
  w.U8(static_cast<uint8_t>(derived_kind));
  w.I32(k);
  w.F64(threshold);
  w.I32(max_objects);
  w.Bool(use_cache);
  w.Bool(allow_pushdown);
  w.Bool(include_instances);
  w.I32(scope_begin);
  w.I32(scope_end);
  w.I32(parallelism);
  w.U64(trace_id);
  w.Bool(want_trace);
  return w.Take();
}

Status QueryRequestWire::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  dataset = r.Str();
  constraint_spec = r.Str();
  solver = r.Str();
  options = r.StrVec();
  const uint8_t kind = r.U8();
  k = r.I32();
  threshold = r.F64();
  max_objects = r.I32();
  use_cache = r.Bool();
  allow_pushdown = r.Bool();
  include_instances = r.Bool();
  scope_begin = r.I32();
  scope_end = r.I32();
  parallelism = r.I32();
  trace_id = r.U64();
  want_trace = r.Bool();
  ARSP_RETURN_IF_ERROR(r.Finish());
  if (kind > static_cast<uint8_t>(WireDerivedKind::kCountControlled)) {
    return Status::InvalidArgument("bad derived kind " +
                                   std::to_string(kind));
  }
  derived_kind = static_cast<WireDerivedKind>(kind);
  return Status::OK();
}

WireSolverStats WireSolverStats::From(const SolverStats& stats) {
  WireSolverStats w;
  w.solver = stats.solver;
  w.setup_millis = stats.setup_millis;
  w.solve_millis = stats.solve_millis;
  w.dominance_tests = stats.dominance_tests;
  w.nodes_visited = stats.nodes_visited;
  w.nodes_pruned = stats.nodes_pruned;
  w.index_probes = stats.index_probes;
  w.objects_pruned = stats.objects_pruned;
  w.bound_refinements = stats.bound_refinements;
  w.early_exit_depth = stats.early_exit_depth;
  w.index_bytes_resident = stats.index_bytes_resident;
  w.index_bytes_mapped = stats.index_bytes_mapped;
  w.peak_rss_bytes = stats.peak_rss_bytes;
  w.tasks_spawned = stats.tasks_spawned;
  w.tasks_stolen = stats.tasks_stolen;
  w.parallel_workers = stats.parallel_workers;
  return w;
}

SolverStats WireSolverStats::ToSolverStats() const {
  SolverStats s;
  s.solver = solver;
  s.setup_millis = setup_millis;
  s.solve_millis = solve_millis;
  s.dominance_tests = dominance_tests;
  s.nodes_visited = nodes_visited;
  s.nodes_pruned = nodes_pruned;
  s.index_probes = index_probes;
  s.objects_pruned = objects_pruned;
  s.bound_refinements = bound_refinements;
  s.early_exit_depth = early_exit_depth;
  s.index_bytes_resident = index_bytes_resident;
  s.index_bytes_mapped = index_bytes_mapped;
  s.peak_rss_bytes = peak_rss_bytes;
  s.tasks_spawned = tasks_spawned;
  s.tasks_stolen = tasks_stolen;
  s.parallel_workers = parallel_workers;
  return s;
}

void WireSolverStats::Encode(WireWriter& w) const {
  w.Str(solver);
  w.F64(setup_millis);
  w.F64(solve_millis);
  w.I64(dominance_tests);
  w.I64(nodes_visited);
  w.I64(nodes_pruned);
  w.I64(index_probes);
  w.I64(objects_pruned);
  w.I64(bound_refinements);
  w.I64(early_exit_depth);
  w.I64(index_bytes_resident);
  w.I64(index_bytes_mapped);
  w.I64(peak_rss_bytes);
  w.I64(tasks_spawned);
  w.I64(tasks_stolen);
  w.I64(parallel_workers);
}

void WireSolverStats::Decode(WireReader& r) {
  solver = r.Str();
  setup_millis = r.F64();
  solve_millis = r.F64();
  dominance_tests = r.I64();
  nodes_visited = r.I64();
  nodes_pruned = r.I64();
  index_probes = r.I64();
  objects_pruned = r.I64();
  bound_refinements = r.I64();
  early_exit_depth = r.I64();
  index_bytes_resident = r.I64();
  index_bytes_mapped = r.I64();
  peak_rss_bytes = r.I64();
  tasks_spawned = r.I64();
  tasks_stolen = r.I64();
  parallel_workers = r.I64();
}

std::string QueryResponseWire::EncodePayload() const {
  WireWriter w;
  w.Str(solver);
  w.Bool(cache_hit);
  w.Bool(pushdown);
  w.Bool(complete);
  w.Str(goal);
  w.I32(result_size);
  w.U32(static_cast<uint32_t>(ranked.size()));
  for (const RankedEntry& e : ranked) {
    w.I32(e.object_id);
    w.Str(e.name);
    w.F64(e.prob);
  }
  w.F64(count_threshold);
  stats.Encode(w);
  w.F64Vec(instance_probs);
  w.I32(instance_offset);
  w.U32(static_cast<uint32_t>(object_reports.size()));
  for (const ObjectReportWire& o : object_reports) {
    w.I32(o.object_id);
    w.U8(o.decision);
    w.F64(o.lower);
    w.F64(o.upper);
  }
  w.U64(trace_id);
  w.Str(trace_spans);
  return w.Take();
}

Status QueryResponseWire::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  solver = r.Str();
  cache_hit = r.Bool();
  pushdown = r.Bool();
  complete = r.Bool();
  goal = r.Str();
  result_size = r.I32();
  const uint32_t count = r.U32();
  // Each ranked entry costs at least 16 bytes (i32 + empty string + f64).
  if (r.status().ok() && count <= bytes.size() / 16 + 1) {
    ranked.clear();
    ranked.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      RankedEntry e;
      e.object_id = r.I32();
      e.name = r.Str();
      e.prob = r.F64();
      ranked.push_back(std::move(e));
    }
  } else if (r.status().ok()) {
    return Status::InvalidArgument("ranked entry count exceeds payload");
  }
  count_threshold = r.F64();
  stats.Decode(r);
  instance_probs = r.F64Vec();
  instance_offset = r.I32();
  const uint32_t report_count = r.U32();
  // Each object report costs exactly 21 bytes (i32 + u8 + 2×f64).
  if (r.status().ok() && report_count <= bytes.size() / 21 + 1) {
    object_reports.clear();
    object_reports.reserve(report_count);
    for (uint32_t i = 0; i < report_count; ++i) {
      ObjectReportWire o;
      o.object_id = r.I32();
      o.decision = r.U8();
      o.lower = r.F64();
      o.upper = r.F64();
      object_reports.push_back(o);
    }
  } else if (r.status().ok()) {
    return Status::InvalidArgument("object report count exceeds payload");
  }
  trace_id = r.U64();
  trace_spans = r.Str();
  ARSP_RETURN_IF_ERROR(r.Finish());
  for (const ObjectReportWire& o : object_reports) {
    if (o.decision > 2) {
      return Status::InvalidArgument("bad object decision " +
                                     std::to_string(o.decision));
    }
  }
  return Status::OK();
}

std::string RetryLaterResponse::EncodePayload() const {
  WireWriter w;
  w.U32(retry_after_ms);
  w.Str(reason);
  return w.Take();
}

Status RetryLaterResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  retry_after_ms = r.U32();
  reason = r.Str();
  return r.Finish();
}

std::string StatsRequest::EncodePayload() const {
  WireWriter w;
  w.Str(dataset);
  return w.Take();
}

Status StatsRequest::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  dataset = r.Str();
  return r.Finish();
}

std::string StatsResponse::EncodePayload() const {
  WireWriter w;
  w.I64(cache_hits);
  w.I64(cache_misses);
  w.U64(cache_entries);
  w.U64(pooled_contexts);
  w.I64(latency_count);
  w.I64(latency_window);
  w.F64(latency_min_ms);
  w.F64(latency_mean_ms);
  w.F64(latency_p50_ms);
  w.F64(latency_p95_ms);
  w.U32(static_cast<uint32_t>(datasets.size()));
  for (const DatasetInfo& d : datasets) {
    w.Str(d.name);
    w.I32(d.num_objects);
    w.I32(d.num_instances);
    w.I32(d.dim);
    w.Bool(d.is_view);
  }
  w.Bool(has_index_stats);
  w.I64(kdtree_builds);
  w.I64(rtree_builds);
  w.I64(score_maps);
  w.I64(score_reuses);
  w.I64(parent_index_hits);
  w.Str(kernel_arch);
  w.I64(index_bytes_resident);
  w.I64(index_bytes_mapped);
  w.I64(peak_rss_bytes);
  w.I64(query_threads);
  w.F64(latency_p99_ms);
  w.F64(latency_p999_ms);
  return w.Take();
}

Status StatsResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  cache_hits = r.I64();
  cache_misses = r.I64();
  cache_entries = r.U64();
  pooled_contexts = r.U64();
  latency_count = r.I64();
  latency_window = r.I64();
  latency_min_ms = r.F64();
  latency_mean_ms = r.F64();
  latency_p50_ms = r.F64();
  latency_p95_ms = r.F64();
  const uint32_t count = r.U32();
  // Each dataset entry costs at least 17 bytes.
  if (r.status().ok() && count <= bytes.size() / 17 + 1) {
    datasets.clear();
    datasets.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      DatasetInfo d;
      d.name = r.Str();
      d.num_objects = r.I32();
      d.num_instances = r.I32();
      d.dim = r.I32();
      d.is_view = r.Bool();
      datasets.push_back(std::move(d));
    }
  } else if (r.status().ok()) {
    return Status::InvalidArgument("dataset entry count exceeds payload");
  }
  has_index_stats = r.Bool();
  kdtree_builds = r.I64();
  rtree_builds = r.I64();
  score_maps = r.I64();
  score_reuses = r.I64();
  parent_index_hits = r.I64();
  kernel_arch = r.Str();
  index_bytes_resident = r.I64();
  index_bytes_mapped = r.I64();
  peak_rss_bytes = r.I64();
  query_threads = r.I64();
  latency_p99_ms = r.F64();
  latency_p999_ms = r.F64();
  return r.Finish();
}

std::string DropRequest::EncodePayload() const {
  WireWriter w;
  w.Str(name);
  return w.Take();
}

Status DropRequest::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  name = r.Str();
  return r.Finish();
}

std::string MetricsResponse::EncodePayload() const {
  WireWriter w;
  w.Str(text);
  return w.Take();
}

Status MetricsResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  text = r.Str();
  return r.Finish();
}

std::string TraceResponse::EncodePayload() const {
  WireWriter w;
  w.U64(trace_id);
  w.Str(spans);
  return w.Take();
}

Status TraceResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  trace_id = r.U64();
  spans = r.Str();
  return r.Finish();
}

ErrorResponse ErrorResponse::From(const Status& status) {
  ErrorResponse e;
  e.code = status.code();
  e.message = status.message();
  return e;
}

Status ErrorResponse::ToStatus() const {
  switch (code) {
    case StatusCode::kOk:
      return Status::Internal("error response carried OK code: " + message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Internal(message);
}

std::string ErrorResponse::EncodePayload() const {
  WireWriter w;
  w.U8(static_cast<uint8_t>(code));
  w.Str(message);
  return w.Take();
}

Status ErrorResponse::DecodePayload(const std::string& bytes) {
  WireReader r(bytes);
  const uint8_t c = r.U8();
  message = r.Str();
  ARSP_RETURN_IF_ERROR(r.Finish());
  if (c > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("bad status code " + std::to_string(c));
  }
  code = static_cast<StatusCode>(c);
  return Status::OK();
}

// ----------------------------------------------------------------- framing

Status SendFrame(int fd, MessageType type, const std::string& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte max-frame guard");
  }
  std::string header;
  header.reserve(8);
  PutU32(header, static_cast<uint32_t>(payload.size()));
  PutU16(header, kWireMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(type));
  ARSP_RETURN_IF_ERROR(WriteAll(fd, header.data(), header.size()));
  return WriteAll(fd, payload.data(), payload.size());
}

StatusOr<Frame> RecvFrame(int fd) {
  char header[8];
  size_t got = 0;
  const Status hs = ReadAll(fd, header, sizeof(header), &got);
  if (!hs.ok()) {
    // EOF exactly on a frame boundary is the clean end of a connection;
    // EOF mid-header is a truncated frame.
    if (hs.code() == StatusCode::kNotFound && got > 0) {
      return Status::InvalidArgument("truncated frame header");
    }
    return hs;
  }
  const unsigned char* h = reinterpret_cast<const unsigned char*>(header);
  const uint32_t length = GetU32(h);
  const uint16_t magic = GetU16(h + 4);
  const uint8_t version = h[6];
  const uint8_t type = h[7];
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic (not an arspd peer?)");
  }
  if (version > kWireVersion) {
    return Status::InvalidArgument(
        "peer speaks protocol version " + std::to_string(version) +
        ", this build speaks " + std::to_string(kWireVersion));
  }
  if (length > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(kMaxPayloadBytes) + "-byte max-frame guard");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    const Status ps = ReadAll(fd, frame.payload.data(), length, &got);
    if (!ps.ok()) {
      if (ps.code() == StatusCode::kNotFound) {
        return Status::InvalidArgument("truncated frame payload");
      }
      return ps;
    }
  }
  return frame;
}

}  // namespace net
}  // namespace arsp
