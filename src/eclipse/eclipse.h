// Copyright 2026 The ARSP Authors.
//
// Eclipse queries on certain datasets (Liu et al. [2], revisited in §IV/§V-D
// of the paper): retrieve all objects not eclipse-dominated — i.e. not
// F-dominated under weight ratio constraints — by any other object. The
// eclipse is always a subset of the skyline, so every algorithm here first
// filters to the skyline and then resolves F-dominance among skyline points.
//
// Algorithms:
//  * EclipseBrute    — all-pairs Theorem-5 tests over the whole dataset
//                      (ground truth for tests).
//  * EclipsePairwise — O(s²) pairwise tests over the skyline; models the
//                      reporting-phase cost of QUAD [2] (see DESIGN.md
//                      "Substitutions").
//  * EclipseDualS    — the paper's DUAL-S: per candidate, 2^{d-1} emptiness
//                      probes (orthant ∧ half-space of Eq. 6) on a kd-tree
//                      over the skyline. O(s · 2^{d-1} log s) probes.

#ifndef ARSP_ECLIPSE_ECLIPSE_H_
#define ARSP_ECLIPSE_ECLIPSE_H_

#include <memory>
#include <vector>

#include "src/geometry/point.h"
#include "src/prefs/weight_ratio.h"

namespace arsp {

/// Ground truth: indices of points not F-dominated by any other point,
/// via all-pairs Theorem-5 tests. O(n² d).
std::vector<int> ComputeEclipseBrute(const std::vector<Point>& points,
                                     const WeightRatioConstraints& wr);

/// Skyline filter + pairwise Theorem-5 tests (simple O(s²) baseline).
std::vector<int> ComputeEclipsePairwise(const std::vector<Point>& points,
                                        const WeightRatioConstraints& wr);

/// Pairwise resolution over a precomputed candidate set (benchmarks time
/// this separately from the skyline filter). `candidates` holds indices
/// into `points`; a candidate is reported unless another candidate
/// F-dominates it.
std::vector<int> ResolveEclipsePairwise(const std::vector<Point>& points,
                                        const std::vector<int>& candidates,
                                        const WeightRatioConstraints& wr);

/// Skyline filter + kd-tree half-space emptiness probes (DUAL-S).
std::vector<int> ComputeEclipseDualS(const std::vector<Point>& points,
                                     const WeightRatioConstraints& wr);

/// Prepared DUAL-S: the skyline filter and the kd-tree over it are built
/// once (the paper's preprocessing via the shift strategy) and each query
/// costs only the 2^{d-1} emptiness probes per skyline candidate —
/// O(s · 2^{d-1} log s). This is the fair counterpart to QuadEclipseIndex
/// in the Fig. 8 comparison.
class DualSEclipseIndex {
 public:
  /// Builds the skyline and the kd-tree over it.
  explicit DualSEclipseIndex(const std::vector<Point>& points);
  ~DualSEclipseIndex();

  DualSEclipseIndex(DualSEclipseIndex&&) noexcept;
  DualSEclipseIndex& operator=(DualSEclipseIndex&&) noexcept;

  /// Eclipse query under `wr`; indices refer to the original point set.
  std::vector<int> Query(const WeightRatioConstraints& wr) const;

  /// Skyline size s.
  int skyline_size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace arsp

#endif  // ARSP_ECLIPSE_ECLIPSE_H_
