// Copyright 2026 The ARSP Authors.

#include "src/eclipse/quad_index.h"

#include <algorithm>

#include "src/core/certain_rskyline.h"

namespace arsp {

QuadEclipseIndex::QuadEclipseIndex(const std::vector<Point>& points,
                                   const Options& options)
    : dim_(points.empty() ? 0 : points.front().dim()), options_(options) {
  skyline_ = ComputeSkyline(points);
  sky_points_.reserve(skyline_.size());
  for (int idx : skyline_) {
    sky_points_.push_back(points[static_cast<size_t>(idx)]);
  }

  const int s = static_cast<int>(sky_points_.size());
  pairs_.reserve(static_cast<size_t>(s) * (s - 1) / 2);
  for (int a = 0; a < s; ++a) {
    for (int b = a + 1; b < s; ++b) {
      PairPlane plane;
      plane.a = a;
      plane.b = b;
      plane.coef.resize(static_cast<size_t>(dim_ - 1));
      for (int k = 0; k < dim_ - 1; ++k) {
        plane.coef[static_cast<size_t>(k)] =
            sky_points_[static_cast<size_t>(a)][k] -
            sky_points_[static_cast<size_t>(b)][k];
      }
      plane.offset = sky_points_[static_cast<size_t>(a)][dim_ - 1] -
                     sky_points_[static_cast<size_t>(b)][dim_ - 1];
      pairs_.push_back(std::move(plane));
    }
  }

  root_ = std::make_unique<Node>();
  root_->lo = Point(dim_ - 1);
  root_->hi = Point(dim_ - 1);
  for (int k = 0; k < dim_ - 1; ++k) {
    root_->lo[k] = options_.ratio_lo;
    root_->hi[k] = options_.ratio_hi;
  }
  root_->planes.resize(pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    root_->planes[i] = static_cast<int>(i);
  }
  num_nodes_ = 1;
  total_plane_refs_ = static_cast<long long>(pairs_.size());
  if (options_.max_depth <= 0) {
    // Adaptive default: keep the node count civilised as fan-out grows.
    static const int kDepthByRatioDims[] = {0, 12, 10, 7, 5, 4};
    const int r = std::min(dim_ - 1, 5);
    options_.max_depth = kDepthByRatioDims[r];
  }
  Build(root_.get(), 0);
}

void QuadEclipseIndex::MinMaxOverBox(const PairPlane& plane, const Point& lo,
                                     const Point& hi, double* min_out,
                                     double* max_out) {
  double lo_sum = plane.offset;
  double hi_sum = plane.offset;
  for (size_t k = 0; k < plane.coef.size(); ++k) {
    const double c = plane.coef[k];
    if (c >= 0.0) {
      lo_sum += c * lo[static_cast<int>(k)];
      hi_sum += c * hi[static_cast<int>(k)];
    } else {
      lo_sum += c * hi[static_cast<int>(k)];
      hi_sum += c * lo[static_cast<int>(k)];
    }
  }
  *min_out = lo_sum;
  *max_out = hi_sum;
}

void QuadEclipseIndex::Build(Node* node, int depth) {
  height_ = std::max(height_, depth);
  if (static_cast<int>(node->planes.size()) <= options_.leaf_size ||
      depth >= options_.max_depth || num_nodes_ >= options_.max_nodes ||
      total_plane_refs_ >= options_.max_plane_refs) {
    return;
  }
  const int r = dim_ - 1;
  Point center(r);
  for (int k = 0; k < r; ++k) {
    center[k] = 0.5 * (node->lo[k] + node->hi[k]);
  }
  // 2^{d-1} children — the fan-out the paper blames for QUAD's poor
  // scaling in d.
  for (int code = 0; code < (1 << r); ++code) {
    auto child = std::make_unique<Node>();
    child->lo = node->lo;
    child->hi = node->hi;
    for (int k = 0; k < r; ++k) {
      if ((code >> k) & 1) {
        child->lo[k] = center[k];
      } else {
        child->hi[k] = center[k];
      }
    }
    for (int plane_id : node->planes) {
      double min_v, max_v;
      MinMaxOverBox(pairs_[static_cast<size_t>(plane_id)], child->lo,
                    child->hi, &min_v, &max_v);
      if (min_v < 0.0 && max_v > 0.0) {
        child->planes.push_back(plane_id);
      }
    }
    if (!child->planes.empty()) {
      ++num_nodes_;
      total_plane_refs_ += static_cast<long long>(child->planes.size());
      Node* child_ptr = child.get();
      node->children.push_back(std::move(child));
      Build(child_ptr, depth + 1);
    }
  }
  if (node->children.empty()) {
    // No child kept any hyperplane (they all became sign-definite exactly
    // at the split); keep this node as a leaf.
    return;
  }
  total_plane_refs_ -= static_cast<long long>(node->planes.size());
  node->planes.clear();
  node->planes.shrink_to_fit();
}

void QuadEclipseIndex::CollectCrossing(const Node* node, const Point& qlo,
                                       const Point& qhi,
                                       std::vector<char>* crossing) const {
  // Skip cells disjoint from the query window.
  for (int k = 0; k < dim_ - 1; ++k) {
    if (node->hi[k] < qlo[k] || node->lo[k] > qhi[k]) return;
  }
  if (node->is_leaf()) {
    for (int plane_id : node->planes) {
      if ((*crossing)[static_cast<size_t>(plane_id)]) continue;
      double min_v, max_v;
      MinMaxOverBox(pairs_[static_cast<size_t>(plane_id)], qlo, qhi, &min_v,
                    &max_v);
      if (min_v < 0.0 && max_v > 0.0) {
        (*crossing)[static_cast<size_t>(plane_id)] = 1;
      }
    }
    return;
  }
  for (const auto& child : node->children) {
    CollectCrossing(child.get(), qlo, qhi, crossing);
  }
}

std::vector<int> QuadEclipseIndex::Query(
    const WeightRatioConstraints& wr) const {
  ARSP_CHECK_MSG(wr.dim() == dim_,
                 "query dimensionality %d != indexed dimensionality %d",
                 wr.dim(), dim_);
  const int r = dim_ - 1;
  Point qlo(r), qhi(r);
  for (int k = 0; k < r; ++k) {
    qlo[k] = wr.lo(k);
    qhi[k] = wr.hi(k);
  }

  // Window query on the intersection index: hyperplanes crossing q. These
  // pairs trade wins inside q, so they dominate in neither direction.
  std::vector<char> crossing(pairs_.size(), 0);
  if (root_ != nullptr && !pairs_.empty()) {
    CollectCrossing(root_.get(), qlo, qhi, &crossing);
  }

  // Resolution sweep ("order vectors" in [2]): every non-crossing pair is
  // sign-definite over q; one corner evaluation decides who dominates.
  std::vector<char> dominated(sky_points_.size(), 0);
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (crossing[i]) continue;
    const PairPlane& plane = pairs_[i];
    double min_v, max_v;
    MinMaxOverBox(plane, qlo, qhi, &min_v, &max_v);
    if (max_v <= 0.0) {
      dominated[static_cast<size_t>(plane.b)] = 1;  // a beats b everywhere
    }
    if (min_v >= 0.0) {
      dominated[static_cast<size_t>(plane.a)] = 1;  // b beats a everywhere
    }
  }

  std::vector<int> eclipse;
  for (size_t i = 0; i < sky_points_.size(); ++i) {
    if (!dominated[i]) eclipse.push_back(skyline_[i]);
  }
  std::sort(eclipse.begin(), eclipse.end());
  return eclipse;
}

}  // namespace arsp
