// Copyright 2026 The ARSP Authors.

#include "src/eclipse/eclipse.h"

#include <algorithm>

#include "src/core/certain_rskyline.h"
#include "src/core/dual_algorithm.h"
#include "src/index/kdtree.h"
#include "src/prefs/fdominance.h"

namespace arsp {

namespace {

constexpr double kBelowEps = 1e-9;

// Resolves F-dominance among the skyline candidates pairwise; a witness
// dominator of any point can always be found inside the skyline (a minimal
// element below it), so testing within the skyline is complete.
std::vector<int> PairwiseOverCandidates(const std::vector<Point>& points,
                                        const std::vector<int>& candidates,
                                        const WeightRatioConstraints& wr) {
  std::vector<int> eclipse;
  for (int t : candidates) {
    bool dominated = false;
    for (int s : candidates) {
      if (s == t) continue;
      if (FDominatesWeightRatio(points[static_cast<size_t>(s)],
                                points[static_cast<size_t>(t)], wr)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) eclipse.push_back(t);
  }
  std::sort(eclipse.begin(), eclipse.end());
  return eclipse;
}

}  // namespace

std::vector<int> ComputeEclipseBrute(const std::vector<Point>& points,
                                     const WeightRatioConstraints& wr) {
  std::vector<int> all(points.size());
  for (size_t i = 0; i < points.size(); ++i) all[i] = static_cast<int>(i);
  return PairwiseOverCandidates(points, all, wr);
}

std::vector<int> ComputeEclipsePairwise(const std::vector<Point>& points,
                                        const WeightRatioConstraints& wr) {
  return PairwiseOverCandidates(points, ComputeSkyline(points), wr);
}

std::vector<int> ResolveEclipsePairwise(const std::vector<Point>& points,
                                        const std::vector<int>& candidates,
                                        const WeightRatioConstraints& wr) {
  return PairwiseOverCandidates(points, candidates, wr);
}

struct DualSEclipseIndex::Impl {
  std::vector<int> skyline;       // original indices
  std::vector<Point> sky_points;  // skyline coordinates (by skyline order)
  KdTree tree;

  explicit Impl(const std::vector<Point>& points)
      : skyline(ComputeSkyline(points)), tree(MakeItems(points, skyline)) {
    sky_points.reserve(skyline.size());
    for (int idx : skyline) {
      sky_points.push_back(points[static_cast<size_t>(idx)]);
    }
  }

  static std::vector<KdItem> MakeItems(const std::vector<Point>& points,
                                       const std::vector<int>& skyline) {
    std::vector<KdItem> items;
    items.reserve(skyline.size());
    for (int idx : skyline) {
      items.push_back(KdItem{points[static_cast<size_t>(idx)], idx, 1.0});
    }
    return items;
  }
};

DualSEclipseIndex::DualSEclipseIndex(const std::vector<Point>& points)
    : impl_(std::make_unique<Impl>(points)) {}

DualSEclipseIndex::~DualSEclipseIndex() = default;
DualSEclipseIndex::DualSEclipseIndex(DualSEclipseIndex&&) noexcept = default;
DualSEclipseIndex& DualSEclipseIndex::operator=(DualSEclipseIndex&&) noexcept =
    default;

int DualSEclipseIndex::skyline_size() const {
  return static_cast<int>(impl_->skyline.size());
}

std::vector<int> DualSEclipseIndex::Query(
    const WeightRatioConstraints& wr) const {
  const int d = wr.dim();
  const Mbr& bounds = impl_->tree.root_mbr();
  std::vector<int> eclipse;
  for (size_t pos = 0; pos < impl_->skyline.size(); ++pos) {
    const int idx = impl_->skyline[pos];
    const Point& t = impl_->sky_points[pos];
    bool dominated = false;
    for (int k = 0; k < (1 << (d - 1)) && !dominated; ++k) {
      Point lo = bounds.min_corner();
      Point hi = bounds.max_corner();
      bool feasible = true;
      for (int i = 0; i < d - 1 && feasible; ++i) {
        if ((k >> i) & 1) {
          lo[i] = t[i];
          feasible = t[i] <= hi[i];
        } else {
          hi[i] = t[i];
          feasible = lo[i] <= t[i];
        }
      }
      if (!feasible) continue;
      // At a shared orthant boundary (s[i] == t[i]) the l/h coefficient
      // multiplies zero, so a hit in an adjacent region's probe is still a
      // genuine F-dominator — no exact region check needed for emptiness.
      dominated = impl_->tree.ExistsInBoxBelow(
          Mbr(lo, hi), MakeRegionHyperplane(t, k, wr), kBelowEps, idx);
    }
    if (!dominated) eclipse.push_back(idx);
  }
  std::sort(eclipse.begin(), eclipse.end());
  return eclipse;
}

std::vector<int> ComputeEclipseDualS(const std::vector<Point>& points,
                                     const WeightRatioConstraints& wr) {
  return DualSEclipseIndex(points).Query(wr);
}

}  // namespace arsp
