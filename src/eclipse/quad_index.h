// Copyright 2026 The ARSP Authors.
//
// QUAD — the index-based eclipse algorithm of Liu et al. [2], rebuilt from
// the description in the ARSP paper's §V-D: an "Intersection Index"
// quadtree over the pairwise score-difference hyperplanes in ratio space.
//
// For skyline points i and j, the hyperplane
//     diff_ij(r) = Σ_{k<d-1} (t_i[k] - t_j[k]) r_k + (t_i[d] - t_j[d]) = 0
// splits ratio space into the region where i beats j and the region where j
// beats i. A query box q = Π [l_k, h_k] is answered by a window query that
// returns the hyperplanes crossing q (those pairs trade wins inside q and
// dominate neither way), followed by an O(s²) iteration that resolves the
// remaining pairs by a corner evaluation and reports the objects that no
// one dominates ("zero order vector").
//
// The structure reproduces the properties the paper measures: 2^{d-1}
// fan-out at every node, slowly shrinking per-node hyperplane lists (and
// hence tall trees) in higher dimensions, and query cost driven by the
// number of hyperplanes the window query returns.

#ifndef ARSP_ECLIPSE_QUAD_INDEX_H_
#define ARSP_ECLIPSE_QUAD_INDEX_H_

#include <memory>
#include <vector>

#include "src/geometry/point.h"
#include "src/prefs/weight_ratio.h"

namespace arsp {

/// Intersection-index eclipse structure (QUAD [2]).
class QuadEclipseIndex {
 public:
  struct Options {
    /// Ratio-space bounding box covered by the index; queries may extend
    /// beyond it (crossing pairs outside the box dominate neither way, so
    /// correctness is unaffected — only the measured traversal changes).
    double ratio_lo = 0.02;
    double ratio_hi = 10.0;
    /// Split a node while it holds more than this many hyperplanes...
    int leaf_size = 16;
    /// ...but never deeper than this; 0 picks a dimension-adaptive default
    /// (the 2^{d-1} fan-out makes deep trees explode combinatorially, the
    /// pathology the paper measures).
    int max_depth = 0;
    /// Hard budget on quadtree nodes; splitting stops once reached.
    int max_nodes = 200000;
    /// Hard budget on stored hyperplane references across all nodes
    /// (memory guard; ~4 bytes each). Splitting stops once reached.
    long long max_plane_refs = 8000000;
  };

  /// Builds the skyline, the pairwise hyperplanes, and the quadtree with
  /// default options.
  explicit QuadEclipseIndex(const std::vector<Point>& points)
      : QuadEclipseIndex(points, Options()) {}

  /// Builds with explicit options.
  QuadEclipseIndex(const std::vector<Point>& points, const Options& options);

  /// Eclipse query: indices (into the original point set) of points not
  /// F-dominated under `wr`. Requires wr.dim() == data dimension.
  std::vector<int> Query(const WeightRatioConstraints& wr) const;

  /// Skyline size s (the index is built over the skyline only).
  int skyline_size() const { return static_cast<int>(skyline_.size()); }
  /// Number of pairwise hyperplanes s(s-1)/2.
  int num_hyperplanes() const { return static_cast<int>(pairs_.size()); }
  /// Number of quadtree nodes (the paper's tree-size pathology measure).
  int num_nodes() const { return num_nodes_; }
  /// Maximum node depth reached.
  int height() const { return height_; }
  /// Total stored hyperplane references across nodes; divided by
  /// num_hyperplanes() this measures how many cells each hyperplane
  /// crosses — the replication factor behind QUAD's memory growth.
  long long total_plane_refs() const { return total_plane_refs_; }

 private:
  // One pairwise hyperplane: diff(r) = coef · r + offset, between skyline
  // list positions a and b (diff = score_a - score_b).
  struct PairPlane {
    std::vector<double> coef;
    double offset;
    int a, b;
  };

  struct Node {
    Point lo, hi;                 // cell box in ratio space
    std::vector<int> planes;      // hyperplanes indefinite over the cell
    std::vector<std::unique_ptr<Node>> children;
    bool is_leaf() const { return children.empty(); }
  };

  void Build(Node* node, int depth);
  static void MinMaxOverBox(const PairPlane& plane, const Point& lo,
                            const Point& hi, double* min_out,
                            double* max_out);
  void CollectCrossing(const Node* node, const Point& qlo, const Point& qhi,
                       std::vector<char>* crossing) const;

  int dim_;
  Options options_;
  std::vector<int> skyline_;      // original indices
  std::vector<Point> sky_points_;
  std::vector<PairPlane> pairs_;
  std::unique_ptr<Node> root_;
  int num_nodes_ = 0;
  int height_ = 0;
  long long total_plane_refs_ = 0;
};

}  // namespace arsp

#endif  // ARSP_ECLIPSE_QUAD_INDEX_H_
