// Copyright 2026 The ARSP Authors.

#include "src/index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "src/common/aligned.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {

namespace {

constexpr int32_t kIntMax = 2147483647;

// Volume of the box [lo, hi]; 0 for empty boxes. Mirrors Mbr::Volume().
double RowVolume(const double* lo, const double* hi, int dim) {
  if (lo[0] > hi[0]) return 0.0;
  double v = 1.0;
  for (int i = 0; i < dim; ++i) v *= (hi[i] - lo[i]);
  return v;
}

// Volume increase of [lo, hi] when extended to cover the point row `p`.
// Mirrors mbr.Enlargement(Mbr::OfPoint(p)) operation-for-operation so the
// flat insert descent picks the same child the pointer tree did.
double RowEnlargementByPoint(const double* lo, const double* hi,
                             const double* p, int dim) {
  double merged = 1.0;
  for (int i = 0; i < dim; ++i) {
    merged *= (std::max(hi[i], p[i]) - std::min(lo[i], p[i]));
  }
  return merged - RowVolume(lo, hi, dim);
}

// Quadratic-split seed selection: the pair wasting the most dead volume.
template <typename GetMbr>
std::pair<int, int> PickSeeds(int count, const GetMbr& mbr_of) {
  int seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (int i = 0; i < count; ++i) {
    for (int j = i + 1; j < count; ++j) {
      Mbr merged = mbr_of(i);
      merged.Extend(mbr_of(j));
      const double waste =
          merged.Volume() - mbr_of(i).Volume() - mbr_of(j).Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

}  // namespace

RTree::RTree(int dim, int max_entries)
    : dim_(dim), max_entries_(max_entries), cap_(max_entries + 1) {
  ARSP_CHECK(dim >= 1);
  ARSP_CHECK(max_entries >= 4);
}

Mbr RTree::node_mbr(int id) const {
  Mbr box = Mbr::Empty(dim_);
  if (nodes_[static_cast<size_t>(id)].count > 0) {
    box.ExtendRow(node_lo(id));
    box.ExtendRow(node_hi(id));
  }
  return box;
}

ColumnBytes RTree::memory_bytes() const {
  ColumnBytes bytes;
  bytes.Add(nodes_);
  bytes.Add(node_bounds_);
  bytes.Add(node_kids_);
  bytes.Add(entry_coords_);
  bytes.Add(entry_weights_);
  bytes.Add(entry_ids_);
  return bytes;
}

int RTree::AllocNode(bool leaf) {
  const int id = static_cast<int>(nodes_.size());
  RtNode node;
  node.leaf = leaf ? 1 : 0;
  nodes_.push_back(node);
  node_kids_.resize(node_kids_.size() + static_cast<size_t>(cap_), -1);
  node_bounds_.resize(node_bounds_.size() + 2 * static_cast<size_t>(dim_));
  double* lo = node_bounds_.mutable_data() +
               static_cast<size_t>(id) * 2 * static_cast<size_t>(dim_);
  for (int k = 0; k < dim_; ++k) {
    lo[k] = std::numeric_limits<double>::infinity();
    lo[dim_ + k] = -std::numeric_limits<double>::infinity();
  }
  return id;
}

int RTree::AppendEntryRow(const double* coords, double weight, int id) {
  const int e = static_cast<int>(entry_ids_.size());
  entry_coords_.resize(entry_coords_.size() + static_cast<size_t>(dim_));
  std::copy(coords, coords + dim_,
            entry_coords_.mutable_data() +
                static_cast<size_t>(e) * static_cast<size_t>(dim_));
  entry_weights_.push_back(weight);
  entry_ids_.push_back(id);
  return e;
}

void RTree::RecomputeNode(int id) {
  // Same kid iteration order as the pointer tree's RecomputeNode, so every
  // weight_sum accumulates in the identical floating-point order.
  double* lo = node_bounds_.mutable_data() +
               static_cast<size_t>(id) * 2 * static_cast<size_t>(dim_);
  double* hi = lo + dim_;
  for (int k = 0; k < dim_; ++k) {
    lo[k] = std::numeric_limits<double>::infinity();
    hi[k] = -std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  int32_t min_id = kIntMax;
  RtNode& node = nodes_.mutable_data()[id];
  const int32_t* kids =
      node_kids_.data() + static_cast<size_t>(id) * static_cast<size_t>(cap_);
  if (node.leaf != 0) {
    for (int32_t k = 0; k < node.count; ++k) {
      const int e = kids[k];
      const double* row = entry_coords(e);
      for (int i = 0; i < dim_; ++i) {
        lo[i] = std::min(lo[i], row[i]);
        hi[i] = std::max(hi[i], row[i]);
      }
      sum += entry_weights_[static_cast<size_t>(e)];
      min_id = std::min(min_id, entry_ids_[static_cast<size_t>(e)]);
    }
  } else {
    for (int32_t k = 0; k < node.count; ++k) {
      const int child = kids[k];
      const double* clo = node_lo(child);
      const double* chi = node_hi(child);
      for (int i = 0; i < dim_; ++i) {
        lo[i] = std::min(lo[i], clo[i]);
        hi[i] = std::max(hi[i], chi[i]);
      }
      sum += nodes_[static_cast<size_t>(child)].weight_sum;
      min_id = std::min(min_id, nodes_[static_cast<size_t>(child)].min_id);
    }
  }
  node.weight_sum = sum;
  node.min_id = min_id;
}

// ---------------------------------------------------------------------------
// STR bulk load
// ---------------------------------------------------------------------------

int RTree::BuildStr(const double* coords, const double* weights,
                    const int32_t* ids, int32_t* perm, int begin, int end,
                    int level_hint) {
  const int n = end - begin;
  if (n <= max_entries_) {
    const int node = AllocNode(/*leaf=*/true);
    for (int i = begin; i < end; ++i) {
      const int32_t src = perm[i];
      const int e = AppendEntryRow(
          coords + static_cast<size_t>(src) * static_cast<size_t>(dim_),
          weights[src], ids[src]);
      node_kids_.mutable_data()[static_cast<size_t>(node) *
                                    static_cast<size_t>(cap_) +
                                static_cast<size_t>(i - begin)] = e;
    }
    nodes_.mutable_data()[node].count = n;
    RecomputeNode(node);
    return node;
  }

  const int node = AllocNode(/*leaf=*/false);

  // Capacity of one child subtree: the largest power of max_entries_ < n.
  long long child_cap = max_entries_;
  while (child_cap * max_entries_ < n) child_cap *= max_entries_;

  // Sorting the index permutation runs the exact comparison sequence sorting
  // the entry records would, so chunk boundaries — and with them every node's
  // kid order and aggregate accumulation order — match the record sort.
  const int sort_dim = level_hint % dim_;
  const size_t d = static_cast<size_t>(dim_);
  const size_t sd = static_cast<size_t>(sort_dim);
  std::sort(perm + begin, perm + end, [coords, d, sd](int32_t a, int32_t b) {
    return coords[static_cast<size_t>(a) * d + sd] <
           coords[static_cast<size_t>(b) * d + sd];
  });

  int count = 0;
  for (int chunk = begin; chunk < end; chunk += static_cast<int>(child_cap)) {
    const int chunk_end =
        static_cast<int>(std::min<long long>(chunk + child_cap, end));
    const int child =
        BuildStr(coords, weights, ids, perm, chunk, chunk_end, level_hint + 1);
    // Re-resolve the slot pointer each time: the recursion grows the arena.
    node_kids_.mutable_data()[static_cast<size_t>(node) *
                                  static_cast<size_t>(cap_) +
                              static_cast<size_t>(count)] = child;
    ++count;
  }
  nodes_.mutable_data()[node].count = count;
  RecomputeNode(node);
  return node;
}

RTree RTree::BulkLoadRaw(int dim, int max_entries, const double* coords,
                         const double* weights, const int32_t* ids, int n) {
  RTree tree(dim, max_entries);
  tree.size_ = n;
  if (n == 0) return tree;
  AlignedVector<int32_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  const size_t node_estimate =
      2 * static_cast<size_t>(n) / static_cast<size_t>(max_entries) + 2;
  tree.nodes_.reserve(node_estimate);
  tree.node_kids_.reserve(node_estimate * static_cast<size_t>(tree.cap_));
  tree.node_bounds_.reserve(node_estimate * 2 * static_cast<size_t>(dim));
  tree.entry_coords_.reserve(static_cast<size_t>(n) * static_cast<size_t>(dim));
  tree.entry_weights_.reserve(static_cast<size_t>(n));
  tree.entry_ids_.reserve(static_cast<size_t>(n));
  tree.root_ = tree.BuildStr(coords, weights, ids, perm.data(), 0, n, 0);
  return tree;
}

RTree RTree::BulkLoad(int dim, std::vector<LeafEntry> entries,
                      int max_entries) {
  const int n = static_cast<int>(entries.size());
  AlignedVector<double> coords(static_cast<size_t>(n) *
                               static_cast<size_t>(dim));
  AlignedVector<double> weights(static_cast<size_t>(n));
  AlignedVector<int32_t> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const LeafEntry& e = entries[static_cast<size_t>(i)];
    ARSP_CHECK(e.point.dim() == dim);
    std::copy(
        e.point.coords().begin(), e.point.coords().end(),
        coords.begin() + static_cast<size_t>(i) * static_cast<size_t>(dim));
    weights[static_cast<size_t>(i)] = e.weight;
    ids[static_cast<size_t>(i)] = e.id;
  }
  return BulkLoadRaw(dim, max_entries, coords.data(), weights.data(),
                     ids.data(), n);
}

RTree RTree::BulkLoadFromView(const DatasetView& view, int max_entries) {
  const int n = view.num_instances();
  if (n == 0) return RTree(view.dim(), max_entries);
  AlignedVector<int32_t> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = view.base_instance_id(i);
  }
  if (view.is_prefix()) {
    // Full/prefix views window the base's columnar storage contiguously, so
    // STR reads the base columns in place and sorts only an index
    // permutation — peak build memory is n int32s over the final arenas,
    // not a second staged copy of every instance (the old 2× peak).
    return BulkLoadRaw(view.dim(), max_entries, view.coords(0),
                       view.base().probs_column().data(), ids.data(), n);
  }
  AlignedVector<double> coords(static_cast<size_t>(n) *
                               static_cast<size_t>(view.dim()));
  AlignedVector<double> weights(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double* row = view.coords(i);
    std::copy(row, row + view.dim(),
              coords.begin() +
                  static_cast<size_t>(i) * static_cast<size_t>(view.dim()));
    weights[static_cast<size_t>(i)] = view.prob(i);
  }
  return BulkLoadRaw(view.dim(), max_entries, coords.data(), weights.data(),
                     ids.data(), n);
}

RTree RTree::FromFlat(int dim, int max_entries, int root_id, int size,
                      Column<RtNode> nodes, Column<double> node_bounds,
                      Column<int32_t> node_kids, Column<double> entry_coords,
                      Column<double> entry_weights, Column<int32_t> entry_ids) {
  RTree tree(dim, max_entries);
  const size_t n = entry_ids.size();
  const size_t num_nodes = nodes.size();
  ARSP_CHECK_MSG(size >= 0 && static_cast<size_t>(size) == n,
                 "r-tree flat size disagrees with the entry arenas");
  ARSP_CHECK_MSG(entry_weights.size() == n &&
                     entry_coords.size() == n * static_cast<size_t>(dim),
                 "r-tree flat arenas disagree on the entry count");
  ARSP_CHECK_MSG(
      node_bounds.size() == num_nodes * 2 * static_cast<size_t>(dim) &&
          node_kids.size() == num_nodes * static_cast<size_t>(tree.cap_),
      "r-tree node columns do not match the node pool");
  if (n == 0) {
    ARSP_CHECK_MSG(root_id == -1, "empty r-tree must have no root");
  } else {
    ARSP_CHECK_MSG(root_id >= 0 && static_cast<size_t>(root_id) < num_nodes,
                   "r-tree root id out of range");
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    const RtNode& node = nodes[i];
    ARSP_CHECK_MSG(node.count >= 0 && node.count <= tree.cap_,
                   "r-tree node %zu has an out-of-range kid count", i);
    const int32_t bound = node.leaf != 0 ? static_cast<int32_t>(n)
                                         : static_cast<int32_t>(num_nodes);
    for (int32_t k = 0; k < node.count; ++k) {
      const int32_t kid = node_kids[i * static_cast<size_t>(tree.cap_) +
                                    static_cast<size_t>(k)];
      ARSP_CHECK_MSG(kid >= 0 && kid < bound,
                     "r-tree node %zu has an out-of-range kid id", i);
    }
  }
  tree.size_ = size;
  tree.root_ = root_id;
  tree.nodes_ = std::move(nodes);
  tree.node_bounds_ = std::move(node_bounds);
  tree.node_kids_ = std::move(node_kids);
  tree.entry_coords_ = std::move(entry_coords);
  tree.entry_weights_ = std::move(entry_weights);
  tree.entry_ids_ = std::move(entry_ids);
  return tree;
}

// ---------------------------------------------------------------------------
// Guttman insertion with quadratic split
// ---------------------------------------------------------------------------

void RTree::Insert(const Point& point, double weight, int id) {
  ARSP_CHECK(point.dim() == dim_);
  ARSP_CHECK_MSG(!nodes_.borrowed() && !entry_coords_.borrowed(),
                 "Insert on a snapshot-borrowed (immutable) r-tree");
  if (root_ < 0) root_ = AllocNode(/*leaf=*/true);
  const int entry = AppendEntryRow(point.coords().data(), weight, id);
  int split = -1;
  InsertRec(root_, entry, &split);
  if (split >= 0) {
    // Root overflowed: grow the tree by one level.
    const int old_root = root_;
    const int new_root = AllocNode(/*leaf=*/false);
    int32_t* kids = node_kids_.mutable_data() +
                    static_cast<size_t>(new_root) * static_cast<size_t>(cap_);
    kids[0] = old_root;
    kids[1] = split;
    nodes_.mutable_data()[new_root].count = 2;
    RecomputeNode(new_root);
    root_ = new_root;
  }
  ++size_;
}

void RTree::InsertRec(int id, int entry, int* split_out) {
  *split_out = -1;
  if (node_is_leaf(id)) {
    {
      RtNode& node = nodes_.mutable_data()[id];
      node_kids_.mutable_data()[static_cast<size_t>(id) *
                                    static_cast<size_t>(cap_) +
                                static_cast<size_t>(node.count)] = entry;
      ++node.count;
    }
    RecomputeNode(id);
    if (node_count(id) > max_entries_) SplitNode(id, split_out);
    return;
  }

  // Choose the child whose box needs least enlargement (ties: smaller
  // volume), then recurse.
  const double* p = entry_coords(entry);
  int best = -1;
  double best_enlargement = 0.0;
  double best_volume = 0.0;
  const int count = node_count(id);
  for (int k = 0; k < count; ++k) {
    const int child = node_kid(id, k);
    const double enlargement =
        RowEnlargementByPoint(node_lo(child), node_hi(child), p, dim_);
    const double volume = RowVolume(node_lo(child), node_hi(child), dim_);
    if (best < 0 || enlargement < best_enlargement ||
        (enlargement == best_enlargement && volume < best_volume)) {
      best = child;
      best_enlargement = enlargement;
      best_volume = volume;
    }
  }
  int child_split = -1;
  InsertRec(best, entry, &child_split);
  if (child_split >= 0) {
    RtNode& node = nodes_.mutable_data()[id];
    node_kids_.mutable_data()[static_cast<size_t>(id) *
                                  static_cast<size_t>(cap_) +
                              static_cast<size_t>(node.count)] = child_split;
    ++node.count;
  }
  RecomputeNode(id);
  if (node_count(id) > max_entries_) SplitNode(id, split_out);
}

void RTree::SplitNode(int id, int* split_out) {
  const bool leaf = node_is_leaf(id);
  const int count = node_count(id);
  std::vector<int32_t> all(static_cast<size_t>(count));
  for (int k = 0; k < count; ++k) all[static_cast<size_t>(k)] = node_kid(id, k);

  const int sibling = AllocNode(leaf);  // may grow (reallocate) the arenas

  // Materialized kid boxes: point boxes for leaf entries, child bounds for
  // internal kids — the same values the pointer tree's split inspected.
  std::vector<Mbr> boxes;
  boxes.reserve(all.size());
  for (int32_t kid : all) {
    if (leaf) {
      Mbr box = Mbr::Empty(dim_);
      box.ExtendRow(entry_coords(kid));
      boxes.push_back(box);
    } else {
      boxes.push_back(node_mbr(kid));
    }
  }
  const auto [sa, sb] = PickSeeds(count, [&boxes](int i) -> const Mbr& {
    return boxes[static_cast<size_t>(i)];
  });

  std::vector<int32_t> keep, move;
  keep.reserve(all.size());
  move.reserve(all.size());
  Mbr box_a = boxes[static_cast<size_t>(sa)];
  Mbr box_b = boxes[static_cast<size_t>(sb)];
  if (leaf) {
    // Leaf split: seeds first, then the assignment loop — the pointer
    // tree's entry order, preserved so leaf sums accumulate identically.
    keep.push_back(all[static_cast<size_t>(sa)]);
    move.push_back(all[static_cast<size_t>(sb)]);
    for (int i = 0; i < count; ++i) {
      if (i == sa || i == sb) continue;
      const Mbr& box = boxes[static_cast<size_t>(i)];
      if (box_a.Enlargement(box) <= box_b.Enlargement(box)) {
        keep.push_back(all[static_cast<size_t>(i)]);
        box_a.Extend(box);
      } else {
        move.push_back(all[static_cast<size_t>(i)]);
        box_b.Extend(box);
      }
    }
  } else {
    // Internal split keeps seeds at their original positions (the pointer
    // tree moved them inline during the loop).
    for (int i = 0; i < count; ++i) {
      if (i == sa) {
        keep.push_back(all[static_cast<size_t>(i)]);
        continue;
      }
      if (i == sb) {
        move.push_back(all[static_cast<size_t>(i)]);
        continue;
      }
      const Mbr& box = boxes[static_cast<size_t>(i)];
      if (box_a.Enlargement(box) <= box_b.Enlargement(box)) {
        keep.push_back(all[static_cast<size_t>(i)]);
        box_a.Extend(box);
      } else {
        move.push_back(all[static_cast<size_t>(i)]);
        box_b.Extend(box);
      }
    }
  }

  int32_t* node_slots = node_kids_.mutable_data() +
                        static_cast<size_t>(id) * static_cast<size_t>(cap_);
  for (size_t k = 0; k < keep.size(); ++k) node_slots[k] = keep[k];
  nodes_.mutable_data()[id].count = static_cast<int32_t>(keep.size());
  int32_t* sibling_slots =
      node_kids_.mutable_data() +
      static_cast<size_t>(sibling) * static_cast<size_t>(cap_);
  for (size_t k = 0; k < move.size(); ++k) sibling_slots[k] = move[k];
  nodes_.mutable_data()[sibling].count = static_cast<int32_t>(move.size());

  RecomputeNode(id);
  RecomputeNode(sibling);
  *split_out = sibling;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double RTree::WindowSum(const Mbr& box) const {
  if (root_ < 0) return 0.0;
  return WindowSumRec(root_, box);
}

double RTree::WindowSumRec(int id, const Mbr& box) const {
  if (NodeBoundsEmpty(id) || !BoxIntersectsNode(box, id)) return 0.0;
  if (BoxContainsNode(box, id)) return node_weight_sum(id);
  const int count = node_count(id);
  if (node_is_leaf(id)) {
    double sum = 0.0;
    for (int k = 0; k < count; ++k) {
      const int e = node_kid(id, k);
      if (box.ContainsRow(entry_coords(e))) {
        sum += entry_weights_[static_cast<size_t>(e)];
      }
    }
    return sum;
  }
  double sum = 0.0;
  for (int k = 0; k < count; ++k) {
    sum += WindowSumRec(node_kid(id, k), box);
  }
  return sum;
}

void RTree::CollectInBox(const Mbr& box, std::vector<int>* out_ids) const {
  if (root_ >= 0) CollectRec(root_, box, out_ids);
}

void RTree::CollectRec(int id, const Mbr& box,
                       std::vector<int>* out_ids) const {
  if (NodeBoundsEmpty(id) || !BoxIntersectsNode(box, id)) return;
  const int count = node_count(id);
  if (node_is_leaf(id)) {
    for (int k = 0; k < count; ++k) {
      const int e = node_kid(id, k);
      if (box.ContainsRow(entry_coords(e))) {
        out_ids->push_back(entry_ids_[static_cast<size_t>(e)]);
      }
    }
    return;
  }
  for (int k = 0; k < count; ++k) CollectRec(node_kid(id, k), box, out_ids);
}

}  // namespace arsp
