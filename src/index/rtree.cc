// Copyright 2026 The ARSP Authors.

#include "src/index/rtree.h"

#include <algorithm>
#include <cmath>

#include "src/uncertain/dataset_view.h"

namespace arsp {

RTree::RTree(int dim, int max_entries) : dim_(dim), max_entries_(max_entries) {
  ARSP_CHECK(dim >= 1);
  ARSP_CHECK(max_entries >= 4);
}

void RTree::RecomputeNode(Node* node) {
  Mbr box = Mbr::Empty(node->mbr_.dim() ? node->mbr_.dim()
                                        : (node->entries_.empty()
                                               ? (node->children_.empty()
                                                      ? 0
                                                      : node->children_.front()
                                                            ->mbr_.dim())
                                               : node->entries_.front()
                                                     .point.dim()));
  double sum = 0.0;
  int min_id = 2147483647;  // INT_MAX
  if (node->is_leaf()) {
    for (const LeafEntry& e : node->entries_) {
      box.Extend(e.point);
      sum += e.weight;
      min_id = std::min(min_id, e.id);
    }
  } else {
    for (const auto& child : node->children_) {
      box.Extend(child->mbr_);
      sum += child->weight_sum_;
      min_id = std::min(min_id, child->min_id_);
    }
  }
  node->mbr_ = box;
  node->weight_sum_ = sum;
  node->min_id_ = min_id;
}

// ---------------------------------------------------------------------------
// STR bulk load
// ---------------------------------------------------------------------------

std::unique_ptr<RTree::Node> RTree::BuildStr(std::vector<LeafEntry>* entries,
                                             int begin, int end,
                                             int level_hint) {
  const int n = end - begin;
  auto node = std::make_unique<Node>();
  node->mbr_ = Mbr::Empty(dim_);
  if (n <= max_entries_) {
    node->entries_.assign(entries->begin() + begin, entries->begin() + end);
    RecomputeNode(node.get());
    return node;
  }

  // Capacity of one child subtree: the largest power of max_entries_ < n.
  long long child_cap = max_entries_;
  while (child_cap * max_entries_ < n) child_cap *= max_entries_;

  const int sort_dim = level_hint % dim_;
  std::sort(entries->begin() + begin, entries->begin() + end,
            [sort_dim](const LeafEntry& a, const LeafEntry& b) {
              return a.point[sort_dim] < b.point[sort_dim];
            });

  for (int chunk = begin; chunk < end;
       chunk += static_cast<int>(child_cap)) {
    const int chunk_end =
        std::min<long long>(chunk + child_cap, end);
    node->children_.push_back(
        BuildStr(entries, chunk, static_cast<int>(chunk_end), level_hint + 1));
  }
  RecomputeNode(node.get());
  return node;
}

RTree RTree::BulkLoad(int dim, std::vector<LeafEntry> entries,
                      int max_entries) {
  RTree tree(dim, max_entries);
  tree.size_ = static_cast<int>(entries.size());
  if (!entries.empty()) {
    tree.root_ =
        tree.BuildStr(&entries, 0, static_cast<int>(entries.size()), 0);
  }
  return tree;
}

RTree RTree::BulkLoadFromView(const DatasetView& view, int max_entries) {
  std::vector<LeafEntry> entries;
  entries.reserve(static_cast<size_t>(view.num_instances()));
  for (int i = 0; i < view.num_instances(); ++i) {
    entries.push_back(
        LeafEntry{view.point(i), view.prob(i), view.base_instance_id(i)});
  }
  return BulkLoad(view.dim(), std::move(entries), max_entries);
}

// ---------------------------------------------------------------------------
// Guttman insertion with quadratic split
// ---------------------------------------------------------------------------

void RTree::Insert(const Point& point, double weight, int id) {
  ARSP_CHECK(point.dim() == dim_);
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->mbr_ = Mbr::Empty(dim_);
  }
  std::unique_ptr<Node> split;
  InsertRec(root_.get(), LeafEntry{point, weight, id}, &split);
  if (split) {
    // Root overflowed: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->children_.push_back(std::move(root_));
    new_root->children_.push_back(std::move(split));
    RecomputeNode(new_root.get());
    root_ = std::move(new_root);
  }
  ++size_;
}

void RTree::InsertRec(Node* node, LeafEntry entry,
                      std::unique_ptr<Node>* split_out) {
  split_out->reset();
  if (node->is_leaf()) {
    node->entries_.push_back(std::move(entry));
    RecomputeNode(node);
    if (static_cast<int>(node->entries_.size()) > max_entries_) {
      SplitNode(node, split_out);
    }
    return;
  }

  // Choose the child whose MBR needs least enlargement (ties: smaller
  // volume), then recurse.
  const Mbr entry_box = Mbr::OfPoint(entry.point);
  Node* best = nullptr;
  double best_enlargement = 0.0;
  double best_volume = 0.0;
  for (const auto& child : node->children_) {
    const double enlargement = child->mbr_.Enlargement(entry_box);
    const double volume = child->mbr_.Volume();
    if (best == nullptr || enlargement < best_enlargement ||
        (enlargement == best_enlargement && volume < best_volume)) {
      best = child.get();
      best_enlargement = enlargement;
      best_volume = volume;
    }
  }
  std::unique_ptr<Node> child_split;
  InsertRec(best, std::move(entry), &child_split);
  if (child_split) node->children_.push_back(std::move(child_split));
  RecomputeNode(node);
  if (static_cast<int>(node->children_.size()) > max_entries_) {
    SplitNode(node, split_out);
  }
}

namespace {

// Quadratic-split seed selection: the pair wasting the most dead volume.
template <typename GetMbr>
std::pair<int, int> PickSeeds(int count, const GetMbr& mbr_of) {
  int seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (int i = 0; i < count; ++i) {
    for (int j = i + 1; j < count; ++j) {
      Mbr merged = mbr_of(i);
      merged.Extend(mbr_of(j));
      const double waste =
          merged.Volume() - mbr_of(i).Volume() - mbr_of(j).Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

}  // namespace

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* split_out) {
  auto sibling = std::make_unique<Node>();
  sibling->mbr_ = Mbr::Empty(dim_);

  if (node->is_leaf()) {
    std::vector<LeafEntry> all = std::move(node->entries_);
    node->entries_.clear();
    const auto [sa, sb] = PickSeeds(
        static_cast<int>(all.size()),
        [&all](int i) { return Mbr::OfPoint(all[static_cast<size_t>(i)].point); });
    Mbr box_a = Mbr::OfPoint(all[static_cast<size_t>(sa)].point);
    Mbr box_b = Mbr::OfPoint(all[static_cast<size_t>(sb)].point);
    node->entries_.push_back(all[static_cast<size_t>(sa)]);
    sibling->entries_.push_back(all[static_cast<size_t>(sb)]);
    for (int i = 0; i < static_cast<int>(all.size()); ++i) {
      if (i == sa || i == sb) continue;
      const Mbr box = Mbr::OfPoint(all[static_cast<size_t>(i)].point);
      if (box_a.Enlargement(box) <= box_b.Enlargement(box)) {
        node->entries_.push_back(all[static_cast<size_t>(i)]);
        box_a.Extend(box);
      } else {
        sibling->entries_.push_back(all[static_cast<size_t>(i)]);
        box_b.Extend(box);
      }
    }
  } else {
    std::vector<std::unique_ptr<Node>> all = std::move(node->children_);
    node->children_.clear();
    const auto [sa, sb] =
        PickSeeds(static_cast<int>(all.size()),
                  [&all](int i) { return all[static_cast<size_t>(i)]->mbr_; });
    Mbr box_a = all[static_cast<size_t>(sa)]->mbr_;
    Mbr box_b = all[static_cast<size_t>(sb)]->mbr_;
    for (int i = 0; i < static_cast<int>(all.size()); ++i) {
      if (i == sa) {
        node->children_.push_back(std::move(all[static_cast<size_t>(i)]));
        continue;
      }
      if (i == sb) {
        sibling->children_.push_back(std::move(all[static_cast<size_t>(i)]));
        continue;
      }
      const Mbr box = all[static_cast<size_t>(i)]->mbr_;
      if (box_a.Enlargement(box) <= box_b.Enlargement(box)) {
        node->children_.push_back(std::move(all[static_cast<size_t>(i)]));
        box_a.Extend(box);
      } else {
        sibling->children_.push_back(std::move(all[static_cast<size_t>(i)]));
        box_b.Extend(box);
      }
    }
  }
  RecomputeNode(node);
  RecomputeNode(sibling.get());
  *split_out = std::move(sibling);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool RTree::BoxContainsMbr(const Mbr& box, const Mbr& mbr) {
  for (int i = 0; i < mbr.dim(); ++i) {
    if (mbr.min_corner()[i] < box.min_corner()[i] ||
        mbr.max_corner()[i] > box.max_corner()[i]) {
      return false;
    }
  }
  return true;
}

double RTree::WindowSum(const Mbr& box) const {
  if (!root_) return 0.0;
  return WindowSumRec(root_.get(), box);
}

double RTree::WindowSumRec(const Node* node, const Mbr& box) const {
  if (node->mbr_.IsEmpty() || !box.Intersects(node->mbr_)) return 0.0;
  if (BoxContainsMbr(box, node->mbr_)) return node->weight_sum_;
  if (node->is_leaf()) {
    double sum = 0.0;
    for (const LeafEntry& e : node->entries_) {
      if (box.Contains(e.point)) sum += e.weight;
    }
    return sum;
  }
  double sum = 0.0;
  for (const auto& child : node->children_) {
    sum += WindowSumRec(child.get(), box);
  }
  return sum;
}

void RTree::CollectInBox(const Mbr& box, std::vector<int>* out_ids) const {
  if (root_) CollectRec(root_.get(), box, out_ids);
}

void RTree::CollectRec(const Node* node, const Mbr& box,
                       std::vector<int>* out_ids) const {
  if (node->mbr_.IsEmpty() || !box.Intersects(node->mbr_)) return;
  if (node->is_leaf()) {
    for (const LeafEntry& e : node->entries_) {
      if (box.Contains(e.point)) out_ids->push_back(e.id);
    }
    return;
  }
  for (const auto& child : node->children_) CollectRec(child.get(), box, out_ids);
}

}  // namespace arsp
