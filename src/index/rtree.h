// Copyright 2026 The ARSP Authors.
//
// Guttman R-tree over weighted points with per-node weight aggregation.
// Two roles in the paper's Algorithm 2 (B&B):
//  * a bulk-loaded (STR) tree over all instances I, traversed best-first;
//  * one incrementally grown "aggregated R-tree" per uncertain object,
//    answering window-sum queries Σ p(s) over dominance boxes [origin, q].
//
// Storage is arena-flattened: nodes are one POD column (int32 kid slots in
// a parallel column, no per-node heap allocations, no pointers) and leaf
// entries are three SoA columns in leaf order. Traversals — including
// B&B's external best-first walk — address nodes and entries by int32 id.
// Every column is a Column<T>: owned for in-memory builds (which stay
// insertable), borrowed for snapshot mmap-loads (immutable, zero-copy).

#ifndef ARSP_INDEX_RTREE_H_
#define ARSP_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "src/common/column.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

class DatasetView;

/// Flattened R-tree node: subtree aggregates plus a fixed-capacity kid slot
/// window in the kids column (child node ids for internal nodes, entry ids
/// for leaves). Bounds live in the parallel bounds column (2 · dim doubles
/// per node). POD with an explicit 24-byte layout so the node pool
/// serializes as one flat snapshot section.
struct RtNode {
  double weight_sum = 0.0;
  int32_t min_id = 2147483647;  ///< INT_MAX; minimum entry id in the subtree
  int32_t count = 0;            ///< live kids in the slot window
  int32_t leaf = 1;             ///< 1 for leaves, 0 for internal nodes
  int32_t pad = 0;              ///< explicit padding; keeps file layout exact
};
static_assert(sizeof(RtNode) == 24, "RtNode must have a fixed 24-byte layout");

/// Dynamic R-tree (quadratic-split insertion, STR bulk load) storing points
/// with an id and a weight; internal nodes cache subtree weight sums and the
/// minimum entry id of their subtree. The min-id aggregate is the prefix-
/// reuse hook: a traversal serving an object-prefix DatasetView skips any
/// subtree with node_min_id() >= the view's id_bound() — the whole subtree
/// is delta data the prefix has not reached — so one bulk load over the full
/// dataset serves every prefix without rebuilding.
class RTree {
 public:
  /// A point stored at a leaf (construction-side value type; the tree
  /// stores columns).
  struct LeafEntry {
    Point point;
    double weight = 1.0;
    int id = 0;
  };

  /// Empty tree over R^dim. `max_entries` bounds node fan-out.
  explicit RTree(int dim, int max_entries = 16);

  /// Sort-Tile-Recursive bulk load; much better node quality than repeated
  /// insertion for static data.
  static RTree BulkLoad(int dim, std::vector<LeafEntry> entries,
                        int max_entries = 16);

  /// Bulk load over the instances of a DatasetView; entry ids are *base*
  /// instance ids, matching the id convention of shared full-dataset trees
  /// (probe hits translate through view.LocalInstanceOf either way). Reads
  /// the view's columnar storage in place and sorts an index permutation —
  /// peak memory is one int32 per instance over the final arenas, not a
  /// second copy of every instance.
  static RTree BulkLoadFromView(const DatasetView& view, int max_entries = 16);

  /// Adopts already-built arenas (the snapshot mmap-load path). Structural
  /// bounds are checked; contents are trusted (the snapshot layer owns
  /// checksumming). Borrowed trees are immutable: Insert CHECK-fails.
  static RTree FromFlat(int dim, int max_entries, int root_id, int size,
                        Column<RtNode> nodes, Column<double> node_bounds,
                        Column<int32_t> node_kids, Column<double> entry_coords,
                        Column<double> entry_weights,
                        Column<int32_t> entry_ids);

  int dim() const { return dim_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int max_entries() const { return max_entries_; }

  // ------------------------------------------------------ flat traversal
  // Nodes and entries are addressed by int32 id; B&B walks the tree with
  // its own priority queue through these accessors.

  /// Root node id; -1 when the tree is empty.
  int root_id() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  bool node_is_leaf(int id) const {
    return nodes_[static_cast<size_t>(id)].leaf != 0;
  }
  double node_weight_sum(int id) const {
    return nodes_[static_cast<size_t>(id)].weight_sum;
  }
  /// Minimum entry id in the subtree (INT_MAX for an empty node); lets
  /// prefix-view traversals prune all-delta subtrees without descent.
  int node_min_id(int id) const {
    return nodes_[static_cast<size_t>(id)].min_id;
  }
  int node_count(int id) const { return nodes_[static_cast<size_t>(id)].count; }
  /// k-th kid of the node: a child node id (internal) or entry id (leaf).
  int node_kid(int id, int k) const {
    return node_kids_[static_cast<size_t>(id) * static_cast<size_t>(cap_) +
                      static_cast<size_t>(k)];
  }
  /// Lower / upper corner rows of the node's bounds (dim doubles each).
  const double* node_lo(int id) const {
    return node_bounds_.data() +
           static_cast<size_t>(id) * 2 * static_cast<size_t>(dim_);
  }
  const double* node_hi(int id) const { return node_lo(id) + dim_; }
  /// Node bounds as an Mbr, by value (cold paths and tests).
  Mbr node_mbr(int id) const;

  const double* entry_coords(int e) const {
    return entry_coords_.data() +
           static_cast<size_t>(e) * static_cast<size_t>(dim_);
  }
  double entry_weight(int e) const {
    return entry_weights_[static_cast<size_t>(e)];
  }
  int entry_id(int e) const { return entry_ids_[static_cast<size_t>(e)]; }

  // Raw arena access (snapshot writer, footprint stats).
  const Column<RtNode>& nodes_column() const { return nodes_; }
  const Column<double>& node_bounds_column() const { return node_bounds_; }
  const Column<int32_t>& node_kids_column() const { return node_kids_; }
  const Column<double>& entry_coords_column() const { return entry_coords_; }
  const Column<double>& entry_weights_column() const { return entry_weights_; }
  const Column<int32_t>& entry_ids_column() const { return entry_ids_; }

  /// Resident vs. mapped bytes across all arenas.
  ColumnBytes memory_bytes() const;

  /// Inserts a point (Guttman: least-enlargement descent, quadratic split).
  /// Only valid on owned (in-memory) trees; snapshot-borrowed trees are
  /// immutable.
  void Insert(const Point& point, double weight, int id);

  /// Sum of weights of points inside `box` (inclusive bounds), using node
  /// aggregates for fully covered subtrees.
  double WindowSum(const Mbr& box) const;

  /// Collects ids of all points inside `box`.
  void CollectInBox(const Mbr& box, std::vector<int>* out_ids) const;

 private:
  RTree() = default;

  /// Allocates a node (bounds reset to empty) and returns its id.
  int AllocNode(bool leaf);
  int AppendEntryRow(const double* coords, double weight, int id);
  void RecomputeNode(int id);
  void InsertRec(int id, int entry, int* split_out);
  void SplitNode(int id, int* split_out);
  double WindowSumRec(int id, const Mbr& box) const;
  void CollectRec(int id, const Mbr& box, std::vector<int>* out_ids) const;

  bool BoxIntersectsNode(const Mbr& box, int id) const {
    const double* lo = node_lo(id);
    const double* hi = node_hi(id);
    for (int i = 0; i < dim_; ++i) {
      if (hi[i] < box.min_corner()[i] || lo[i] > box.max_corner()[i]) {
        return false;
      }
    }
    return true;
  }
  bool BoxContainsNode(const Mbr& box, int id) const {
    const double* lo = node_lo(id);
    const double* hi = node_hi(id);
    for (int i = 0; i < dim_; ++i) {
      if (lo[i] < box.min_corner()[i] || hi[i] > box.max_corner()[i]) {
        return false;
      }
    }
    return true;
  }
  bool NodeBoundsEmpty(int id) const { return node_lo(id)[0] > node_hi(id)[0]; }

  /// STR recursion over an index permutation into the staging arrays;
  /// appends entries to the arenas in leaf order and returns the node id.
  int BuildStr(const double* coords, const double* weights, const int32_t* ids,
               int32_t* perm, int begin, int end, int level_hint);
  static RTree BulkLoadRaw(int dim, int max_entries, const double* coords,
                           const double* weights, const int32_t* ids, int n);

  int dim_ = 0;
  int max_entries_ = 0;
  int cap_ = 0;  ///< kid slot capacity per node: max_entries_ + 1
  int size_ = 0;
  int root_ = -1;
  Column<RtNode> nodes_;
  Column<double> node_bounds_;    ///< num_nodes × 2·dim (min row, max row)
  Column<int32_t> node_kids_;     ///< num_nodes × cap_
  Column<double> entry_coords_;   ///< size × dim, leaf order for bulk loads
  Column<double> entry_weights_;  ///< size
  Column<int32_t> entry_ids_;     ///< size
};

}  // namespace arsp

#endif  // ARSP_INDEX_RTREE_H_
