// Copyright 2026 The ARSP Authors.
//
// Guttman R-tree over weighted points with per-node weight aggregation.
// Two roles in the paper's Algorithm 2 (B&B):
//  * a bulk-loaded (STR) tree over all instances I, traversed best-first;
//  * one incrementally grown "aggregated R-tree" per uncertain object,
//    answering window-sum queries Σ p(s) over dominance boxes [origin, q].

#ifndef ARSP_INDEX_RTREE_H_
#define ARSP_INDEX_RTREE_H_

#include <memory>
#include <vector>

#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

class DatasetView;

/// Dynamic R-tree (quadratic-split insertion, STR bulk load) storing points
/// with an id and a weight; internal nodes cache subtree weight sums and the
/// minimum entry id of their subtree. The min-id aggregate is the prefix-
/// reuse hook: a traversal serving an object-prefix DatasetView skips any
/// subtree with min_id() >= the view's id_bound() — the whole subtree is
/// delta data the prefix has not reached — so one bulk load over the full
/// dataset serves every prefix without rebuilding.
class RTree {
 public:
  /// A point stored at a leaf.
  struct LeafEntry {
    Point point;
    double weight = 1.0;
    int id = 0;
  };

  /// Tree node, exposed read-only so traversal algorithms (B&B) can walk
  /// the structure with their own priority queues.
  class Node {
   public:
    bool is_leaf() const { return children_.empty(); }
    const Mbr& mbr() const { return mbr_; }
    double weight_sum() const { return weight_sum_; }
    /// Minimum entry id in the subtree (INT_MAX for an empty node); lets
    /// prefix-view traversals prune all-delta subtrees without descent.
    int min_id() const { return min_id_; }
    const std::vector<std::unique_ptr<Node>>& children() const {
      return children_;
    }
    const std::vector<LeafEntry>& entries() const { return entries_; }

   private:
    friend class RTree;
    Mbr mbr_;
    double weight_sum_ = 0.0;
    int min_id_ = 2147483647;                      // INT_MAX
    std::vector<std::unique_ptr<Node>> children_;  // internal nodes
    std::vector<LeafEntry> entries_;               // leaf nodes
  };

  /// Empty tree over R^dim. `max_entries` bounds node fan-out.
  explicit RTree(int dim, int max_entries = 16);

  /// Sort-Tile-Recursive bulk load; much better node quality than repeated
  /// insertion for static data.
  static RTree BulkLoad(int dim, std::vector<LeafEntry> entries,
                        int max_entries = 16);

  /// Bulk load over the instances of a DatasetView; entry ids are *base*
  /// instance ids, matching the id convention of shared full-dataset trees
  /// (probe hits translate through view.LocalInstanceOf either way).
  static RTree BulkLoadFromView(const DatasetView& view, int max_entries = 16);

  int dim() const { return dim_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Root node; nullptr when the tree is empty.
  const Node* root() const { return root_.get(); }

  /// Inserts a point (Guttman: least-enlargement descent, quadratic split).
  void Insert(const Point& point, double weight, int id);

  /// Sum of weights of points inside `box` (inclusive bounds), using node
  /// aggregates for fully covered subtrees.
  double WindowSum(const Mbr& box) const;

  /// Collects ids of all points inside `box`.
  void CollectInBox(const Mbr& box, std::vector<int>* out_ids) const;

 private:
  void InsertRec(Node* node, LeafEntry entry,
                 std::unique_ptr<Node>* split_out);
  void SplitNode(Node* node, std::unique_ptr<Node>* split_out);
  static void RecomputeNode(Node* node);
  double WindowSumRec(const Node* node, const Mbr& box) const;
  void CollectRec(const Node* node, const Mbr& box,
                  std::vector<int>* out_ids) const;
  static bool BoxContainsMbr(const Mbr& box, const Mbr& mbr);

  std::unique_ptr<Node> BuildStr(std::vector<LeafEntry>* entries, int begin,
                                 int end, int level_hint);

  int dim_;
  int max_entries_;
  int size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace arsp

#endif  // ARSP_INDEX_RTREE_H_
