// Copyright 2026 The ARSP Authors.

#include "src/index/kdtree.h"

#include <algorithm>

#include "src/uncertain/dataset_view.h"

namespace arsp {

KdTree KdTree::FromView(const DatasetView& view, int leaf_size) {
  std::vector<KdItem> items;
  items.reserve(static_cast<size_t>(view.num_instances()));
  for (int i = 0; i < view.num_instances(); ++i) {
    items.push_back(KdItem{view.point(i), view.base_instance_id(i),
                           view.prob(i)});
  }
  return KdTree(std::move(items), leaf_size);
}

KdTree::KdTree(std::vector<KdItem> items, int leaf_size)
    : dim_(items.empty() ? 0 : items.front().point.dim()),
      items_(std::move(items)),
      empty_mbr_(Mbr::Empty(dim_)) {
  ARSP_CHECK(leaf_size >= 1);
  for (const KdItem& item : items_) ARSP_CHECK(item.point.dim() == dim_);
  if (!items_.empty()) {
    nodes_.reserve(2 * items_.size() / static_cast<size_t>(leaf_size) + 2);
    Build(0, static_cast<int>(items_.size()), leaf_size);
  }
}

int KdTree::Build(int begin, int end, int leaf_size) {
  const int node_idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    Mbr box = Mbr::Empty(dim_);
    double sum = 0.0;
    int min_id = kNoIdBound;
    for (int i = begin; i < end; ++i) {
      box.Extend(items_[static_cast<size_t>(i)].point);
      sum += items_[static_cast<size_t>(i)].weight;
      min_id = std::min(min_id, items_[static_cast<size_t>(i)].id);
    }
    node.mbr = box;
    node.weight_sum = sum;
    node.min_id = min_id;
  }
  if (end - begin <= leaf_size) return node_idx;

  // Split on the widest dimension at the median.
  const Mbr box = nodes_[static_cast<size_t>(node_idx)].mbr;
  int split_dim = 0;
  double widest = -1.0;
  for (int i = 0; i < dim_; ++i) {
    const double extent = box.max_corner()[i] - box.min_corner()[i];
    if (extent > widest) {
      widest = extent;
      split_dim = i;
    }
  }
  const int mid = begin + (end - begin) / 2;
  std::nth_element(items_.begin() + begin, items_.begin() + mid,
                   items_.begin() + end,
                   [split_dim](const KdItem& a, const KdItem& b) {
                     return a.point[split_dim] < b.point[split_dim];
                   });
  // Degenerate case: all points identical in split_dim; bucket them.
  if (items_[static_cast<size_t>(begin)].point[split_dim] ==
      items_[static_cast<size_t>(end - 1)].point[split_dim]) {
    return node_idx;
  }
  const int left = Build(begin, mid, leaf_size);
  const int right = Build(mid, end, leaf_size);
  nodes_[static_cast<size_t>(node_idx)].left = left;
  nodes_[static_cast<size_t>(node_idx)].right = right;
  return node_idx;
}

const Mbr& KdTree::root_mbr() const {
  if (nodes_.empty()) return empty_mbr_;
  return nodes_.front().mbr;
}

bool KdTree::BoxContainsMbr(const Mbr& box, const Mbr& mbr) {
  for (int i = 0; i < mbr.dim(); ++i) {
    if (mbr.min_corner()[i] < box.min_corner()[i] ||
        mbr.max_corner()[i] > box.max_corner()[i]) {
      return false;
    }
  }
  return true;
}

double KdTree::SumInBox(const Mbr& box) const {
  if (nodes_.empty()) return 0.0;
  return SumRec(0, box);
}

double KdTree::SumRec(int node_idx, const Mbr& box) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  if (!box.Intersects(node.mbr)) return 0.0;
  if (BoxContainsMbr(box, node.mbr)) return node.weight_sum;
  if (node.is_leaf()) {
    double sum = 0.0;
    for (int i = node.begin; i < node.end; ++i) {
      const KdItem& item = items_[static_cast<size_t>(i)];
      if (box.Contains(item.point)) sum += item.weight;
    }
    return sum;
  }
  return SumRec(node.left, box) + SumRec(node.right, box);
}

double KdTree::MinSignedDistance(const Mbr& mbr, const Hyperplane& hp) {
  // SignedDistance(p) = p[d-1] - Σ coef_i p_i + offset is linear, so its
  // extremum over a box sits at a corner chosen per-coordinate by sign.
  const int d = hp.dim();
  double v = mbr.min_corner()[d - 1] + hp.offset();
  for (int i = 0; i < d - 1; ++i) {
    const double c = hp.coef()[static_cast<size_t>(i)];
    v -= c * (c >= 0.0 ? mbr.max_corner()[i] : mbr.min_corner()[i]);
  }
  return v;
}

double KdTree::MaxSignedDistance(const Mbr& mbr, const Hyperplane& hp) {
  const int d = hp.dim();
  double v = mbr.max_corner()[d - 1] + hp.offset();
  for (int i = 0; i < d - 1; ++i) {
    const double c = hp.coef()[static_cast<size_t>(i)];
    v -= c * (c >= 0.0 ? mbr.min_corner()[i] : mbr.max_corner()[i]);
  }
  return v;
}

bool KdTree::ExistsInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                              int exclude_id) const {
  if (nodes_.empty()) return false;
  return ExistsRec(0, box, hp, eps, exclude_id);
}

bool KdTree::ExistsRec(int node_idx, const Mbr& box, const Hyperplane& hp,
                       double eps, int exclude_id) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  if (!box.Intersects(node.mbr)) return false;
  if (MinSignedDistance(node.mbr, hp) > eps) return false;
  if (node.is_leaf()) {
    for (int i = node.begin; i < node.end; ++i) {
      const KdItem& item = items_[static_cast<size_t>(i)];
      if (item.id == exclude_id) continue;
      if (box.Contains(item.point) && hp.SignedDistance(item.point) <= eps) {
        return true;
      }
    }
    return false;
  }
  return ExistsRec(node.left, box, hp, eps, exclude_id) ||
         ExistsRec(node.right, box, hp, eps, exclude_id);
}

}  // namespace arsp
