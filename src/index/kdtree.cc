// Copyright 2026 The ARSP Authors.

#include "src/index/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/aligned.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {

KdTree KdTree::FromView(const DatasetView& view, int leaf_size) {
  KdTree tree;
  tree.dim_ = view.dim();
  tree.root_mbr_ = Mbr::Empty(tree.dim_);
  const int n = view.num_instances();
  AlignedVector<int32_t> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = view.base_instance_id(i);
  if (n == 0) return tree;
  if (view.is_prefix()) {
    // Full/prefix views window the base's columnar storage contiguously, so
    // the builder reads the base columns in place — no staging copy of the
    // coordinate or probability streams (the satellite-fix path that keeps
    // peak build memory at ~1× the final arenas).
    tree.BuildFrom(view.coords(0), view.base().probs_column().data(),
                   ids.data(), n, leaf_size);
  } else {
    AlignedVector<double> coords(static_cast<size_t>(n) *
                                 static_cast<size_t>(tree.dim_));
    AlignedVector<double> weights(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double* row = view.coords(i);
      std::copy(row, row + tree.dim_,
                coords.begin() + static_cast<size_t>(i) *
                                     static_cast<size_t>(tree.dim_));
      weights[static_cast<size_t>(i)] = view.prob(i);
    }
    tree.BuildFrom(coords.data(), weights.data(), ids.data(), n, leaf_size);
  }
  return tree;
}

KdTree::KdTree(const std::vector<KdItem>& items, int leaf_size) {
  dim_ = items.empty() ? 0 : items.front().point.dim();
  root_mbr_ = Mbr::Empty(dim_);
  ARSP_CHECK(leaf_size >= 1);
  for (const KdItem& item : items) ARSP_CHECK(item.point.dim() == dim_);
  const int n = static_cast<int>(items.size());
  if (n == 0) return;
  AlignedVector<double> coords(static_cast<size_t>(n) *
                               static_cast<size_t>(dim_));
  AlignedVector<double> weights(static_cast<size_t>(n));
  AlignedVector<int32_t> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Point& p = items[static_cast<size_t>(i)].point;
    std::copy(p.coords().begin(), p.coords().end(),
              coords.begin() +
                  static_cast<size_t>(i) * static_cast<size_t>(dim_));
    weights[static_cast<size_t>(i)] = items[static_cast<size_t>(i)].weight;
    ids[static_cast<size_t>(i)] = items[static_cast<size_t>(i)].id;
  }
  BuildFrom(coords.data(), weights.data(), ids.data(), n, leaf_size);
}

KdTree KdTree::FromFlat(int dim, Column<double> item_coords,
                        Column<double> item_weights, Column<int32_t> item_ids,
                        Column<KdNode> nodes, Column<double> node_bounds) {
  KdTree tree;
  tree.dim_ = dim;
  const size_t n = item_ids.size();
  ARSP_CHECK_MSG(item_weights.size() == n &&
                     item_coords.size() == n * static_cast<size_t>(dim),
                 "kd-tree flat arenas disagree on the item count");
  ARSP_CHECK_MSG(
      node_bounds.size() == nodes.size() * 2 * static_cast<size_t>(dim),
      "kd-tree node bounds column does not match the node pool");
  ARSP_CHECK_MSG(n == 0 || !nodes.empty(),
                 "kd-tree with items requires a node pool");
  for (size_t i = 0; i < nodes.size(); ++i) {
    const KdNode& node = nodes[i];
    const int32_t count = static_cast<int32_t>(n);
    ARSP_CHECK_MSG(node.begin >= 0 && node.end >= node.begin &&
                       node.end <= count,
                   "kd-tree node %zu has an out-of-range item window", i);
    ARSP_CHECK_MSG(node.left < static_cast<int32_t>(nodes.size()) &&
                       node.right < static_cast<int32_t>(nodes.size()),
                   "kd-tree node %zu has an out-of-range child index", i);
  }
  tree.item_coords_ = std::move(item_coords);
  tree.item_weights_ = std::move(item_weights);
  tree.item_ids_ = std::move(item_ids);
  tree.nodes_ = std::move(nodes);
  tree.node_bounds_ = std::move(node_bounds);
  tree.root_mbr_ = Mbr::Empty(dim);
  if (!tree.nodes_.empty()) {
    tree.root_mbr_.ExtendRow(tree.node_lo(0));
    tree.root_mbr_.ExtendRow(tree.node_hi(0));
  }
  return tree;
}

ColumnBytes KdTree::memory_bytes() const {
  ColumnBytes bytes;
  bytes.Add(item_coords_);
  bytes.Add(item_weights_);
  bytes.Add(item_ids_);
  bytes.Add(nodes_);
  bytes.Add(node_bounds_);
  return bytes;
}

void KdTree::BuildFrom(const double* coords, const double* weights,
                       const int32_t* ids, int n, int leaf_size) {
  ARSP_CHECK(leaf_size >= 1);
  // Median-split over an index permutation: the staging arrays are read in
  // place (never moved), so build peak memory is the permutation plus the
  // final arenas. nth_element over indices performs the exact comparison
  // sequence nth_element over records would, so the resulting layout — and
  // therefore every aggregate accumulation order — is unchanged.
  AlignedVector<int32_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  const size_t node_estimate =
      2 * static_cast<size_t>(n) / static_cast<size_t>(leaf_size) + 2;
  nodes_.reserve(node_estimate);
  node_bounds_.reserve(node_estimate * 2 * static_cast<size_t>(dim_));
  Build(0, n, leaf_size, coords, weights, ids, perm.data());

  // Gather the arenas into build (permutation) order.
  item_coords_.resize(static_cast<size_t>(n) * static_cast<size_t>(dim_));
  item_weights_.resize(static_cast<size_t>(n));
  item_ids_.resize(static_cast<size_t>(n));
  double* out_coords = item_coords_.mutable_data();
  double* out_weights = item_weights_.mutable_data();
  int32_t* out_ids = item_ids_.mutable_data();
  for (int pos = 0; pos < n; ++pos) {
    const int32_t src = perm[static_cast<size_t>(pos)];
    std::copy(coords + static_cast<size_t>(src) * static_cast<size_t>(dim_),
              coords + static_cast<size_t>(src + 1) * static_cast<size_t>(dim_),
              out_coords + static_cast<size_t>(pos) * static_cast<size_t>(dim_));
    out_weights[pos] = weights[src];
    out_ids[pos] = ids[src];
  }
  if (!nodes_.empty()) {
    root_mbr_ = Mbr::Empty(dim_);
    root_mbr_.ExtendRow(node_lo(0));
    root_mbr_.ExtendRow(node_hi(0));
  }
}

int KdTree::Build(int begin, int end, int leaf_size, const double* coords,
                  const double* weights, const int32_t* ids, int32_t* perm) {
  const int node_idx = static_cast<int>(nodes_.size());
  nodes_.push_back(KdNode{});
  node_bounds_.resize(node_bounds_.size() + 2 * static_cast<size_t>(dim_));
  {
    KdNode& node = nodes_.mutable_data()[node_idx];
    node.begin = begin;
    node.end = end;
    double* lo = node_bounds_.mutable_data() +
                 static_cast<size_t>(node_idx) * 2 * static_cast<size_t>(dim_);
    double* hi = lo + dim_;
    for (int k = 0; k < dim_; ++k) {
      lo[k] = std::numeric_limits<double>::infinity();
      hi[k] = -std::numeric_limits<double>::infinity();
    }
    double sum = 0.0;
    int32_t min_id = kNoIdBound;
    for (int i = begin; i < end; ++i) {
      const int32_t src = perm[i];
      const double* row =
          coords + static_cast<size_t>(src) * static_cast<size_t>(dim_);
      for (int k = 0; k < dim_; ++k) {
        lo[k] = std::min(lo[k], row[k]);
        hi[k] = std::max(hi[k], row[k]);
      }
      sum += weights[src];
      min_id = std::min(min_id, ids[src]);
    }
    node.weight_sum = sum;
    node.min_id = min_id;
  }
  if (end - begin <= leaf_size) return node_idx;

  // Split on the widest dimension at the median.
  int split_dim = 0;
  double widest = -1.0;
  {
    const double* lo = node_lo(node_idx);
    const double* hi = node_hi(node_idx);
    for (int i = 0; i < dim_; ++i) {
      const double extent = hi[i] - lo[i];
      if (extent > widest) {
        widest = extent;
        split_dim = i;
      }
    }
  }
  const int mid = begin + (end - begin) / 2;
  const size_t sdim = static_cast<size_t>(split_dim);
  const size_t d = static_cast<size_t>(dim_);
  std::nth_element(perm + begin, perm + mid, perm + end,
                   [coords, sdim, d](int32_t a, int32_t b) {
                     return coords[static_cast<size_t>(a) * d + sdim] <
                            coords[static_cast<size_t>(b) * d + sdim];
                   });
  // Degenerate case: all points identical in split_dim; bucket them.
  if (coords[static_cast<size_t>(perm[begin]) * d + sdim] ==
      coords[static_cast<size_t>(perm[end - 1]) * d + sdim]) {
    return node_idx;
  }
  const int left = Build(begin, mid, leaf_size, coords, weights, ids, perm);
  const int right = Build(mid, end, leaf_size, coords, weights, ids, perm);
  nodes_.mutable_data()[node_idx].left = left;
  nodes_.mutable_data()[node_idx].right = right;
  return node_idx;
}

double KdTree::SumInBox(const Mbr& box) const {
  if (nodes_.empty()) return 0.0;
  return SumRec(0, box);
}

double KdTree::SumRec(int node_idx, const Mbr& box) const {
  const KdNode& node = nodes_[static_cast<size_t>(node_idx)];
  if (!BoxIntersectsNode(box, node_idx)) return 0.0;
  if (BoxContainsNode(box, node_idx)) return node.weight_sum;
  if (node.is_leaf()) {
    double sum = 0.0;
    for (int i = node.begin; i < node.end; ++i) {
      if (box.ContainsRow(item_row(i))) {
        sum += item_weights_[static_cast<size_t>(i)];
      }
    }
    return sum;
  }
  return SumRec(node.left, box) + SumRec(node.right, box);
}

double KdTree::MinSignedDistance(int node_idx, const Hyperplane& hp) const {
  // SignedDistance(p) = p[d-1] - Σ coef_i p_i + offset is linear, so its
  // extremum over a box sits at a corner chosen per-coordinate by sign.
  const int d = hp.dim();
  const double* lo = node_lo(node_idx);
  const double* hi = node_hi(node_idx);
  double v = lo[d - 1] + hp.offset();
  for (int i = 0; i < d - 1; ++i) {
    const double c = hp.coef()[static_cast<size_t>(i)];
    v -= c * (c >= 0.0 ? hi[i] : lo[i]);
  }
  return v;
}

double KdTree::MaxSignedDistance(int node_idx, const Hyperplane& hp) const {
  const int d = hp.dim();
  const double* lo = node_lo(node_idx);
  const double* hi = node_hi(node_idx);
  double v = hi[d - 1] + hp.offset();
  for (int i = 0; i < d - 1; ++i) {
    const double c = hp.coef()[static_cast<size_t>(i)];
    v -= c * (c >= 0.0 ? lo[i] : hi[i]);
  }
  return v;
}

bool KdTree::ExistsInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                              int exclude_id) const {
  if (nodes_.empty()) return false;
  return ExistsRec(0, box, hp, eps, exclude_id);
}

bool KdTree::ExistsRec(int node_idx, const Mbr& box, const Hyperplane& hp,
                       double eps, int exclude_id) const {
  const KdNode& node = nodes_[static_cast<size_t>(node_idx)];
  if (!BoxIntersectsNode(box, node_idx)) return false;
  if (MinSignedDistance(node_idx, hp) > eps) return false;
  if (node.is_leaf()) {
    for (int i = node.begin; i < node.end; ++i) {
      if (item_ids_[static_cast<size_t>(i)] == exclude_id) continue;
      const double* row = item_row(i);
      if (box.ContainsRow(row) && hp.SignedDistanceRow(row) <= eps) {
        return true;
      }
    }
    return false;
  }
  return ExistsRec(node.left, box, hp, eps, exclude_id) ||
         ExistsRec(node.right, box, hp, eps, exclude_id);
}

}  // namespace arsp
