// Copyright 2026 The ARSP Authors.
//
// Static kd-tree over weighted, id-tagged points. Serves three roles:
//  * window (box) aggregation and reporting,
//  * half-space reporting restricted to an orthant (the practical substitute
//    for Meiser point location in the DUAL algorithm, §IV-A),
//  * emptiness tests for the eclipse DUAL-S algorithm.
//
// The tree is built once over a point set (median splits) and is immutable;
// incremental indexing is the R-tree's job.

#ifndef ARSP_INDEX_KDTREE_H_
#define ARSP_INDEX_KDTREE_H_

#include <utility>
#include <vector>

#include "src/geometry/hyperplane.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

class DatasetView;

/// A point with an integer payload id and a weight (existence probability
/// for uncertain instances; 1.0 for certain data).
struct KdItem {
  Point point;
  int id = 0;
  double weight = 1.0;
};

/// Immutable kd-tree with subtree weight aggregation.
///
/// Prefix reuse: every node tracks the minimum item id in its subtree, and
/// the reporting probes accept an `id_bound` that skips items with
/// id >= bound — subtrees consisting entirely of such items are pruned
/// wholesale. A tree built over a full dataset (ids = base instance ids)
/// therefore serves every object-prefix DatasetView exactly, with no
/// per-prefix rebuild: the prefix's id_bound() is the bound.
class KdTree {
 public:
  /// Builds the tree over `items` (may be empty). `leaf_size` bounds the
  /// bucket size at leaves.
  explicit KdTree(std::vector<KdItem> items, int leaf_size = 16);

  /// Builds over the instances of a DatasetView; item ids are *base*
  /// instance ids (so view.LocalInstanceOf translates probe hits uniformly
  /// whether the tree was built from this view or shared from the base).
  static KdTree FromView(const DatasetView& view, int leaf_size = 16);

  int size() const { return static_cast<int>(items_.size()); }
  int dim() const { return dim_; }

  /// Tight bounding box of the indexed points (empty box if size()==0).
  const Mbr& root_mbr() const;

  /// Sum of weights of points inside `box` (inclusive bounds).
  double SumInBox(const Mbr& box) const;

  /// Invokes `fn(item)` for every point inside `box`.
  template <typename Fn>
  void ForEachInBox(const Mbr& box, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitBox<Fn>(0, box, fn);
  }

  /// Invokes `fn(item)` for every point inside `box` that lies below or on
  /// the hyperplane `hp` (vertical tolerance eps).
  template <typename Fn>
  void ForEachInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                         Fn&& fn) const {
    ForEachInBoxBelow(box, hp, eps, kNoIdBound, std::forward<Fn>(fn));
  }

  /// Prefix-reuse variant: items with id >= id_bound are skipped, and
  /// subtrees whose minimum id is >= id_bound are pruned without descent.
  template <typename Fn>
  void ForEachInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                         int id_bound, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitBoxBelow<Fn>(0, box, hp, eps, id_bound, fn);
  }

  /// True iff some point with id != exclude_id lies inside `box` and below
  /// or on `hp`. Used by eclipse DUAL-S emptiness probes.
  bool ExistsInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                        int exclude_id) const;

 private:
  static constexpr int kNoIdBound = 2147483647;  // INT_MAX

  struct Node {
    Mbr mbr;
    double weight_sum = 0.0;
    int left = -1;    // child node indexes; -1 for leaves
    int right = -1;
    int begin = 0;    // item range [begin, end) for leaves
    int end = 0;
    int min_id = 0;   // minimum item id in the subtree (prefix pruning)
    bool is_leaf() const { return left < 0; }
  };

  int Build(int begin, int end, int leaf_size);

  // Minimum / maximum of hp.SignedDistance over the node's MBR.
  static double MinSignedDistance(const Mbr& mbr, const Hyperplane& hp);
  static double MaxSignedDistance(const Mbr& mbr, const Hyperplane& hp);

  template <typename Fn>
  void VisitBox(int node_idx, const Mbr& box, Fn& fn) const {
    const Node& node = nodes_[static_cast<size_t>(node_idx)];
    if (!box.Intersects(node.mbr)) return;
    if (node.is_leaf()) {
      for (int i = node.begin; i < node.end; ++i) {
        const KdItem& item = items_[static_cast<size_t>(i)];
        if (box.Contains(item.point)) fn(item);
      }
      return;
    }
    VisitBox(node.left, box, fn);
    VisitBox(node.right, box, fn);
  }

  template <typename Fn>
  void VisitBoxBelow(int node_idx, const Mbr& box, const Hyperplane& hp,
                     double eps, int id_bound, Fn& fn) const {
    const Node& node = nodes_[static_cast<size_t>(node_idx)];
    if (node.min_id >= id_bound) return;  // subtree is all out-of-prefix
    if (!box.Intersects(node.mbr)) return;
    if (MinSignedDistance(node.mbr, hp) > eps) return;  // fully above
    if (node.is_leaf()) {
      for (int i = node.begin; i < node.end; ++i) {
        const KdItem& item = items_[static_cast<size_t>(i)];
        if (item.id >= id_bound) continue;
        if (box.Contains(item.point) && hp.SignedDistance(item.point) <= eps) {
          fn(item);
        }
      }
      return;
    }
    VisitBoxBelow(node.left, box, hp, eps, id_bound, fn);
    VisitBoxBelow(node.right, box, hp, eps, id_bound, fn);
  }

  bool ExistsRec(int node_idx, const Mbr& box, const Hyperplane& hp,
                 double eps, int exclude_id) const;
  double SumRec(int node_idx, const Mbr& box) const;
  static bool BoxContainsMbr(const Mbr& box, const Mbr& mbr);

  int dim_;
  std::vector<KdItem> items_;
  std::vector<Node> nodes_;
  Mbr empty_mbr_;
};

}  // namespace arsp

#endif  // ARSP_INDEX_KDTREE_H_
