// Copyright 2026 The ARSP Authors.
//
// Static kd-tree over weighted, id-tagged points. Serves three roles:
//  * window (box) aggregation and reporting,
//  * half-space reporting restricted to an orthant (the practical substitute
//    for Meiser point location in the DUAL algorithm, §IV-A),
//  * emptiness tests for the eclipse DUAL-S algorithm.
//
// The tree is built once over a point set (median splits) and is immutable;
// incremental indexing is the R-tree's job.
//
// Storage is arena-flattened structure-of-arrays: item coordinates, weights,
// and ids live in three contiguous columns (build order), and nodes are one
// POD column plus a raw bounds column (min row then max row per node) —
// int32 child indices, no per-node heap allocations. Every column is a
// Column<T>, so a tree either owns its arenas (in-memory build) or borrows
// them from an mmap'ed snapshot section (src/io/snapshot.h) with zero parse
// and zero copy; probes are identical either way.

#ifndef ARSP_INDEX_KDTREE_H_
#define ARSP_INDEX_KDTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/column.h"
#include "src/geometry/hyperplane.h"
#include "src/geometry/mbr.h"
#include "src/geometry/point.h"

namespace arsp {

class DatasetView;

/// A point with an integer payload id and a weight (existence probability
/// for uncertain instances; 1.0 for certain data). Construction-side value
/// type; the tree stores columns, not KdItems.
struct KdItem {
  Point point;
  int id = 0;
  double weight = 1.0;
};

/// Flattened kd-tree node: child indexes instead of pointers, item range for
/// leaves, subtree aggregates. Bounds live in the parallel bounds column
/// (2 · dim doubles per node). POD with an explicit 32-byte layout so a node
/// pool serializes as one flat snapshot section.
struct KdNode {
  double weight_sum = 0.0;
  int32_t left = -1;    ///< child node indexes; -1 for leaves
  int32_t right = -1;
  int32_t begin = 0;    ///< item range [begin, end) for leaves
  int32_t end = 0;
  int32_t min_id = 0;   ///< minimum item id in the subtree (prefix pruning)
  int32_t pad = 0;      ///< explicit padding; keeps the file layout exact
  bool is_leaf() const { return left < 0; }
};
static_assert(sizeof(KdNode) == 32, "KdNode must have a fixed 32-byte layout");

/// Immutable kd-tree with subtree weight aggregation.
///
/// Prefix reuse: every node tracks the minimum item id in its subtree, and
/// the reporting probes accept an `id_bound` that skips items with
/// id >= bound — subtrees consisting entirely of such items are pruned
/// wholesale. A tree built over a full dataset (ids = base instance ids)
/// therefore serves every object-prefix DatasetView exactly, with no
/// per-prefix rebuild: the prefix's id_bound() is the bound.
class KdTree {
 public:
  /// What a reporting probe hands its callback: a raw coordinate row into
  /// the item arena plus the item's id and weight.
  struct EntryRef {
    const double* coords;
    int id;
    double weight;
  };

  /// Builds the tree over `items` (may be empty). `leaf_size` bounds the
  /// bucket size at leaves.
  explicit KdTree(const std::vector<KdItem>& items, int leaf_size = 16);

  /// Builds over the instances of a DatasetView; item ids are *base*
  /// instance ids (so view.LocalInstanceOf translates probe hits uniformly
  /// whether the tree was built from this view or shared from the base).
  static KdTree FromView(const DatasetView& view, int leaf_size = 16);

  /// Adopts already-built arenas (the snapshot mmap-load path). The columns
  /// must describe a tree produced by this class's builder; structural
  /// bounds are checked, contents are trusted (the snapshot layer owns
  /// checksumming).
  static KdTree FromFlat(int dim, Column<double> item_coords,
                         Column<double> item_weights, Column<int32_t> item_ids,
                         Column<KdNode> nodes, Column<double> node_bounds);

  int size() const { return static_cast<int>(item_ids_.size()); }
  int dim() const { return dim_; }

  /// Tight bounding box of the indexed points (empty box if size()==0).
  const Mbr& root_mbr() const { return root_mbr_; }

  // Raw arena access (snapshot writer, benches, tests).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Column<double>& item_coords_column() const { return item_coords_; }
  const Column<double>& item_weights_column() const { return item_weights_; }
  const Column<int32_t>& item_ids_column() const { return item_ids_; }
  const Column<KdNode>& nodes_column() const { return nodes_; }
  const Column<double>& node_bounds_column() const { return node_bounds_; }

  /// Resident vs. mapped bytes across all arenas.
  ColumnBytes memory_bytes() const;

  /// Sum of weights of points inside `box` (inclusive bounds).
  double SumInBox(const Mbr& box) const;

  /// Invokes `fn(EntryRef)` for every point inside `box`.
  template <typename Fn>
  void ForEachInBox(const Mbr& box, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitBox<Fn>(0, box, fn);
  }

  /// Invokes `fn(EntryRef)` for every point inside `box` that lies below or
  /// on the hyperplane `hp` (vertical tolerance eps).
  template <typename Fn>
  void ForEachInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                         Fn&& fn) const {
    ForEachInBoxBelow(box, hp, eps, kNoIdBound, std::forward<Fn>(fn));
  }

  /// Prefix-reuse variant: items with id >= id_bound are skipped, and
  /// subtrees whose minimum id is >= id_bound are pruned without descent.
  template <typename Fn>
  void ForEachInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                         int id_bound, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitBoxBelow<Fn>(0, box, hp, eps, id_bound, fn);
  }

  /// True iff some point with id != exclude_id lies inside `box` and below
  /// or on `hp`. Used by eclipse DUAL-S emptiness probes.
  bool ExistsInBoxBelow(const Mbr& box, const Hyperplane& hp, double eps,
                        int exclude_id) const;

 private:
  static constexpr int kNoIdBound = 2147483647;  // INT_MAX

  KdTree() = default;

  /// Runs the median-split build over staging arrays via an index
  /// permutation, then gathers the arenas into final (build) order.
  void BuildFrom(const double* coords, const double* weights,
                 const int32_t* ids, int n, int leaf_size);
  int Build(int begin, int end, int leaf_size, const double* coords,
            const double* weights, const int32_t* ids, int32_t* perm);

  const double* item_row(int i) const {
    return item_coords_.data() +
           static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  const double* node_lo(int node_idx) const {
    return node_bounds_.data() +
           static_cast<size_t>(node_idx) * 2 * static_cast<size_t>(dim_);
  }
  const double* node_hi(int node_idx) const { return node_lo(node_idx) + dim_; }

  bool BoxIntersectsNode(const Mbr& box, int node_idx) const {
    const double* lo = node_lo(node_idx);
    const double* hi = node_hi(node_idx);
    for (int i = 0; i < dim_; ++i) {
      if (hi[i] < box.min_corner()[i] || lo[i] > box.max_corner()[i]) {
        return false;
      }
    }
    return true;
  }
  bool BoxContainsNode(const Mbr& box, int node_idx) const {
    const double* lo = node_lo(node_idx);
    const double* hi = node_hi(node_idx);
    for (int i = 0; i < dim_; ++i) {
      if (lo[i] < box.min_corner()[i] || hi[i] > box.max_corner()[i]) {
        return false;
      }
    }
    return true;
  }

  // Minimum / maximum of hp.SignedDistance over the node's bounds.
  double MinSignedDistance(int node_idx, const Hyperplane& hp) const;
  double MaxSignedDistance(int node_idx, const Hyperplane& hp) const;

  EntryRef ItemRef(int i) const {
    return EntryRef{item_row(i), item_ids_[static_cast<size_t>(i)],
                    item_weights_[static_cast<size_t>(i)]};
  }

  template <typename Fn>
  void VisitBox(int node_idx, const Mbr& box, Fn& fn) const {
    const KdNode& node = nodes_[static_cast<size_t>(node_idx)];
    if (!BoxIntersectsNode(box, node_idx)) return;
    if (node.is_leaf()) {
      for (int i = node.begin; i < node.end; ++i) {
        if (box.ContainsRow(item_row(i))) fn(ItemRef(i));
      }
      return;
    }
    VisitBox(node.left, box, fn);
    VisitBox(node.right, box, fn);
  }

  template <typename Fn>
  void VisitBoxBelow(int node_idx, const Mbr& box, const Hyperplane& hp,
                     double eps, int id_bound, Fn& fn) const {
    const KdNode& node = nodes_[static_cast<size_t>(node_idx)];
    if (node.min_id >= id_bound) return;  // subtree is all out-of-prefix
    if (!BoxIntersectsNode(box, node_idx)) return;
    if (MinSignedDistance(node_idx, hp) > eps) return;  // fully above
    if (node.is_leaf()) {
      for (int i = node.begin; i < node.end; ++i) {
        if (item_ids_[static_cast<size_t>(i)] >= id_bound) continue;
        const double* row = item_row(i);
        if (box.ContainsRow(row) && hp.SignedDistanceRow(row) <= eps) {
          fn(ItemRef(i));
        }
      }
      return;
    }
    VisitBoxBelow(node.left, box, hp, eps, id_bound, fn);
    VisitBoxBelow(node.right, box, hp, eps, id_bound, fn);
  }

  bool ExistsRec(int node_idx, const Mbr& box, const Hyperplane& hp,
                 double eps, int exclude_id) const;
  double SumRec(int node_idx, const Mbr& box) const;

  int dim_ = 0;
  Column<double> item_coords_;    ///< size() × dim, row-major, build order
  Column<double> item_weights_;   ///< size()
  Column<int32_t> item_ids_;      ///< size()
  Column<KdNode> nodes_;          ///< node pool, preorder
  Column<double> node_bounds_;    ///< num_nodes × 2·dim (min row, max row)
  Mbr root_mbr_ = Mbr::Empty(0);
};

}  // namespace arsp

#endif  // ARSP_INDEX_KDTREE_H_
