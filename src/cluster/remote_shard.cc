// Copyright 2026 The ARSP Authors.

#include "src/cluster/remote_shard.h"

#include <utility>

namespace arsp {
namespace cluster {

namespace {

// Whether the connection that produced `status` is still trustworthy.
// Application-level failures (NotFound, InvalidArgument, Unavailable, ...)
// arrive in intact frames — the stream is fine. kInternal covers every
// transport failure (send/recv, framing, protocol violation); the server
// can also emit it for a genuine internal error, in which case discarding
// the connection is merely a wasted reconnect, never wrong.
bool ConnectionReusable(const Status& status) {
  return status.code() != StatusCode::kInternal &&
         status.code() != StatusCode::kFailedPrecondition;
}

const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}

}  // namespace

RemoteShard::RemoteShard(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

StatusOr<net::ArspClient> RemoteShard::Checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      net::ArspClient client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
  }
  return net::ArspClient::Connect(host_, port_);
}

void RemoteShard::Return(net::ArspClient client) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(client));
}

// One borrowed round trip: checkout (or dial), call, return the connection
// to the pool unless it may be poisoned.
#define ARSP_REMOTE_CALL(METHOD, ...)                         \
  do {                                                        \
    auto client = Checkout();                                 \
    if (!client.ok()) return client.status();                 \
    auto result = client->METHOD(__VA_ARGS__);                \
    if (ConnectionReusable(StatusOf(result))) {               \
      Return(std::move(*client));                             \
    }                                                         \
    return result;                                            \
  } while (0)

StatusOr<LoadDatasetResponse> RemoteShard::Load(
    const LoadDatasetRequest& request) {
  ARSP_REMOTE_CALL(LoadDataset, request);
}

StatusOr<AddViewResponse> RemoteShard::AddView(const AddViewRequest& request) {
  ARSP_REMOTE_CALL(AddView, request);
}

StatusOr<QueryResponseWire> RemoteShard::Query(
    const QueryRequestWire& request) {
  ARSP_REMOTE_CALL(Query, request);
}

StatusOr<StatsResponse> RemoteShard::Stats(const StatsRequest& request) {
  ARSP_REMOTE_CALL(Stats, request.dataset);
}

Status RemoteShard::Drop(const DropRequest& request) {
  ARSP_REMOTE_CALL(Drop, request.name);
}

#undef ARSP_REMOTE_CALL

}  // namespace cluster
}  // namespace arsp
