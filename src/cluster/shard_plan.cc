// Copyright 2026 The ARSP Authors.

#include "src/cluster/shard_plan.h"

#include <algorithm>

namespace arsp {
namespace cluster {

uint64_t ShardPlan::Hash(const std::string& key) {
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  // Raw FNV-1a avalanches poorly at the tail: keys differing only in the
  // last character end up within ~15*prime (≈2^44) of each other, which
  // clusters ring vnodes and starves shards of ring arc. The fmix64
  // finalizer restores full 64-bit diffusion.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardPlan::ShardPlan(std::vector<std::string> shard_names,
                     ShardPlanOptions options)
    : shard_names_(std::move(shard_names)), options_(options) {
  const int vnodes = std::max(1, options_.virtual_nodes);
  ring_.reserve(shard_names_.size() * static_cast<size_t>(vnodes));
  for (int s = 0; s < num_shards(); ++s) {
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(Hash(shard_names_[static_cast<size_t>(s)] + "#" +
                              std::to_string(v)),
                         s);
    }
  }
  // Ties (hash collisions between ring points) break on shard index so the
  // plan is deterministic regardless of construction order.
  std::sort(ring_.begin(), ring_.end());
}

std::vector<int> ShardPlan::HoldersFor(const std::string& dataset) const {
  std::vector<int> holders;
  if (ring_.empty()) return holders;
  const int want = options_.replication <= 0
                       ? num_shards()
                       : std::min(options_.replication, num_shards());
  holders.reserve(static_cast<size_t>(want));
  const uint64_t point = Hash(dataset);
  // First ring entry clockwise of the dataset's point, wrapping.
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, 0));
  for (size_t walked = 0;
       walked < ring_.size() && static_cast<int>(holders.size()) < want;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const int shard = it->second;
    if (std::find(holders.begin(), holders.end(), shard) == holders.end()) {
      holders.push_back(shard);
    }
  }
  return holders;
}

std::vector<std::pair<int, int>> ShardPlan::EvenPartition(int num_objects,
                                                          int parts) {
  std::vector<std::pair<int, int>> ranges;
  if (parts <= 0) return ranges;
  ranges.reserve(static_cast<size_t>(parts));
  const int base = num_objects / parts;
  const int extra = num_objects % parts;
  int begin = 0;
  for (int p = 0; p < parts; ++p) {
    const int size = base + (p < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  return ranges;
}

}  // namespace cluster
}  // namespace arsp
