// Copyright 2026 The ARSP Authors.
//
// RemoteShard — a ServiceBackend over an arspd peer. ArspClient is one
// blocking connection with strictly sequential requests, so concurrency
// comes from a checkout/return pool: each call borrows an idle connection
// (or dials a new one), runs the round trip, and returns it. A connection
// that saw a transport error is discarded, not returned — the next call
// dials fresh, which is the reconnect policy.

#ifndef ARSP_CLUSTER_REMOTE_SHARD_H_
#define ARSP_CLUSTER_REMOTE_SHARD_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/net/backend.h"
#include "src/net/client.h"

namespace arsp {
namespace cluster {

using net::AddViewRequest;
using net::AddViewResponse;
using net::DropRequest;
using net::LoadDatasetRequest;
using net::LoadDatasetResponse;
using net::QueryRequestWire;
using net::QueryResponseWire;
using net::StatsRequest;
using net::StatsResponse;

class RemoteShard : public net::ServiceBackend {
 public:
  RemoteShard(std::string host, int port);

  StatusOr<LoadDatasetResponse> Load(const LoadDatasetRequest& request) override;
  StatusOr<AddViewResponse> AddView(const AddViewRequest& request) override;
  StatusOr<QueryResponseWire> Query(const QueryRequestWire& request) override;
  StatusOr<StatsResponse> Stats(const StatsRequest& request) override;
  Status Drop(const DropRequest& request) override;

  const std::string& host() const { return host_; }
  int port() const { return port_; }
  std::string address() const { return host_ + ":" + std::to_string(port_); }

 private:
  StatusOr<net::ArspClient> Checkout();
  void Return(net::ArspClient client);

  std::string host_;
  int port_;
  std::mutex mu_;
  std::vector<net::ArspClient> idle_;
};

}  // namespace cluster
}  // namespace arsp

#endif  // ARSP_CLUSTER_REMOTE_SHARD_H_
