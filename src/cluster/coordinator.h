// Copyright 2026 The ARSP Authors.
//
// Coordinator — turns N shards (in-process EngineBackends or remote arspd
// peers behind RemoteShard) into one logical ARSP service with the same
// ServiceBackend interface, so an ArspServer can serve it over the wire
// unchanged (arspd --coordinator).
//
// Placement: LOAD fans a dataset out to the shards ShardPlan picks for it
// (consistent hashing, `replication` copies); every holder gets the FULL
// dataset. Rskyline dominance is global — a shard holding a subset of the
// objects would compute wrong probabilities — so scale-out never splits
// data, it splits *evaluation scope*: a QUERY is scattered to the holders
// with disjoint contiguous object ranges (QueryRequestWire.scope_*), each
// holder evaluates only its range (goal pushdown prunes the rest), and the
// merge below reassembles the exact unsharded answer.
//
// Merge, per derived kind:
//   * full — per-scope instance slices are exact and disjoint; concatenate
//     by instance_offset, sum per-scope result sizes. Bit-identical by the
//     scoped-goal invariants (tests/scoped_goal_test.cc).
//   * top-k / count-controlled — every shard answers its scope with the
//     *global* k, so the union of per-scope ranked lists provably contains
//     the global answer (an object in the global top-k has fewer than k
//     better objects anywhere, in particular in its own scope). λ = the
//     k-th merged candidate; any in-scope object a shard left undecided
//     whose upper bound reaches λ − ε is fetched exactly in a second,
//     single-object-scope refinement round. Objects a shard *excluded* are
//     provably below its scope's k-th lower bound, which global merging
//     only raises — never refined. Final slicing replicates AnswerGoal's
//     SliceRanked rules exactly (ties / resize / derived threshold).
//   * p-threshold — union of per-scope answers; undecided objects whose
//     upper reaches p − ε are refined the same way.
//   * top-k instances — instance-level goals need the complete solve and
//     do not partition; forwarded to one holder (full replication makes
//     any holder authoritative). Already-scoped requests pass through the
//     same way: the caller is doing its own partitioning.
//
// Thread safety: all methods are safe for concurrent calls (the server
// invokes them from every connection handler). Scatter and refinement run
// on an internal pool; pool tasks never re-enter the pool, so fan-out from
// many connections cannot deadlock.

#ifndef ARSP_CLUSTER_COORDINATOR_H_
#define ARSP_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/cluster/shard_plan.h"
#include "src/net/backend.h"
#include "src/obs/trace.h"

namespace arsp {
namespace cluster {

// The cluster layer speaks the wire vocabulary natively.
using net::AddViewRequest;
using net::AddViewResponse;
using net::DatasetInfo;
using net::DropRequest;
using net::LoadDatasetRequest;
using net::LoadDatasetResponse;
using net::ObjectReportWire;
using net::QueryRequestWire;
using net::QueryResponseWire;
using net::RankedEntry;
using net::StatsRequest;
using net::StatsResponse;
using net::WireDerivedKind;
using net::WireSolverStats;

struct CoordinatorOptions {
  ShardPlanOptions plan;
  /// Scatter/refinement concurrency; 0 = max(num_shards,
  /// ThreadPool::DefaultConcurrency()).
  int fanout_threads = 0;
  /// Test hook: (num_objects, num_holders) → per-holder scope ranges. Must
  /// return exactly num_holders disjoint ranges covering [0, num_objects)
  /// in ascending order (empty ranges allowed). Null = even split.
  std::function<std::vector<std::pair<int, int>>(int, int)> partition_fn;
};

class Coordinator : public net::ServiceBackend {
 public:
  /// `shards[i]` is named `shard_names[i]` (the ring key — for remote
  /// shards, conventionally host:port). Sizes must match and be non-empty.
  Coordinator(std::vector<std::shared_ptr<net::ServiceBackend>> shards,
              std::vector<std::string> shard_names,
              CoordinatorOptions options = {});

  StatusOr<LoadDatasetResponse> Load(const LoadDatasetRequest& request) override;
  StatusOr<AddViewResponse> AddView(const AddViewRequest& request) override;
  StatusOr<QueryResponseWire> Query(const QueryRequestWire& request) override;
  StatusOr<StatsResponse> Stats(const StatsRequest& request) override;
  Status Drop(const DropRequest& request) override;

  const ShardPlan& plan() const { return plan_; }

 private:
  struct Placement {
    std::vector<int> holders;
    int num_objects = 0;
  };

  /// Runs every task on the fan-out pool and blocks until all finish.
  void RunParallel(std::vector<std::function<void()>>* tasks);

  StatusOr<Placement> PlacementFor(const std::string& name) const;

  /// Scatter-gather for kNone (the full ARSP answer). `trace` (nullable)
  /// gains scatter/merge phase spans with each shard's reply subtree
  /// stitched under the scatter span.
  StatusOr<QueryResponseWire> ScatterFull(const QueryRequestWire& request,
                                          const Placement& placement,
                                          obs::Trace* trace);
  /// Scatter-gather + refinement for the object-ranking kinds; the trace
  /// additionally gains a refine span when a refinement round runs.
  StatusOr<QueryResponseWire> ScatterRanked(const QueryRequestWire& request,
                                            const Placement& placement,
                                            obs::Trace* trace);
  /// Forwards `request` unchanged to one holder (round robin).
  StatusOr<QueryResponseWire> ForwardToOne(const QueryRequestWire& request,
                                           const Placement& placement,
                                           obs::Trace* trace);

  std::vector<std::pair<int, int>> PartitionScopes(int num_objects,
                                                   int parts) const;

  std::vector<std::shared_ptr<net::ServiceBackend>> shards_;
  ShardPlan plan_;
  CoordinatorOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<uint64_t> round_robin_{0};

  mutable std::mutex mu_;
  std::map<std::string, Placement> registry_;
};

}  // namespace cluster
}  // namespace arsp

#endif  // ARSP_CLUSTER_COORDINATOR_H_
