// Copyright 2026 The ARSP Authors.
//
// ShardPlan — placement policy for the cluster layer: which shards hold
// which named datasets, and how a query's evaluation work is partitioned
// across the holders.
//
// Placement is a consistent-hash ring over shard names with virtual nodes:
// a dataset name hashes to a point on the ring and is placed on the next
// `replication` distinct shards clockwise. Adding or removing one shard
// therefore moves only ~1/S of the datasets (the classic consistent-hashing
// property, asserted by shard_plan_test), instead of reshuffling everything
// the way `hash(name) % S` would.
//
// Work partitioning is deliberately NOT subset sharding. Rskyline
// probabilities couple every object to every other object through
// F-dominance, so a shard holding a subset of the objects computes *wrong*
// probabilities — there is no local fix-up. Instead every holder has the
// full dataset and the coordinator splits the *evaluation scope* (a
// contiguous range of view-local object ids, see QueryGoal::WithScope):
// each holder evaluates its range against the full dataset, which keeps
// every per-instance value bit-identical to an unsharded solve.

#ifndef ARSP_CLUSTER_SHARD_PLAN_H_
#define ARSP_CLUSTER_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace arsp {
namespace cluster {

struct ShardPlanOptions {
  /// Copies of each dataset. Clamped to [1, num_shards]. More replicas mean
  /// more scatter width per query (more parallelism) and more load-time
  /// fan-out; `num_shards` replicates everything everywhere.
  int replication = 0;  ///< 0 = replicate onto every shard
  /// Virtual nodes per shard on the hash ring; more = smoother spread.
  int virtual_nodes = 64;
};

/// Immutable placement over a fixed shard set. Rebuild the plan to change
/// membership (the registry remembers where each dataset actually landed).
class ShardPlan {
 public:
  ShardPlan(std::vector<std::string> shard_names, ShardPlanOptions options);

  int num_shards() const { return static_cast<int>(shard_names_.size()); }
  const std::vector<std::string>& shard_names() const { return shard_names_; }

  /// The shard indices holding `dataset`, in ring order, deduplicated.
  /// Size = min(replication, num_shards); never empty for num_shards > 0.
  std::vector<int> HoldersFor(const std::string& dataset) const;

  /// Splits [0, num_objects) into `parts` contiguous ranges, sizes as even
  /// as possible (the first `num_objects % parts` ranges get one extra).
  /// Returns exactly `parts` pairs; trailing ranges are empty when
  /// num_objects < parts. This is the default query partition; tests
  /// exercise the coordinator with adversarially skewed splits instead.
  static std::vector<std::pair<int, int>> EvenPartition(int num_objects,
                                                        int parts);

  /// FNV-1a with a murmur-style fmix64 finalizer. Raw FNV-1a barely mixes
  /// the final byte (last-character variants cluster within ~2^44 of each
  /// other), which is fatal for ring placement; the finalizer fixes it.
  static uint64_t Hash(const std::string& key);

 private:
  std::vector<std::string> shard_names_;
  ShardPlanOptions options_;
  /// Ring points sorted by hash: (point, shard index).
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace cluster
}  // namespace arsp

#endif  // ARSP_CLUSTER_SHARD_PLAN_H_
