// Copyright 2026 The ARSP Authors.

#include "src/cluster/coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <limits>

#include "src/common/macros.h"
#include "src/core/arsp_result.h"

namespace arsp {
namespace cluster {

namespace {

// A shard's goal string is the scoped goal ("top-5 scope=[0,7)"); the
// coordinator's assembled answer presents as the unscoped query, exactly
// what a single daemon would report.
std::string StripScopeSuffix(const std::string& goal) {
  const size_t pos = goal.rfind(" scope=[");
  return pos == std::string::npos ? goal : goal.substr(0, pos);
}

void AddStats(WireSolverStats* total, const WireSolverStats& part) {
  if (total->solver.empty()) total->solver = part.solver;
  total->setup_millis += part.setup_millis;
  total->solve_millis += part.solve_millis;
  total->dominance_tests += part.dominance_tests;
  total->nodes_visited += part.nodes_visited;
  total->nodes_pruned += part.nodes_pruned;
  total->index_probes += part.index_probes;
  total->objects_pruned += part.objects_pruned;
  total->bound_refinements += part.bound_refinements;
  total->early_exit_depth =
      std::max(total->early_exit_depth, part.early_exit_depth);
  total->tasks_spawned += part.tasks_spawned;
  total->tasks_stolen += part.tasks_stolen;
  // Workers sum across shards: the merged figure is the cluster-wide
  // intra-query worker count, matching how the timing fields add up.
  total->parallel_workers += part.parallel_workers;
}

// Stitches one shard reply's span subtree (if it carries one) under the
// trace's innermost open span — called with the scatter/refine span open,
// strictly after RunParallel returned (the Trace is single-threaded).
// The subtree keeps its shard-local clock (offsets are per-process; only
// structure and durations are comparable across the stitch boundary).
void AdoptShardTrace(obs::Trace* trace, const QueryResponseWire& part,
                     int shard) {
  if (trace == nullptr || part.trace_spans.empty()) return;
  std::vector<obs::Span> subtree;
  if (!obs::DeserializeSpans(part.trace_spans, &subtree) || subtree.empty()) {
    return;
  }
  subtree[0].annotations.emplace_back("shard", std::to_string(shard));
  trace->AdoptChild(std::move(subtree[0]));
}

// The exact comparator of TopKObjects / AnswerGoal: probability descending,
// base object id ascending. Merged candidates sorted with the same rule
// over bit-identical probabilities reproduce the unsharded order.
bool RankedLess(const RankedEntry& a, const RankedEntry& b) {
  if (a.prob != b.prob) return a.prob > b.prob;
  return a.object_id < b.object_id;
}

// Replicates queries.cc SliceRanked on merged candidates so the assembled
// answer obeys the identical boundary rules (resize / ties / threshold).
void SliceMerged(std::vector<RankedEntry>* ranked,
                 const QueryRequestWire& request, double* count_threshold) {
  switch (request.derived_kind) {
    case WireDerivedKind::kTopKObjects:
      // k < 0 ranks everything (the full-slicing collapse); k == 0 is an
      // empty answer, not everything.
      if (request.k >= 0 &&
          ranked->size() > static_cast<size_t>(request.k)) {
        ranked->resize(static_cast<size_t>(request.k));
      }
      break;
    case WireDerivedKind::kCountControlled: {
      const size_t cut =
          std::min(ranked->size(),
                   static_cast<size_t>(std::max(0, request.max_objects)));
      const double threshold = cut == 0 ? 0.0 : (*ranked)[cut - 1].prob;
      *count_threshold = threshold;
      while (!ranked->empty() && ranked->back().prob < threshold) {
        ranked->pop_back();
      }
      break;
    }
    case WireDerivedKind::kObjectsAboveThreshold: {
      const auto cut = std::find_if(
          ranked->begin(), ranked->end(), [&request](const RankedEntry& e) {
            return e.prob < request.threshold;
          });
      ranked->erase(cut, ranked->end());
      break;
    }
    default:
      break;
  }
}

}  // namespace

Coordinator::Coordinator(
    std::vector<std::shared_ptr<net::ServiceBackend>> shards,
    std::vector<std::string> shard_names, CoordinatorOptions options)
    : shards_(std::move(shards)),
      plan_(std::move(shard_names), options.plan),
      options_(std::move(options)) {
  ARSP_CHECK_MSG(!shards_.empty(), "coordinator needs at least one shard");
  ARSP_CHECK_MSG(static_cast<int>(shards_.size()) == plan_.num_shards(),
                 "shards/shard_names size mismatch");
  const int threads =
      options_.fanout_threads > 0
          ? options_.fanout_threads
          : std::max(static_cast<int>(shards_.size()),
                     ThreadPool::DefaultConcurrency());
  pool_ = std::make_unique<ThreadPool>(threads);
}

void Coordinator::RunParallel(std::vector<std::function<void()>>* tasks) {
  if (tasks->empty()) return;
  if (tasks->size() == 1) {
    (*tasks)[0]();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = tasks->size();
  for (auto& task : *tasks) {
    pool_->Submit([&mu, &cv, &remaining, &task] {
      task();
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

StatusOr<Coordinator::Placement> Coordinator::PlacementFor(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("dataset '" + name +
                            "' is not registered with this coordinator "
                            "(LOAD it through the coordinator first)");
  }
  return it->second;
}

std::vector<std::pair<int, int>> Coordinator::PartitionScopes(
    int num_objects, int parts) const {
  if (options_.partition_fn != nullptr) {
    return options_.partition_fn(num_objects, parts);
  }
  return ShardPlan::EvenPartition(num_objects, parts);
}

StatusOr<LoadDatasetResponse> Coordinator::Load(
    const LoadDatasetRequest& request) {
  const std::vector<int> holders = plan_.HoldersFor(request.name);
  std::vector<StatusOr<LoadDatasetResponse>> results(
      holders.size(), Status::Internal("not run"));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(holders.size());
  for (size_t i = 0; i < holders.size(); ++i) {
    tasks.push_back([this, &request, &results, &holders, i] {
      results[i] =
          shards_[static_cast<size_t>(holders[i])]->Load(request);
    });
  }
  RunParallel(&tasks);
  // All-or-error: failed holders are reported; succeeded holders keep the
  // dataset (loads are idempotent, so a retry converges).
  for (const auto& result : results) {
    if (!result.ok()) return result.status();
  }
  LoadDatasetResponse response = *results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    response.reused = response.reused && results[i]->reused;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Placement& placement = registry_[request.name];
    placement.holders = holders;
    placement.num_objects = response.num_objects;
  }
  return response;
}

StatusOr<AddViewResponse> Coordinator::AddView(const AddViewRequest& request) {
  auto base = PlacementFor(request.base_name);
  if (!base.ok()) return base.status();
  std::vector<StatusOr<AddViewResponse>> results(
      base->holders.size(), Status::Internal("not run"));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(base->holders.size());
  for (size_t i = 0; i < base->holders.size(); ++i) {
    const int shard = base->holders[i];
    tasks.push_back([this, &request, &results, shard, i] {
      results[i] = shards_[static_cast<size_t>(shard)]->AddView(request);
    });
  }
  RunParallel(&tasks);
  for (const auto& result : results) {
    if (!result.ok()) return result.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Placement& placement = registry_[request.view_name];
    placement.holders = base->holders;
    placement.num_objects = results[0]->num_objects;
  }
  return *results[0];
}

StatusOr<QueryResponseWire> Coordinator::ForwardToOne(
    const QueryRequestWire& request, const Placement& placement,
    obs::Trace* trace) {
  const size_t pick =
      round_robin_.fetch_add(1, std::memory_order_relaxed) %
      placement.holders.size();
  const int shard = placement.holders[pick];
  obs::ScopedSpan forward_span(trace, "forward");
  forward_span.Annotate("shard", static_cast<int64_t>(shard));
  auto result = shards_[static_cast<size_t>(shard)]->Query(request);
  if (result.ok()) AdoptShardTrace(trace, *result, shard);
  return result;
}

StatusOr<QueryResponseWire> Coordinator::Query(
    const QueryRequestWire& request) {
  auto placement = PlacementFor(request.dataset);
  if (!placement.ok()) return placement.status();
  ARSP_CHECK(!placement->holders.empty());

  // Distributed tracing: one id — the caller's if stamped, freshly minted
  // otherwise — rides in every scattered frame, so each shard's reply
  // subtree stitches under this coordinator trace into one cross-process
  // timeline. Untraced requests keep trace == nullptr end to end.
  std::unique_ptr<obs::Trace> trace;
  QueryRequestWire effective = request;
  if (request.want_trace) {
    trace = std::make_unique<obs::Trace>(
        request.trace_id != 0 ? request.trace_id : obs::Trace::NewTraceId(),
        "coordinator_query");
    effective.trace_id = trace->id();
  }

  // Instance-level goals need the complete solve (no scope semantics), and
  // an already-scoped request means the caller partitions for itself;
  // either way a single holder is authoritative — full replication.
  const bool passthrough =
      request.derived_kind == WireDerivedKind::kTopKInstances ||
      request.scope_begin >= 0 || request.scope_end >= 0 ||
      placement->holders.size() == 1;
  StatusOr<QueryResponseWire> out =
      passthrough ? ForwardToOne(effective, *placement, trace.get())
      : request.derived_kind == WireDerivedKind::kNone
          ? ScatterFull(effective, *placement, trace.get())
          : ScatterRanked(effective, *placement, trace.get());
  if (out.ok() && trace != nullptr) {
    trace->Annotate("dataset", request.dataset);
    trace->Finish();
    out->trace_id = trace->id();
    out->trace_spans = obs::SerializeSpans({trace->root()});
    obs::MaybeWriteChromeTrace(trace->root(), trace->id());
  }
  return out;
}

StatusOr<QueryResponseWire> Coordinator::ScatterFull(
    const QueryRequestWire& request, const Placement& placement,
    obs::Trace* trace) {
  const std::vector<std::pair<int, int>> scopes = PartitionScopes(
      placement.num_objects, static_cast<int>(placement.holders.size()));
  ARSP_CHECK(scopes.size() == placement.holders.size());

  std::vector<StatusOr<QueryResponseWire>> results(
      placement.holders.size(), Status::Internal("not run"));
  {
    obs::ScopedSpan scatter_span(trace, "scatter");
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < placement.holders.size(); ++i) {
      if (scopes[i].first >= scopes[i].second) continue;  // empty scope
      const int shard = placement.holders[i];
      tasks.push_back([this, &request, &results, &scopes, shard, i] {
        QueryRequestWire scoped = request;
        scoped.scope_begin = scopes[i].first;
        scoped.scope_end = scopes[i].second;
        results[i] = shards_[static_cast<size_t>(shard)]->Query(scoped);
      });
    }
    scatter_span.Annotate("fanout", static_cast<int64_t>(tasks.size()));
    RunParallel(&tasks);
    for (size_t i = 0; i < results.size(); ++i) {
      if (scopes[i].first >= scopes[i].second || !results[i].ok()) continue;
      AdoptShardTrace(trace, *results[i], placement.holders[i]);
    }
  }
  obs::ScopedSpan merge_span(trace, "merge");

  QueryResponseWire out;
  // The assembled full answer presents exactly as an unsharded full solve:
  // complete, goal "full", no pushdown (the per-shard scope pushdown is an
  // internal mechanism, invisible in the unscoped answer).
  out.complete = true;
  out.goal = "full";
  out.cache_hit = true;
  out.result_size = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (scopes[i].first >= scopes[i].second) continue;
    if (!results[i].ok()) return results[i].status();
    const QueryResponseWire& part = *results[i];
    if (out.solver.empty()) out.solver = part.solver;
    out.cache_hit = out.cache_hit && part.cache_hit;
    AddStats(&out.stats, part.stats);
    if (part.result_size >= 0) out.result_size += part.result_size;
    if (request.include_instances) {
      // Disjoint contiguous slices placed at their offsets reassemble the
      // full vector.
      const size_t begin = static_cast<size_t>(part.instance_offset);
      const size_t end = begin + part.instance_probs.size();
      if (end > out.instance_probs.size()) {
        out.instance_probs.resize(end, 0.0);
      }
      std::copy(part.instance_probs.begin(), part.instance_probs.end(),
                out.instance_probs.begin() + static_cast<long>(begin));
    }
  }
  return out;
}

StatusOr<QueryResponseWire> Coordinator::ScatterRanked(
    const QueryRequestWire& request, const Placement& placement,
    obs::Trace* trace) {
  const std::vector<std::pair<int, int>> scopes = PartitionScopes(
      placement.num_objects, static_cast<int>(placement.holders.size()));
  ARSP_CHECK(scopes.size() == placement.holders.size());

  std::vector<StatusOr<QueryResponseWire>> results(
      placement.holders.size(), Status::Internal("not run"));
  {
    obs::ScopedSpan scatter_span(trace, "scatter");
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < placement.holders.size(); ++i) {
      if (scopes[i].first >= scopes[i].second) continue;
      const int shard = placement.holders[i];
      tasks.push_back([this, &request, &results, &scopes, shard, i] {
        // Each scope answers with the GLOBAL goal parameters (k, p): an
        // object in the global answer has fewer than k better objects in its
        // own scope, so the union of per-scope answers covers the global
        // answer (see header).
        QueryRequestWire scoped = request;
        scoped.scope_begin = scopes[i].first;
        scoped.scope_end = scopes[i].second;
        scoped.include_instances = request.include_instances;
        results[i] = shards_[static_cast<size_t>(shard)]->Query(scoped);
      });
    }
    scatter_span.Annotate("fanout", static_cast<int64_t>(tasks.size()));
    RunParallel(&tasks);
    for (size_t i = 0; i < results.size(); ++i) {
      if (scopes[i].first >= scopes[i].second || !results[i].ok()) continue;
      AdoptShardTrace(trace, *results[i], placement.holders[i]);
    }
  }
  QueryResponseWire out;
  out.complete = true;
  out.cache_hit = true;
  std::vector<RankedEntry> candidates;
  // (holder index, view-local object id, upper bound) of every in-scope
  // object some shard left undecided — the refinement work list.
  struct Undecided {
    int holder;
    int object;
    double upper;
  };
  std::vector<Undecided> undecided;
  std::vector<Undecided> refine;
  {
    obs::ScopedSpan merge_span(trace, "merge");
    for (size_t i = 0; i < results.size(); ++i) {
      if (scopes[i].first >= scopes[i].second) continue;
      if (!results[i].ok()) return results[i].status();
      const QueryResponseWire& part = *results[i];
      if (out.solver.empty()) {
        out.solver = part.solver;
        out.goal = StripScopeSuffix(part.goal);
      }
      out.cache_hit = out.cache_hit && part.cache_hit;
      out.pushdown = out.pushdown || part.pushdown;
      out.complete = out.complete && part.complete;
      AddStats(&out.stats, part.stats);
      candidates.insert(candidates.end(), part.ranked.begin(),
                        part.ranked.end());
      for (const ObjectReportWire& report : part.object_reports) {
        if (report.decision ==
            static_cast<uint8_t>(ObjectDecision::kUndecided)) {
          undecided.push_back(
              Undecided{static_cast<int>(i), report.object_id, report.upper});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(), RankedLess);

    // λ — the value an object must reach to influence the merged answer.
    // Undecided objects (a shard stopped refining once its scope's goal was
    // met) whose upper bound reaches it are fetched exactly; excluded
    // objects are provably below their scope's cut, which merging only
    // raises.
    double lambda;
    if (request.derived_kind == WireDerivedKind::kObjectsAboveThreshold) {
      lambda = request.threshold;
    } else {
      const int k = request.derived_kind == WireDerivedKind::kCountControlled
                        ? request.max_objects
                        : request.k;
      lambda =
          (k >= 0 && candidates.size() >= static_cast<size_t>(k) && k > 0)
              ? candidates[static_cast<size_t>(k) - 1].prob
              : -std::numeric_limits<double>::infinity();
      if (k == 0 &&
          request.derived_kind == WireDerivedKind::kTopKObjects) {
        // Empty answer; nothing can influence it.
        lambda = std::numeric_limits<double>::infinity();
      }
    }

    for (const Undecided& u : undecided) {
      if (u.upper >= lambda - kProbabilityEps) refine.push_back(u);
    }
    merge_span.Annotate("candidates",
                        static_cast<int64_t>(candidates.size()));
    merge_span.Annotate("undecided", static_cast<int64_t>(undecided.size()));
  }
  if (!refine.empty()) {
    obs::ScopedSpan refine_span(trace, "refine");
    refine_span.Annotate("objects", static_cast<int64_t>(refine.size()));
    std::vector<StatusOr<QueryResponseWire>> refined(
        refine.size(), Status::Internal("not run"));
    std::vector<std::function<void()>> refine_tasks;
    refine_tasks.reserve(refine.size());
    for (size_t i = 0; i < refine.size(); ++i) {
      refine_tasks.push_back([this, &request, &refine, &refined,
                              &placement, i] {
        // A single-object scope with k = 1 forces the object exact (k ≥
        // |scope| disables top-k pruning) and returns it ranked with its
        // base id and name.
        QueryRequestWire probe = request;
        probe.derived_kind = WireDerivedKind::kTopKObjects;
        probe.k = 1;
        probe.include_instances = false;
        probe.scope_begin = refine[i].object;
        probe.scope_end = refine[i].object + 1;
        const int shard = placement.holders[static_cast<size_t>(
            refine[i].holder)];
        refined[i] = shards_[static_cast<size_t>(shard)]->Query(probe);
      });
    }
    RunParallel(&refine_tasks);
    for (size_t i = 0; i < refined.size(); ++i) {
      if (!refined[i].ok()) return refined[i].status();
      AdoptShardTrace(
          trace, *refined[i],
          placement.holders[static_cast<size_t>(refine[i].holder)]);
      AddStats(&out.stats, refined[i]->stats);
      out.cache_hit = out.cache_hit && refined[i]->cache_hit;
      if (!refined[i]->ranked.empty()) {
        candidates.push_back(refined[i]->ranked.front());
      }
    }
    std::sort(candidates.begin(), candidates.end(), RankedLess);
  }

  SliceMerged(&candidates, request, &out.count_threshold);
  out.ranked = std::move(candidates);
  // k < 0 collapses to a full solve per scope (GoalForDerived): every
  // in-scope answer is exact and the scopes cover the view, so the merged
  // ranking is complete even though each scoped part reports partial —
  // exactly what the unsharded daemon reports for the same request.
  const bool full_equivalent =
      request.derived_kind == WireDerivedKind::kTopKObjects && request.k < 0;
  if (full_equivalent) {
    out.complete = true;
    int32_t total = 0;
    bool have_sizes = true;
    for (size_t i = 0; i < results.size(); ++i) {
      if (scopes[i].first >= scopes[i].second) continue;
      if (results[i]->result_size < 0) have_sizes = false;
      total += std::max(0, results[i]->result_size);
    }
    if (have_sizes) out.result_size = total;  // per-scope counts, summed
  }
  if (out.complete) {
    // Every shard ran a goal-oblivious solver (or served a cached full
    // answer): per-scope slices are exact everywhere, so the full-result
    // extras a single complete daemon reply carries can be assembled too.
    if (!full_equivalent) {
      // Complete shards of a non-full goal report the *global* nonzero
      // count (they solved the full dataset); any one is authoritative.
      // (full_equivalent parts report per-scope counts, summed above.)
      bool have_sizes = true;
      for (size_t i = 0; i < results.size(); ++i) {
        if (scopes[i].first >= scopes[i].second) continue;
        have_sizes = have_sizes && results[i]->result_size >= 0;
      }
      if (have_sizes) {
        for (size_t i = 0; i < results.size(); ++i) {
          if (scopes[i].first < scopes[i].second) {
            out.result_size = results[i]->result_size;
            break;
          }
        }
      }
    }
    if (request.include_instances) {
      size_t max_end = 0;
      for (size_t i = 0; i < results.size(); ++i) {
        if (scopes[i].first >= scopes[i].second) continue;
        const QueryResponseWire& part = *results[i];
        const size_t begin = static_cast<size_t>(part.instance_offset);
        const size_t end = begin + part.instance_probs.size();
        if (end > out.instance_probs.size()) {
          out.instance_probs.resize(end, 0.0);
        }
        std::copy(part.instance_probs.begin(), part.instance_probs.end(),
                  out.instance_probs.begin() + static_cast<long>(begin));
        max_end = std::max(max_end, end);
      }
      out.instance_probs.resize(max_end);
    }
  }
  return out;
}

StatusOr<StatsResponse> Coordinator::Stats(const StatsRequest& request) {
  std::vector<StatusOr<StatsResponse>> results(
      shards_.size(), Status::Internal("not run"));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    tasks.push_back([this, &request, &results, i] {
      StatsRequest shard_request = request;
      // Only holders know the named dataset; others answer engine-level
      // stats (a NotFound for the name would fail the whole aggregate).
      if (!request.dataset.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = registry_.find(request.dataset);
        if (it == registry_.end() ||
            std::find(it->second.holders.begin(), it->second.holders.end(),
                      static_cast<int>(i)) == it->second.holders.end()) {
          shard_request.dataset.clear();
        }
      }
      results[i] = shards_[i]->Stats(shard_request);
    });
  }
  RunParallel(&tasks);

  StatsResponse out;
  int64_t latency_weight = 0;
  for (const auto& result : results) {
    if (!result.ok()) return result.status();
    const StatsResponse& part = *result;
    out.cache_hits += part.cache_hits;
    out.cache_misses += part.cache_misses;
    out.cache_entries += part.cache_entries;
    out.pooled_contexts += part.pooled_contexts;
    out.latency_count += part.latency_count;
    out.latency_window += part.latency_window;
    if (part.latency_count > 0) {
      out.latency_min_ms = latency_weight == 0
                               ? part.latency_min_ms
                               : std::min(out.latency_min_ms,
                                          part.latency_min_ms);
      out.latency_mean_ms += part.latency_mean_ms * part.latency_count;
      // Percentiles cannot be merged exactly; report the worst shard —
      // conservative for capacity planning.
      out.latency_p50_ms = std::max(out.latency_p50_ms, part.latency_p50_ms);
      out.latency_p95_ms = std::max(out.latency_p95_ms, part.latency_p95_ms);
      out.latency_p99_ms = std::max(out.latency_p99_ms, part.latency_p99_ms);
      out.latency_p999_ms =
          std::max(out.latency_p999_ms, part.latency_p999_ms);
      latency_weight += part.latency_count;
    }
    if (out.kernel_arch.empty()) out.kernel_arch = part.kernel_arch;
    for (const DatasetInfo& info : part.datasets) {
      const bool seen =
          std::any_of(out.datasets.begin(), out.datasets.end(),
                      [&info](const DatasetInfo& d) {
                        return d.name == info.name;
                      });
      if (!seen) out.datasets.push_back(info);
    }
    if (part.has_index_stats) {
      out.has_index_stats = true;
      out.kdtree_builds += part.kdtree_builds;
      out.rtree_builds += part.rtree_builds;
      out.score_maps += part.score_maps;
      out.score_reuses += part.score_reuses;
      out.parent_index_hits += part.parent_index_hits;
    }
  }
  if (latency_weight > 0) out.latency_mean_ms /= latency_weight;
  std::sort(out.datasets.begin(), out.datasets.end(),
            [](const DatasetInfo& a, const DatasetInfo& b) {
              return a.name < b.name;
            });
  return out;
}

Status Coordinator::Drop(const DropRequest& request) {
  auto placement = PlacementFor(request.name);
  if (!placement.ok()) return placement.status();
  std::vector<Status> results(placement->holders.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(placement->holders.size());
  for (size_t i = 0; i < placement->holders.size(); ++i) {
    const int shard = placement->holders[i];
    tasks.push_back([this, &request, &results, shard, i] {
      results[i] = shards_[static_cast<size_t>(shard)]->Drop(request);
    });
  }
  RunParallel(&tasks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.erase(request.name);
    // A base drop cascades to its views on every shard; mirror that in the
    // placement registry by dropping every entry the shards no longer have.
    // (Conservative: views of the dropped base share its holder set, and
    // their names are not tracked here — they will NotFound on next use and
    // can simply be re-registered. Simplicity over bookkeeping.)
  }
  for (const Status& result : results) {
    if (!result.ok()) return result;
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace arsp
