// Copyright 2026 The ARSP Authors.

#include "src/cluster/admission.h"

#include <algorithm>

namespace arsp {
namespace cluster {

AdmissionController::AdmissionController(AdmissionOptions options, NowFn now)
    : options_(options),
      now_(now != nullptr ? std::move(now) : [] { return Clock::now(); }) {
  options_.client_burst = std::max(1.0, options_.client_burst);
}

bool AdmissionController::Admit(uint64_t client_id, uint32_t* retry_after_ms,
                                std::string* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pending budget first: it protects the whole service, not one client,
  // and a denial here must not burn the client's rate tokens.
  if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
    ++denied_;
    *retry_after_ms = options_.retry_after_ms;
    *reason = "pending-work budget exhausted (" +
              std::to_string(options_.max_pending) + " queries in flight)";
    return false;
  }
  if (options_.client_qps > 0.0) {
    const Clock::time_point now = now_();
    auto [it, inserted] = buckets_.try_emplace(client_id);
    Bucket& bucket = it->second;
    if (inserted) {
      // New clients start with a full burst.
      bucket.tokens = options_.client_burst;
      bucket.last_refill = now;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.last_refill).count();
      bucket.tokens = std::min(options_.client_burst,
                               bucket.tokens + elapsed * options_.client_qps);
      bucket.last_refill = now;
    }
    if (bucket.tokens < 1.0) {
      ++denied_;
      // Time until one token accrues, rounded up to a whole millisecond so
      // an immediate retry cannot see an still-empty bucket.
      const double wait_s = (1.0 - bucket.tokens) / options_.client_qps;
      *retry_after_ms = static_cast<uint32_t>(wait_s * 1000.0) + 1;
      *reason = "client query rate above " +
                std::to_string(options_.client_qps) + " qps";
      return false;
    }
    bucket.tokens -= 1.0;
  }
  ++pending_;
  ++admitted_;
  return true;
}

void AdmissionController::Release(uint64_t /*client_id*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_ > 0) --pending_;
}

int AdmissionController::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

}  // namespace cluster
}  // namespace arsp
