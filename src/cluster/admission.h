// Copyright 2026 The ARSP Authors.
//
// AdmissionController — the cluster's overload policy, implementing the
// server's QueryGate hook: a per-client token bucket (rate fairness) plus a
// global bounded pending-work budget (memory/queue safety). A denied query
// is answered with a typed RETRY_LATER carrying a delay hint instead of
// queueing unboundedly; clients (the load generator, the cluster CLI) back
// off and retry.
//
// The clock is injectable so tests drive refill deterministically.

#ifndef ARSP_CLUSTER_ADMISSION_H_
#define ARSP_CLUSTER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/net/backend.h"

namespace arsp {
namespace cluster {

struct AdmissionOptions {
  /// Sustained per-client query rate; <= 0 disables rate limiting.
  double client_qps = 0.0;
  /// Burst size (token bucket capacity); clamped to >= 1 when rate
  /// limiting is on.
  double client_burst = 8.0;
  /// Max queries in flight across all clients; <= 0 disables the budget.
  int max_pending = 0;
  /// Retry hint attached to RETRY_LATER replies.
  uint32_t retry_after_ms = 50;
};

class AdmissionController : public net::QueryGate {
 public:
  using Clock = std::chrono::steady_clock;
  using NowFn = std::function<Clock::time_point()>;

  explicit AdmissionController(AdmissionOptions options,
                               NowFn now = nullptr);

  bool Admit(uint64_t client_id, uint32_t* retry_after_ms,
             std::string* reason) override;
  void Release(uint64_t client_id) override;

  int pending() const;
  int64_t admitted() const;
  int64_t denied() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last_refill;
  };

  AdmissionOptions options_;
  NowFn now_;
  mutable std::mutex mu_;
  std::map<uint64_t, Bucket> buckets_;
  int pending_ = 0;
  int64_t admitted_ = 0;
  int64_t denied_ = 0;
};

}  // namespace cluster
}  // namespace arsp

#endif  // ARSP_CLUSTER_ADMISSION_H_
