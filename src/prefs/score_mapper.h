// Copyright 2026 The ARSP Authors.
//
// The score-space mapping SV(t) = (S_{ω1}(t), ..., S_{ωd'}(t)) used by the
// tree-traversal algorithms (§III-B): by Theorem 2, t ≺F s in the original
// space iff SV(t) ⪯ SV(s) (coordinate dominance) in the mapped space, which
// turns ARSP into the classic ASP problem in d' dimensions.
//
// Mapped scores are stored structure-of-arrays (ScoreBuffer): one contiguous
// coordinate array (row-major, d' doubles per instance), one probability
// array, one local-object-id array — both double streams on 64-byte-aligned
// storage (src/common/aligned.h). The §III–§IV hot loops touch exactly
// these three streams, so SoA keeps them dense instead of striding over
// vector-of-struct Instance records, and the SIMD kernel layer
// (src/simd/kernels.h) vectorizes over them. Solvers consume a ScoreSpan —
// a non-owning window — which is how a prefix DatasetView shares its
// parent's buffer with zero copies (the first n rows of the full buffer
// *are* the prefix's buffer, local ids included).
//
// The mapper evaluates SV through the dispatched MapPoint kernel over a
// dimension-major (transposed) copy of the vertex matrix, so the d' dot
// products of one point vectorize across outputs while each output keeps
// the sequential summation order of Point::Dot — AoS (Map/MapAll), SoA
// (MapView), and every dispatch arch produce bit-identical scores.

#ifndef ARSP_PREFS_SCORE_MAPPER_H_
#define ARSP_PREFS_SCORE_MAPPER_H_

#include <cstdint>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/column.h"
#include "src/geometry/point.h"
#include "src/prefs/preference_region.h"
#include "src/simd/kernels.h"
#include "src/uncertain/dataset_view.h"

namespace arsp {

/// Structure-of-arrays score storage for one DatasetView, in local instance
/// order (row index == local instance id). Each stream is a Column — owned
/// 64-byte-aligned storage when mapped in memory, borrowed spans when served
/// from a snapshot's pre-mapped scores section (zero copy either way for
/// consumers, which only ever see a ScoreSpan).
struct ScoreBuffer {
  int dim = 0;                  ///< mapped dimensionality d'
  Column<double> coords;        ///< size() * dim, row-major
  Column<double> probs;         ///< instance probabilities
  Column<int32_t> objects;      ///< local object ids

  int size() const { return static_cast<int>(probs.size()); }
  const double* row(int i) const {
    return coords.data() + static_cast<size_t>(i) * static_cast<size_t>(dim);
  }
};

/// Non-owning window over score storage — what solvers iterate. Plain
/// pointers so a span can alias either its context's own buffer or a parent
/// context's (zero-copy prefix reuse).
struct ScoreSpan {
  const double* coords = nullptr;
  const double* probs = nullptr;
  const int* objects = nullptr;
  int n = 0;
  int dim = 0;

  const double* row(int i) const {
    return coords + static_cast<size_t>(i) * static_cast<size_t>(dim);
  }
  double prob(int i) const { return probs[static_cast<size_t>(i)]; }
  int object(int i) const { return objects[static_cast<size_t>(i)]; }

  static ScoreSpan Of(const ScoreBuffer& buffer) {
    return ScoreSpan{buffer.coords.data(), buffer.probs.data(),
                     buffer.objects.data(), buffer.size(), buffer.dim};
  }

  /// The window truncated to its first `count` rows. Exact for prefix views
  /// over the span's view: local ids below `count` are unaffected.
  ScoreSpan Prefix(int count) const {
    ScoreSpan out = *this;
    out.n = count;
    return out;
  }

  /// Compacts rows of this span (scores of `source_view`, addressed by its
  /// local ids) down to `view`'s instances, remapping object ids to
  /// view-local ones. `view` must be contained in `source_view`. Used by
  /// derived subset contexts to reuse an already-mapped parent buffer
  /// (memcpy per row) instead of redoing dot products.
  ScoreBuffer Gather(const DatasetView& source_view,
                     const DatasetView& view) const;
};

/// Maps points from the d-dimensional data space to the d'-dimensional
/// score space spanned by the preference region's vertices.
class ScoreMapper {
 public:
  /// Keeps a reference to the region's vertex set and builds the
  /// dimension-major vertex matrix the MapPoint kernel consumes; the region
  /// must outlive the mapper.
  explicit ScoreMapper(const PreferenceRegion& region)
      : vertices_(&region.vertices()) {
    data_dim_ = vertices_->empty() ? 0 : vertices_->front().dim();
    const size_t dprime = vertices_->size();
    vt_.resize(static_cast<size_t>(data_dim_) * dprime);
    for (int j = 0; j < data_dim_; ++j) {
      for (size_t k = 0; k < dprime; ++k) {
        vt_[static_cast<size_t>(j) * dprime + k] = (*vertices_)[k][j];
      }
    }
  }

  /// Mapped dimensionality d' = |V|.
  int mapped_dim() const { return static_cast<int>(vertices_->size()); }

  /// SV(t) written into `out` (d' doubles) — the SoA row form, evaluated by
  /// the dispatched MapPoint kernel. Map() and MapView() are defined in
  /// terms of this, so AoS and SoA scores are bit-identical.
  void MapInto(const Point& t, double* out) const {
    ARSP_DCHECK(t.dim() == data_dim_ || mapped_dim() == 0);
    simd::Ops().MapPoint(t.coords().data(), data_dim_, vt_.data(),
                         mapped_dim(), out);
  }

  /// Raw-row variant of MapInto for columnar storage: `coords` is data_dim
  /// contiguous doubles. Same kernel, same summation order — bit-identical
  /// to the Point form.
  void MapRowInto(const double* coords, double* out) const {
    simd::Ops().MapPoint(coords, data_dim_, vt_.data(), mapped_dim(), out);
  }

  /// FNV-1a fingerprint of the mapping itself (data dimension, mapped
  /// dimension, and the dimension-major vertex matrix bytes). Two mappers
  /// with equal hashes produce bit-identical scores for equal inputs, which
  /// is how snapshot-attached score sections are matched to a query's
  /// preference region without string plumbing.
  uint64_t VertexHash() const;

  /// SV(t): the i-th output coordinate is the score of t under vertex ω_i.
  /// Writes straight into the returned Point's storage — no temporary
  /// buffer per call.
  Point Map(const Point& t) const {
    Point out(mapped_dim());
    if (mapped_dim() > 0) MapInto(t, &out[0]);
    return out;
  }

  /// Maps a batch of points through one reused flat row buffer (a single
  /// scratch allocation for the whole batch, instead of per-point
  /// temporaries).
  std::vector<Point> MapAll(const std::vector<Point>& points) const;

  /// Maps every instance of `view` into a SoA buffer (local instance order,
  /// local object ids).
  ScoreBuffer MapView(const DatasetView& view) const;

 private:
  const std::vector<Point>* vertices_;
  int data_dim_ = 0;
  AlignedVector<double> vt_;  ///< dim-major vertex matrix: vt_[j·d' + k] = ω_k[j]
};

}  // namespace arsp

#endif  // ARSP_PREFS_SCORE_MAPPER_H_
