// Copyright 2026 The ARSP Authors.
//
// The score-space mapping SV(t) = (S_{ω1}(t), ..., S_{ωd'}(t)) used by the
// tree-traversal algorithms (§III-B): by Theorem 2, t ≺F s in the original
// space iff SV(t) ⪯ SV(s) (coordinate dominance) in the mapped space, which
// turns ARSP into the classic ASP problem in d' dimensions.

#ifndef ARSP_PREFS_SCORE_MAPPER_H_
#define ARSP_PREFS_SCORE_MAPPER_H_

#include <vector>

#include "src/geometry/point.h"
#include "src/prefs/preference_region.h"

namespace arsp {

/// Maps points from the d-dimensional data space to the d'-dimensional
/// score space spanned by the preference region's vertices.
class ScoreMapper {
 public:
  /// Keeps a reference to the region's vertex set; the region must outlive
  /// the mapper.
  explicit ScoreMapper(const PreferenceRegion& region)
      : vertices_(&region.vertices()) {}

  /// Mapped dimensionality d' = |V|.
  int mapped_dim() const { return static_cast<int>(vertices_->size()); }

  /// SV(t): the i-th output coordinate is the score of t under vertex ω_i.
  Point Map(const Point& t) const {
    const std::vector<Point>& v = *vertices_;
    Point out(mapped_dim());
    for (int i = 0; i < mapped_dim(); ++i) {
      out[i] = v[static_cast<size_t>(i)].Dot(t);
    }
    return out;
  }

  /// Maps a batch of points.
  std::vector<Point> MapAll(const std::vector<Point>& points) const {
    std::vector<Point> out;
    out.reserve(points.size());
    for (const Point& p : points) out.push_back(Map(p));
    return out;
  }

 private:
  const std::vector<Point>* vertices_;
};

}  // namespace arsp

#endif  // ARSP_PREFS_SCORE_MAPPER_H_
