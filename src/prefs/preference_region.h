// Copyright 2026 The ARSP Authors.
//
// The preference region Ω = {ω ∈ S^{d-1} | A ω ≤ b} — a closed convex
// polytope on the unit simplex — represented by its vertex set V. Theorem 2
// reduces the F-dominance test to score comparisons under V, and the
// KDTT/QDTT algorithms map instances into the |V|-dimensional score space.

#ifndef ARSP_PREFS_PREFERENCE_REGION_H_
#define ARSP_PREFS_PREFERENCE_REGION_H_

#include <vector>

#include "src/common/status.h"
#include "src/geometry/point.h"
#include "src/prefs/linear_constraints.h"
#include "src/prefs/weight_ratio.h"

namespace arsp {

/// Vertex representation of the preference region Ω.
class PreferenceRegion {
 public:
  /// Enumerates the vertices of Ω = {ω ∈ S^{d-1} | A ω ≤ b}.
  ///
  /// The paper computes V through polar duality plus quickhull; we enumerate
  /// candidate vertices directly as solutions of d x d active-constraint
  /// systems (the simplex equality Σω = 1 plus d-1 inequalities turned
  /// tight), filtering by feasibility. Output is identical (the vertex set),
  /// and c, d are small in all workloads, so the C(c+d, d-1) enumeration is
  /// exact and cheap. Returns InvalidArgument when Ω is empty.
  static StatusOr<PreferenceRegion> FromLinearConstraints(
      const LinearConstraints& constraints);

  /// Region for weight ratio constraints: vertices in the paper's k-vertex
  /// order (no enumeration needed; the region is a projective box).
  static PreferenceRegion FromWeightRatios(const WeightRatioConstraints& wr);

  /// The whole simplex S^{d-1} (F = all linear scoring functions). Its
  /// vertices are the standard basis, so F-dominance degenerates to
  /// coordinate dominance and ARSP degenerates to the classic all-skyline-
  /// probabilities (ASP) problem.
  static PreferenceRegion FullSimplex(int dim);

  /// Region with an explicitly given vertex set (tests, custom F).
  static StatusOr<PreferenceRegion> FromVertices(std::vector<Point> vertices);

  /// Weight-space dimensionality d.
  int dim() const { return dim_; }

  /// Number of vertices d' = |V|.
  int num_vertices() const { return static_cast<int>(vertices_.size()); }

  /// The vertex set V; every vertex lies on the unit simplex.
  const std::vector<Point>& vertices() const { return vertices_; }

  /// True iff omega lies in Ω (simplex membership + A ω ≤ b); only
  /// available for regions built from linear constraints.
  bool Contains(const Point& omega, double eps = 1e-9) const;

  /// The arithmetic mean of the vertices — an interior representative
  /// weight, used for sorting instances by score.
  Point Centroid() const;

 private:
  PreferenceRegion(int dim, std::vector<Point> vertices,
                   LinearConstraints constraints)
      : dim_(dim), vertices_(std::move(vertices)),
        constraints_(std::move(constraints)) {}

  int dim_;
  std::vector<Point> vertices_;
  LinearConstraints constraints_;
};

}  // namespace arsp

#endif  // ARSP_PREFS_PREFERENCE_REGION_H_
