// Copyright 2026 The ARSP Authors.
//
// Weight ratio constraints (§IV): user-specified ranges
// R = Π_{i<d} [l_i, h_i] requiring ω[d] > 0 and l_i ≤ ω[i]/ω[d] ≤ h_i.
// The last dimension acts as the reference dimension, exactly as in the
// eclipse query of Liu et al. [2].

#ifndef ARSP_PREFS_WEIGHT_RATIO_H_
#define ARSP_PREFS_WEIGHT_RATIO_H_

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/point.h"

namespace arsp {

class LinearConstraints;

/// Weight ratio constraints over d-dimensional weights: d-1 positive ranges
/// [l_i, h_i] on the ratios ω[i]/ω[d].
class WeightRatioConstraints {
 public:
  /// Validated construction; requires 0 < l_i <= h_i for each of d-1 ranges.
  static StatusOr<WeightRatioConstraints> Create(
      std::vector<std::pair<double, double>> ranges);

  /// Data-space dimensionality d (= number of ranges + 1).
  int dim() const { return static_cast<int>(ranges_.size()) + 1; }

  const std::vector<std::pair<double, double>>& ranges() const {
    return ranges_;
  }
  double lo(int i) const { return ranges_[static_cast<size_t>(i)].first; }
  double hi(int i) const { return ranges_[static_cast<size_t>(i)].second; }

  /// The k-vertex of the ratio hyper-rectangle R in the paper's
  /// lexicographic numbering: bit i of k selects h_i (1) or l_i (0).
  /// Returned as a (d-1)-dimensional ratio vector r.
  Point RatioVertex(int k) const;

  /// The 2^{d-1} vertices of the induced preference region on the simplex,
  /// ordered by k: ω = (r, 1) / (Σ r + 1) for each ratio vertex r.
  std::vector<Point> SimplexVertices() const;

  /// Equivalent general linear constraints l_i ω_d - ω_i ≤ 0 and
  /// ω_i - h_i ω_d ≤ 0, for running the general-F algorithms on weight
  /// ratio inputs.
  LinearConstraints ToLinearConstraints() const;

 private:
  explicit WeightRatioConstraints(
      std::vector<std::pair<double, double>> ranges)
      : ranges_(std::move(ranges)) {}

  std::vector<std::pair<double, double>> ranges_;
};

}  // namespace arsp

#endif  // ARSP_PREFS_WEIGHT_RATIO_H_
