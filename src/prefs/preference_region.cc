// Copyright 2026 The ARSP Authors.

#include "src/prefs/preference_region.h"

#include <algorithm>
#include <cmath>

#include "src/geometry/linalg.h"

namespace arsp {

namespace {

constexpr double kFeasEps = 1e-9;

// Deduplicates near-identical vertices and orders them deterministically.
// Solved vertices can carry feasibility-tolerance negatives (-1e-9-ish);
// downstream code relies on exactly non-negative weights (score
// monotonicity), so clamp and renormalize onto the simplex first.
std::vector<Point> DedupeAndSort(std::vector<Point> vertices) {
  for (Point& v : vertices) {
    double sum = 0.0;
    for (int i = 0; i < v.dim(); ++i) {
      if (v[i] < 0.0) v[i] = 0.0;
      sum += v[i];
    }
    ARSP_CHECK(sum > 0.0);
    for (int i = 0; i < v.dim(); ++i) v[i] /= sum;
  }
  std::sort(vertices.begin(), vertices.end(), LexLess);
  std::vector<Point> out;
  for (Point& v : vertices) {
    bool dup = false;
    for (const Point& u : out) {
      double diff = 0.0;
      for (int i = 0; i < v.dim(); ++i) diff = std::max(diff, std::fabs(v[i] - u[i]));
      if (diff < 1e-8) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

StatusOr<PreferenceRegion> PreferenceRegion::FromLinearConstraints(
    const LinearConstraints& constraints) {
  const int d = constraints.dim();
  if (d < 1) return Status::InvalidArgument("weight dimension must be >= 1");

  // The full inequality system: ω_i >= 0 (d rows) followed by the user rows.
  // A vertex of Ω is the unique solution of the simplex equality plus d-1
  // inequalities made tight that additionally satisfies all inequalities.
  std::vector<LinearConstraint> ineqs;
  for (int i = 0; i < d; ++i) {
    std::vector<double> coef(static_cast<size_t>(d), 0.0);
    coef[static_cast<size_t>(i)] = -1.0;  // -ω_i <= 0
    ineqs.push_back(LinearConstraint{std::move(coef), 0.0});
  }
  for (const LinearConstraint& row : constraints.rows()) ineqs.push_back(row);

  const int total = static_cast<int>(ineqs.size());
  std::vector<Point> vertices;

  // Enumerate (d-1)-subsets of tight inequalities via a choose-vector.
  std::vector<int> pick(static_cast<size_t>(d - 1));
  // Special case d == 1: the only weight is ω = (1).
  if (d == 1) {
    Point omega{1.0};
    if (constraints.Satisfies(omega, kFeasEps)) {
      return PreferenceRegion(1, {omega}, constraints);
    }
    return Status::InvalidArgument("preference region is empty");
  }

  // Iterative subset enumeration.
  for (int i = 0; i < d - 1; ++i) pick[static_cast<size_t>(i)] = i;
  while (true) {
    // Build the d x d system: row 0 is Σ ω_i = 1, rows 1..d-1 are the tight
    // versions of the picked inequalities.
    Matrix a(d, d);
    std::vector<double> b(static_cast<size_t>(d), 0.0);
    for (int c = 0; c < d; ++c) a(0, c) = 1.0;
    b[0] = 1.0;
    for (int r = 0; r < d - 1; ++r) {
      const LinearConstraint& row =
          ineqs[static_cast<size_t>(pick[static_cast<size_t>(r)])];
      for (int c = 0; c < d; ++c) a(r + 1, c) = row.coef[static_cast<size_t>(c)];
      b[static_cast<size_t>(r + 1)] = row.rhs;
    }
    if (auto solution = SolveLinearSystem(a, b)) {
      Point omega(std::move(*solution));
      bool feasible = true;
      for (const LinearConstraint& row : ineqs) {
        if (row.Slack(omega) > kFeasEps) {
          feasible = false;
          break;
        }
      }
      if (feasible) vertices.push_back(std::move(omega));
    }

    // Advance the choose-vector.
    int idx = d - 2;
    while (idx >= 0 &&
           pick[static_cast<size_t>(idx)] == total - (d - 1) + idx) {
      --idx;
    }
    if (idx < 0) break;
    ++pick[static_cast<size_t>(idx)];
    for (int j = idx + 1; j < d - 1; ++j) {
      pick[static_cast<size_t>(j)] = pick[static_cast<size_t>(j - 1)] + 1;
    }
  }

  vertices = DedupeAndSort(std::move(vertices));
  if (vertices.empty()) {
    return Status::InvalidArgument("preference region is empty");
  }
  return PreferenceRegion(d, std::move(vertices), constraints);
}

PreferenceRegion PreferenceRegion::FromWeightRatios(
    const WeightRatioConstraints& wr) {
  // The projective box has exactly 2^{d-1} vertices; keep the paper's
  // k-vertex order rather than lexicographic coordinate order so that the
  // DUAL algorithms can index vertices by region code k.
  return PreferenceRegion(wr.dim(), wr.SimplexVertices(),
                          wr.ToLinearConstraints());
}

PreferenceRegion PreferenceRegion::FullSimplex(int dim) {
  ARSP_CHECK(dim >= 1);
  std::vector<Point> vertices;
  vertices.reserve(static_cast<size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    Point basis(dim);
    basis[i] = 1.0;
    vertices.push_back(std::move(basis));
  }
  return PreferenceRegion(dim, std::move(vertices), LinearConstraints(dim));
}

StatusOr<PreferenceRegion> PreferenceRegion::FromVertices(
    std::vector<Point> vertices) {
  if (vertices.empty()) {
    return Status::InvalidArgument("vertex set must be non-empty");
  }
  const int d = vertices.front().dim();
  for (const Point& v : vertices) {
    if (v.dim() != d) {
      return Status::InvalidArgument("vertices have mixed dimensions");
    }
    double sum = 0.0;
    for (int i = 0; i < d; ++i) {
      if (v[i] < -kFeasEps) {
        return Status::InvalidArgument("vertex has a negative weight");
      }
      sum += v[i];
    }
    if (std::fabs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("vertex does not lie on the simplex");
    }
  }
  return PreferenceRegion(d, std::move(vertices), LinearConstraints(d));
}

bool PreferenceRegion::Contains(const Point& omega, double eps) const {
  if (omega.dim() != dim_) return false;
  double sum = 0.0;
  for (int i = 0; i < dim_; ++i) {
    if (omega[i] < -eps) return false;
    sum += omega[i];
  }
  if (std::fabs(sum - 1.0) > eps) return false;
  return constraints_.Satisfies(omega, eps);
}

Point PreferenceRegion::Centroid() const {
  Point c(dim_);
  for (const Point& v : vertices_) {
    for (int i = 0; i < dim_; ++i) c[i] += v[i];
  }
  for (int i = 0; i < dim_; ++i) c[i] /= static_cast<double>(num_vertices());
  return c;
}

}  // namespace arsp
