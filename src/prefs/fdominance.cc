// Copyright 2026 The ARSP Authors.

#include "src/prefs/fdominance.h"

namespace arsp {

bool FDominatesVertex(const Point& t, const Point& s,
                      const std::vector<Point>& vertices) {
  for (const Point& omega : vertices) {
    if (Score(omega, t) > Score(omega, s)) return false;
  }
  return true;
}

bool FDominatesVertex(const double* t, const double* s,
                      const std::vector<Point>& vertices) {
  for (const Point& omega : vertices) {
    if (Score(omega, t) > Score(omega, s)) return false;
  }
  return true;
}

bool FDominatesWeightRatio(const Point& t, const Point& s,
                           const WeightRatioConstraints& wr) {
  const int d = wr.dim();
  ARSP_DCHECK(t.dim() == d && s.dim() == d);
  // Minimize Σ_{i<d} (s[i]-t[i]) r_i over r ∈ Π [l_i, h_i]: each coordinate
  // independently takes l_i when its coefficient is positive and h_i when it
  // is non-positive (Lemma 1 reduces the simplex LP to this box LP).
  double rhs = 0.0;
  for (int i = 0; i < d - 1; ++i) {
    const double diff = s[i] - t[i];
    rhs += (diff > 0.0 ? wr.lo(i) : wr.hi(i)) * diff;
  }
  return t[d - 1] - s[d - 1] <= rhs;
}

}  // namespace arsp
