// Copyright 2026 The ARSP Authors.
//
// The two constraint-generation methods from the paper's experimental setup
// (§V-A): WR (weak rankings on weight attributes) and IM (interactively
// learned halfspace constraints around a hidden target weight ω*).

#ifndef ARSP_PREFS_CONSTRAINT_GENERATORS_H_
#define ARSP_PREFS_CONSTRAINT_GENERATORS_H_

#include "src/common/rng.h"
#include "src/prefs/linear_constraints.h"

namespace arsp {

/// WR: weak rankings ω[i] ≥ ω[i+1] for 1 ≤ i ≤ c (requires c ≤ d-1).
/// The induced preference region always has exactly d vertices:
/// (1,0,...), (1/2,1/2,0,...), ..., (1/(c+1),...,1/(c+1),0,...), and the
/// unconstrained sub-simplex corners.
LinearConstraints MakeWeakRankingConstraints(int dim, int num_constraints);

/// IM: interactive learning (Qian et al. [25]). Draws a hidden weight ω*
/// uniformly from the simplex, then emits c halfspaces
///   Σ_j (t_i[j] - s_i[j]) ω[j] ≤ 0   (sign chosen so ω* stays feasible)
/// with t_i, s_i uniform in [0,1]^d. The region always contains ω*, and its
/// vertex count typically grows with c (the behaviour Fig. 5(t) relies on).
LinearConstraints MakeInteractiveConstraints(int dim, int num_constraints,
                                             Rng& rng);

/// Draws a weight uniformly at random from the unit simplex S^{d-1}
/// (exponential-spacings construction).
Point RandomSimplexWeight(int dim, Rng& rng);

}  // namespace arsp

#endif  // ARSP_PREFS_CONSTRAINT_GENERATORS_H_
