// Copyright 2026 The ARSP Authors.
//
// F-dominance tests. Theorem 2 reduces F-dominance for a vertex-described
// preference region to score comparisons under the vertex set V; Theorem 5
// gives the O(d) closed-form test for weight ratio constraints.
//
// The paper's definition: t ≺F s for s ≠ t iff f(t) ≤ f(s) for every f ∈ F.
// Note this is *weak* comparison in every function — two distinct instances
// with identical scores F-dominate each other, and all algorithms here treat
// that case consistently (both probabilities see the other's mass).

#ifndef ARSP_PREFS_FDOMINANCE_H_
#define ARSP_PREFS_FDOMINANCE_H_

#include <vector>

#include "src/geometry/point.h"
#include "src/prefs/preference_region.h"
#include "src/prefs/weight_ratio.h"

namespace arsp {

/// Score of t under weight ω: S_ω(t) = Σ ω[i] t[i].
inline double Score(const Point& omega, const Point& t) {
  return omega.Dot(t);
}

/// Raw-row variant of Score for columnar storage: `t` is omega.dim()
/// contiguous doubles. Same summation order as Point::Dot — bit-identical.
inline double Score(const Point& omega, const double* t) {
  double sum = 0.0;
  for (int i = 0; i < omega.dim(); ++i) sum += omega[i] * t[i];
  return sum;
}

/// Theorem 2: t ≺F s iff S_ω(t) ≤ S_ω(s) for every vertex ω ∈ V.
/// Comparisons are exact (no epsilon) so every algorithm in the library
/// agrees bit-for-bit on the dominance relation.
bool FDominatesVertex(const Point& t, const Point& s,
                      const std::vector<Point>& vertices);

/// Raw-row variant of the Theorem-2 test for columnar storage: `t` and `s`
/// are contiguous coordinate rows of the vertices' dimension. Bit-identical
/// to the Point form.
bool FDominatesVertex(const double* t, const double* s,
                      const std::vector<Point>& vertices);

/// Theorem 2 via a PreferenceRegion.
inline bool FDominates(const Point& t, const Point& s,
                       const PreferenceRegion& region) {
  return FDominatesVertex(t, s, region.vertices());
}

/// Theorem 5: O(d) F-dominance test under weight ratio constraints.
/// t ≺F s iff
///   t[d] - s[d] ≤ Σ_{i<d} (1[s[i] > t[i]] l_i + 1[s[i] ≤ t[i]] h_i)(s[i]-t[i])
bool FDominatesWeightRatio(const Point& t, const Point& s,
                           const WeightRatioConstraints& wr);

}  // namespace arsp

#endif  // ARSP_PREFS_FDOMINANCE_H_
