// Copyright 2026 The ARSP Authors.

#include "src/prefs/weight_ratio.h"

#include "src/prefs/linear_constraints.h"

namespace arsp {

StatusOr<WeightRatioConstraints> WeightRatioConstraints::Create(
    std::vector<std::pair<double, double>> ranges) {
  if (ranges.empty()) {
    return Status::InvalidArgument(
        "weight ratio constraints need at least one range (d >= 2)");
  }
  for (const auto& [lo, hi] : ranges) {
    if (!(lo > 0.0)) {
      return Status::InvalidArgument("ratio lower bound must be positive");
    }
    if (!(lo <= hi)) {
      return Status::InvalidArgument("ratio range must satisfy l <= h");
    }
  }
  return WeightRatioConstraints(std::move(ranges));
}

Point WeightRatioConstraints::RatioVertex(int k) const {
  const int r = dim() - 1;
  ARSP_CHECK(k >= 0 && k < (1 << r));
  Point v(r);
  for (int i = 0; i < r; ++i) {
    // Bit i of k in the paper's lexicographic order: the *first* coordinate
    // is the most significant choice, so vertex 0 is (l_1, ..., l_{d-1}) and
    // vertex 2^{d-1}-1 is (h_1, ..., h_{d-1}).
    const bool take_hi = (k >> (r - 1 - i)) & 1;
    v[i] = take_hi ? hi(i) : lo(i);
  }
  return v;
}

std::vector<Point> WeightRatioConstraints::SimplexVertices() const {
  const int r = dim() - 1;
  std::vector<Point> vertices;
  vertices.reserve(static_cast<size_t>(1) << r);
  for (int k = 0; k < (1 << r); ++k) {
    const Point ratio = RatioVertex(k);
    double sum = 1.0;
    for (int i = 0; i < r; ++i) sum += ratio[i];
    Point omega(dim());
    for (int i = 0; i < r; ++i) omega[i] = ratio[i] / sum;
    omega[dim() - 1] = 1.0 / sum;
    vertices.push_back(std::move(omega));
  }
  return vertices;
}

LinearConstraints WeightRatioConstraints::ToLinearConstraints() const {
  const int d = dim();
  LinearConstraints out(d);
  for (int i = 0; i < d - 1; ++i) {
    // l_i * ω_d - ω_i <= 0
    std::vector<double> low(static_cast<size_t>(d), 0.0);
    low[static_cast<size_t>(i)] = -1.0;
    low[static_cast<size_t>(d - 1)] = lo(i);
    out.Add(std::move(low), 0.0);
    // ω_i - h_i * ω_d <= 0
    std::vector<double> high(static_cast<size_t>(d), 0.0);
    high[static_cast<size_t>(i)] = 1.0;
    high[static_cast<size_t>(d - 1)] = -hi(i);
    out.Add(std::move(high), 0.0);
  }
  return out;
}

}  // namespace arsp
