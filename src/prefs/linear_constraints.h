// Copyright 2026 The ARSP Authors.
//
// Linear constraints A ω ≤ b imposed on weight vectors of linear scoring
// functions, on top of the unit-simplex constraints ω_i ≥ 0, Σ ω_i = 1.
// This is the paper's general way of specifying the function set F (§III).

#ifndef ARSP_PREFS_LINEAR_CONSTRAINTS_H_
#define ARSP_PREFS_LINEAR_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/point.h"

namespace arsp {

/// One linear inequality Σ_i coef[i] * ω[i] ≤ rhs over weight space.
struct LinearConstraint {
  std::vector<double> coef;
  double rhs = 0.0;

  /// Evaluates Σ coef[i] ω[i] - rhs (≤ 0 means satisfied).
  double Slack(const Point& omega) const;
};

/// A conjunction of linear inequalities A ω ≤ b over R^d weight space.
///
/// The unit-simplex constraints are implicit and always enforced by
/// PreferenceRegion; this class stores only the user-supplied rows.
class LinearConstraints {
 public:
  /// Empty constraint set over d-dimensional weights (F = all linear
  /// scoring functions with weights in the simplex).
  explicit LinearConstraints(int dim) : dim_(dim) {
    ARSP_CHECK_MSG(dim >= 1, "weight dimension must be >= 1");
  }

  /// Validated construction from explicit rows.
  static StatusOr<LinearConstraints> Create(
      int dim, std::vector<LinearConstraint> rows);

  int dim() const { return dim_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  const std::vector<LinearConstraint>& rows() const { return rows_; }

  /// Appends one inequality; coef must have size dim().
  void Add(std::vector<double> coef, double rhs);

  /// True iff A ω ≤ b holds within tolerance eps.
  bool Satisfies(const Point& omega, double eps = 1e-9) const;

  std::string ToString() const;

 private:
  int dim_;
  std::vector<LinearConstraint> rows_;
};

}  // namespace arsp

#endif  // ARSP_PREFS_LINEAR_CONSTRAINTS_H_
