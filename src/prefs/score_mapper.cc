// Copyright 2026 The ARSP Authors.
//
// ScoreMapper is header-only; this translation unit anchors the target.

#include "src/prefs/score_mapper.h"
