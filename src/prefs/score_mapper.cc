// Copyright 2026 The ARSP Authors.

#include "src/prefs/score_mapper.h"

#include <cstring>

namespace arsp {

ScoreBuffer ScoreSpan::Gather(const DatasetView& source_view,
                              const DatasetView& view) const {
  ScoreBuffer out;
  out.dim = dim;
  const int count = view.num_instances();
  out.coords.resize(static_cast<size_t>(count) * static_cast<size_t>(dim));
  out.probs.resize(static_cast<size_t>(count));
  out.objects.resize(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int source = source_view.LocalInstanceOf(view.base_instance_id(i));
    ARSP_CHECK_MSG(source >= 0 && source < n,
                   "Gather: view instance %d is outside the source span", i);
    std::memcpy(out.coords.mutable_data() +
                    static_cast<size_t>(i) * static_cast<size_t>(dim),
                row(source), sizeof(double) * static_cast<size_t>(dim));
    out.probs.at_mut(static_cast<size_t>(i)) = prob(source);
    out.objects.at_mut(static_cast<size_t>(i)) = view.object_of(i);
  }
  return out;
}

std::vector<Point> ScoreMapper::MapAll(const std::vector<Point>& points) const {
  std::vector<Point> out;
  out.reserve(points.size());
  std::vector<double> row(static_cast<size_t>(mapped_dim()));
  for (const Point& p : points) {
    MapInto(p, row.data());
    out.emplace_back(row);  // one vector copy into the returned Point
  }
  return out;
}

ScoreBuffer ScoreMapper::MapView(const DatasetView& view) const {
  ScoreBuffer out;
  out.dim = mapped_dim();
  const int n = view.num_instances();
  out.coords.resize(static_cast<size_t>(n) * static_cast<size_t>(out.dim));
  out.probs.resize(static_cast<size_t>(n));
  out.objects.resize(static_cast<size_t>(n));
  double* rows = out.coords.mutable_data();
  for (int i = 0; i < n; ++i) {
    MapRowInto(view.coords(i), rows + static_cast<size_t>(i) *
                                          static_cast<size_t>(out.dim));
    out.probs.at_mut(static_cast<size_t>(i)) = view.prob(i);
    out.objects.at_mut(static_cast<size_t>(i)) = view.object_of(i);
  }
  return out;
}

uint64_t ScoreMapper::VertexHash() const {
  // FNV-1a over (data_dim, mapped_dim, vt bytes). The dimension-major
  // matrix is a canonical encoding of the vertex set, so equal regions hash
  // equal regardless of how they were constructed.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const int32_t dims[2] = {static_cast<int32_t>(data_dim_),
                           static_cast<int32_t>(mapped_dim())};
  mix(dims, sizeof(dims));
  mix(vt_.data(), vt_.size() * sizeof(double));
  return h;
}

}  // namespace arsp
