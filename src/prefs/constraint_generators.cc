// Copyright 2026 The ARSP Authors.

#include "src/prefs/constraint_generators.h"

#include <cmath>

namespace arsp {

LinearConstraints MakeWeakRankingConstraints(int dim, int num_constraints) {
  ARSP_CHECK_MSG(num_constraints >= 0 && num_constraints <= dim - 1,
                 "WR requires 0 <= c <= d-1 (got c=%d, d=%d)", num_constraints,
                 dim);
  LinearConstraints out(dim);
  for (int i = 0; i < num_constraints; ++i) {
    // ω[i+1] - ω[i] <= 0.
    std::vector<double> coef(static_cast<size_t>(dim), 0.0);
    coef[static_cast<size_t>(i)] = -1.0;
    coef[static_cast<size_t>(i + 1)] = 1.0;
    out.Add(std::move(coef), 0.0);
  }
  return out;
}

Point RandomSimplexWeight(int dim, Rng& rng) {
  // Exponential spacings: normalize i.i.d. Exp(1) draws.
  Point omega(dim);
  double sum = 0.0;
  for (int i = 0; i < dim; ++i) {
    double u = rng.Uniform01();
    if (u <= 0.0) u = 1e-12;
    omega[i] = -std::log(u);
    sum += omega[i];
  }
  for (int i = 0; i < dim; ++i) omega[i] /= sum;
  return omega;
}

LinearConstraints MakeInteractiveConstraints(int dim, int num_constraints,
                                             Rng& rng) {
  ARSP_CHECK(num_constraints >= 0);
  const Point target = RandomSimplexWeight(dim, rng);
  LinearConstraints out(dim);
  for (int i = 0; i < num_constraints; ++i) {
    std::vector<double> coef(static_cast<size_t>(dim), 0.0);
    double slack_at_target = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double tj = rng.Uniform01();
      const double sj = rng.Uniform01();
      coef[static_cast<size_t>(j)] = tj - sj;
      slack_at_target += (tj - sj) * target[j];
    }
    if (slack_at_target > 0.0) {
      // Flip the halfspace so the hidden weight remains feasible.
      for (double& c : coef) c = -c;
    }
    out.Add(std::move(coef), 0.0);
  }
  return out;
}

}  // namespace arsp
