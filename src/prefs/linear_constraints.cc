// Copyright 2026 The ARSP Authors.

#include "src/prefs/linear_constraints.h"

#include <cstdio>

namespace arsp {

double LinearConstraint::Slack(const Point& omega) const {
  ARSP_DCHECK(omega.dim() == static_cast<int>(coef.size()));
  double s = -rhs;
  for (int i = 0; i < omega.dim(); ++i) {
    s += coef[static_cast<size_t>(i)] * omega[i];
  }
  return s;
}

StatusOr<LinearConstraints> LinearConstraints::Create(
    int dim, std::vector<LinearConstraint> rows) {
  if (dim < 1) {
    return Status::InvalidArgument("weight dimension must be >= 1");
  }
  for (const LinearConstraint& row : rows) {
    if (static_cast<int>(row.coef.size()) != dim) {
      return Status::InvalidArgument(
          "constraint coefficient size does not match weight dimension");
    }
  }
  LinearConstraints out(dim);
  out.rows_ = std::move(rows);
  return out;
}

void LinearConstraints::Add(std::vector<double> coef, double rhs) {
  ARSP_CHECK_MSG(static_cast<int>(coef.size()) == dim_,
                 "constraint coefficient size %zu != weight dimension %d",
                 coef.size(), dim_);
  rows_.push_back(LinearConstraint{std::move(coef), rhs});
}

bool LinearConstraints::Satisfies(const Point& omega, double eps) const {
  for (const LinearConstraint& row : rows_) {
    if (row.Slack(omega) > eps) return false;
  }
  return true;
}

std::string LinearConstraints::ToString() const {
  std::string out;
  char buf[64];
  for (const LinearConstraint& row : rows_) {
    for (size_t i = 0; i < row.coef.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%+gw%zu ", row.coef[i], i + 1);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "<= %g\n", row.rhs);
    out += buf;
  }
  return out;
}

}  // namespace arsp
