// Copyright 2026 The ARSP Authors.
//
// CI perf gate: compares two arsp-bench-v1 exports (bench --json) and fails
// on regressions against the committed baseline (BENCH_solver_hotpath.json).
//
//   bench_diff BASELINE CURRENT [--max-regression PCT]
//
// Two gates run over every benchmark present in the baseline:
//
//   * Timing. ns/op is first normalized by the file's own
//     BM_Calibrate_Xorshift64 entry — a serial scalar workload that tracks
//     raw machine speed — so the comparison is shape-vs-shape, not
//     container-vs-container. A normalized ratio more than PCT percent
//     (default 15) above the baseline fails.
//   * Determinism. Work counters that appear in both files
//     (dominance_tests, nodes_visited, arsp_size, n, m, ...) must match
//     exactly: a drifted counter means the algorithm changed, which a
//     timing gate would misread as noise. Exceptions: counters whose name
//     ends in "_ns" are timings a benchmark measured itself (bench_scale's
//     build_ns / load_ns split) — those get the calibration-normalized
//     regression gate, not exact equality; counters ending in "_info" are
//     scheduling-dependent observations (bench_parallel's steal counts) —
//     reported for the record, never gated.
//
// A baseline entry missing from the current export fails too (bench
// bitrot); entries only in the current export are reported but pass. The
// files must agree on ARSP_BENCH_SCALE; an arch mismatch (avx2 baseline vs
// scalar run) only warns, since calibration absorbs most of it and the
// counter gate is arch-independent by the kernel layer's bit-identity
// contract.
//
// Exit codes: 0 pass, 1 regression/bitrot, 2 usage or parse error.
//
// The parser handles exactly what bench_util's JsonExportReporter writes —
// one object per line, string values without escapes in practice — not
// general JSON. Keep the two in sync.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

constexpr const char* kSchema = "arsp-bench-v1";
constexpr const char* kCalibration = "BM_Calibrate_Xorshift64";

struct Entry {
  double ns_per_op = 0.0;
  std::map<std::string, double> counters;
};

struct BenchFile {
  std::string arch;
  std::string git_rev;
  double scale = 0.0;
  std::map<std::string, Entry> entries;
};

// Returns the string value of `"key":"..."` in `line`, or "" if absent.
std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

// Returns the numeric value of `"key":<number>` in `line`, or NaN.
double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

// Parses the flat `"counters":{"a":1,"b":2}` object.
std::map<std::string, double> ExtractCounters(const std::string& line) {
  std::map<std::string, double> out;
  const std::string needle = "\"counters\":{";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return out;
  size_t pos = at + needle.size();
  while (pos < line.size() && line[pos] != '}') {
    const size_t key_begin = line.find('"', pos);
    if (key_begin == std::string::npos) break;
    const size_t key_end = line.find('"', key_begin + 1);
    if (key_end == std::string::npos) break;
    const std::string key = line.substr(key_begin + 1, key_end - key_begin - 1);
    const size_t colon = line.find(':', key_end);
    if (colon == std::string::npos) break;
    out[key] = std::strtod(line.c_str() + colon + 1, nullptr);
    const size_t comma = line.find_first_of(",}", colon + 1);
    if (comma == std::string::npos) break;
    pos = line[comma] == ',' ? comma + 1 : comma;
  }
  return out;
}

bool Load(const char* path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (ExtractString(line, "schema") != kSchema) {
        std::fprintf(stderr, "bench_diff: %s is not an %s export\n", path,
                     kSchema);
        return false;
      }
      out->arch = ExtractString(line, "arch");
      out->git_rev = ExtractString(line, "git_rev");
      out->scale = ExtractNumber(line, "scale");
      saw_header = true;
      continue;
    }
    const std::string name = ExtractString(line, "name");
    if (name.empty()) {
      std::fprintf(stderr, "bench_diff: %s: entry without a name: %s\n", path,
                   line.c_str());
      return false;
    }
    Entry entry;
    entry.ns_per_op = ExtractNumber(line, "ns_per_op");
    entry.counters = ExtractCounters(line);
    out->entries[name] = entry;
  }
  if (!saw_header) {
    std::fprintf(stderr, "bench_diff: %s has no header line\n", path);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double max_regression_pct = 15.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--max-regression=", 17) == 0) {
      max_regression_pct = std::strtod(argv[i] + 17, nullptr);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE CURRENT [--max-regression PCT]\n");
    return 2;
  }

  BenchFile baseline, current;
  if (!Load(baseline_path, &baseline) || !Load(current_path, &current)) {
    return 2;
  }
  if (baseline.scale != current.scale) {
    std::fprintf(stderr,
                 "bench_diff: ARSP_BENCH_SCALE mismatch (baseline %g, "
                 "current %g) — rerun with the baseline's scale\n",
                 baseline.scale, current.scale);
    return 2;
  }
  if (baseline.arch != current.arch) {
    std::fprintf(stderr,
                 "bench_diff: note: kernel arch differs (baseline %s, "
                 "current %s); timing is calibration-normalized and "
                 "counters are arch-independent, so the gate still runs\n",
                 baseline.arch.c_str(), current.arch.c_str());
  }

  const auto base_calib = baseline.entries.find(kCalibration);
  const auto cur_calib = current.entries.find(kCalibration);
  if (base_calib == baseline.entries.end() ||
      cur_calib == current.entries.end() ||
      base_calib->second.ns_per_op <= 0.0 ||
      cur_calib->second.ns_per_op <= 0.0) {
    std::fprintf(stderr,
                 "bench_diff: both files need a positive %s entry for "
                 "normalization\n",
                 kCalibration);
    return 2;
  }

  int failures = 0;
  for (const auto& [name, base] : baseline.entries) {
    if (name == kCalibration) continue;
    const auto it = current.entries.find(name);
    if (it == current.entries.end()) {
      std::fprintf(stderr, "FAIL %s: present in baseline, missing from "
                   "current export (bench bitrot?)\n", name.c_str());
      ++failures;
      continue;
    }
    const Entry& cur = it->second;
    // Counter gates. "_ns"-suffixed counters are self-measured timings
    // (normalized like ns/op); "_info"-suffixed counters are ungated
    // observations; everything else is deterministic work and must match
    // exactly.
    for (const auto& [counter, base_value] : base.counters) {
      const auto cit = cur.counters.find(counter);
      if (cit == cur.counters.end()) {
        std::fprintf(stderr, "FAIL %s: counter %s missing from current\n",
                     name.c_str(), counter.c_str());
        ++failures;
        continue;
      }
      const bool is_info =
          counter.size() > 5 &&
          counter.compare(counter.size() - 5, 5, "_info") == 0;
      if (is_info) {
        std::printf("info %s/%s: %.17g -> %.17g (ungated)\n", name.c_str(),
                    counter.c_str(), base_value, cit->second);
        continue;
      }
      const bool is_timing =
          counter.size() > 3 &&
          counter.compare(counter.size() - 3, 3, "_ns") == 0;
      if (is_timing) {
        if (base_value <= 0.0 || cit->second <= 0.0) continue;
        const double base_ratio = base_value / base_calib->second.ns_per_op;
        const double cur_ratio = cit->second / cur_calib->second.ns_per_op;
        const double delta_pct = (cur_ratio / base_ratio - 1.0) * 100.0;
        if (delta_pct > max_regression_pct) {
          std::fprintf(stderr,
                       "FAIL %s: counter %s +%.1f%% normalized time "
                       "(limit +%.1f%%)\n",
                       name.c_str(), counter.c_str(), delta_pct,
                       max_regression_pct);
          ++failures;
        } else {
          std::printf("ok   %s/%s: %+.1f%%\n", name.c_str(), counter.c_str(),
                      delta_pct);
        }
      } else if (cit->second != base_value) {
        std::fprintf(stderr,
                     "FAIL %s: counter %s changed (%.17g -> %.17g) — "
                     "deterministic work drifted\n",
                     name.c_str(), counter.c_str(), base_value, cit->second);
        ++failures;
      }
    }
    // Timing gate on calibration-normalized ns/op.
    if (base.ns_per_op > 0.0 && cur.ns_per_op > 0.0) {
      const double base_ratio = base.ns_per_op / base_calib->second.ns_per_op;
      const double cur_ratio = cur.ns_per_op / cur_calib->second.ns_per_op;
      const double delta_pct = (cur_ratio / base_ratio - 1.0) * 100.0;
      if (delta_pct > max_regression_pct) {
        std::fprintf(stderr,
                     "FAIL %s: +%.1f%% normalized time (limit +%.1f%%)\n",
                     name.c_str(), delta_pct, max_regression_pct);
        ++failures;
      } else {
        std::printf("ok   %s: %+.1f%%\n", name.c_str(), delta_pct);
      }
    }
  }
  for (const auto& [name, entry] : current.entries) {
    (void)entry;
    if (baseline.entries.find(name) == baseline.entries.end()) {
      std::printf("new  %s (not in baseline)\n", name.c_str());
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "bench_diff: %d failure(s) vs %s\n", failures,
                 baseline_path);
    return 1;
  }
  std::printf("bench_diff: no regressions vs %s\n", baseline_path);
  return 0;
}
