// Copyright 2026 The ARSP Authors.
//
// arsp_loadgen — a multi-connection load generator for arspd (plain or
// coordinator). Each connection is one closed-loop worker: send a query,
// await the reply, repeat until the deadline. --target-qps switches to an
// open loop where workers pace themselves to a fleet-wide arrival rate, so
// overload behavior (the typed RETRY_LATER reply) can be driven
// deliberately rather than emerging from connection count.
//
// Usage:
//   arsp_loadgen --connect host:port --name NAME --constraints wr:...
//                [--load gen:SPEC] [--connections N] [--duration S]
//                [--topk K] [--threshold P] [--target-qps F] [--cache]
//                [--threads-per-query N] [--json PATH]
//
// Prints one summary line per run:
//   loadgen: <req> ok, <n> retry-later, <n> errors in <s>s  |  <qps> QPS,
//   p50/p95/p99/p99.9 = a/b/c/d ms
// and exits 0 iff no hard errors occurred (RETRY_LATER is not an error —
// counting it is the point).
//
// --json PATH writes the run in the same arsp-bench-v1 shape bench --json
// exports (header object, then one entry per metric with ns_per_op +
// counters), so tools/bench_diff can gate load-test latency regressions
// exactly like microbenchmark ones.
//
// RETRY_LATER handling: the worker honors the server's backoff hint (sleeps
// retry-after, bounded) and keeps going, so a run against an
// admission-limited daemon measures the *admitted* throughput.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/percentile.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/simd/kernels.h"
#include "tools/cli_args.h"

namespace {

using namespace arsp;
using Clock = std::chrono::steady_clock;

struct LoadgenConfig {
  std::string host;
  int port = 0;
  std::string name;             // dataset to query (required)
  std::string constraint_spec;  // required
  std::string load_spec;        // optional gen:SPEC to LOAD first
  std::string solver = "auto";
  int connections = 4;
  double duration_s = 5.0;
  int topk = -1;                // >= 0 selects top-k queries
  double threshold = -1.0;      // >= 0 selects p-threshold queries
  double target_qps = 0.0;      // 0 = closed loop
  bool use_cache = false;       // repeat queries would all hit the cache
  /// --threads-per-query N (N >= 2): each worker alternates serial
  /// (parallelism=1) and parallel (parallelism=N) requests and the summary
  /// reports the coordinator-side p50/p95 of each mode separately, so the
  /// intra-query speedup is measurable under service load. 0 = off (every
  /// request leaves parallelism to the daemon's policy).
  int threads_per_query = 0;
  std::string json_out;  ///< --json PATH: arsp-bench-v1 export (empty = off)
};

struct WorkerResult {
  std::vector<double> latencies_ms;
  // Per-mode latencies, filled only under --threads-per-query (each worker
  // alternates modes, so both buckets see the same arrival pattern).
  std::vector<double> serial_ms;
  std::vector<double> parallel_ms;
  int64_t ok = 0;
  int64_t retry_later = 0;
  int64_t errors = 0;
  std::string first_error;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: arsp_loadgen --connect host:port --name NAME\n"
      "                    --constraints wr:l1,h1[,...]|rank:c\n"
      "                    [--load gen:SPEC] [--connections N]\n"
      "                    [--duration S] [--topk K] [--threshold P]\n"
      "                    [--target-qps F] [--solver NAME] [--cache]\n"
      "                    [--threads-per-query N] [--json PATH]\n"
      "--load registers NAME from a generator spec before the run\n"
      "(e.g. --load gen:iip:n=500,seed=1). --target-qps paces an open\n"
      "loop across all connections; default is closed-loop. --cache\n"
      "allows result-cache hits (off by default: loadgen measures solve\n"
      "throughput, and identical queries would otherwise all hit).\n"
      "--threads-per-query N (>= 2) alternates serial and N-worker\n"
      "requests per connection and reports a per-mode p50/p95 split.\n"
      "--json PATH exports the run in the arsp-bench-v1 shape for\n"
      "tools/bench_diff.\n");
}

net::QueryRequestWire MakeQuery(const LoadgenConfig& config) {
  net::QueryRequestWire request;
  request.dataset = config.name;
  request.constraint_spec = config.constraint_spec;
  request.solver = config.solver;
  request.use_cache = config.use_cache;
  if (config.topk >= 0) {
    request.derived_kind = net::WireDerivedKind::kTopKObjects;
    request.k = config.topk;
  } else if (config.threshold >= 0.0) {
    request.derived_kind = net::WireDerivedKind::kObjectsAboveThreshold;
    request.threshold = config.threshold;
  } else {
    request.derived_kind = net::WireDerivedKind::kNone;
  }
  return request;
}

void RunWorker(const LoadgenConfig& config, Clock::time_point deadline,
               double per_worker_interval_s, WorkerResult* out) {
  auto client = net::ArspClient::Connect(config.host, config.port);
  if (!client.ok()) {
    out->errors = 1;
    out->first_error = client.status().ToString();
    return;
  }
  net::QueryRequestWire serial_request = MakeQuery(config);
  net::QueryRequestWire parallel_request = serial_request;
  const bool split_modes = config.threads_per_query >= 2;
  if (split_modes) {
    serial_request.parallelism = 1;
    parallel_request.parallelism = config.threads_per_query;
  }
  int64_t sent = 0;
  Clock::time_point next_send = Clock::now();
  while (Clock::now() < deadline) {
    if (per_worker_interval_s > 0.0) {
      // Open loop: hold the fleet-wide arrival rate even when replies lag.
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(per_worker_interval_s));
      if (Clock::now() >= deadline) break;
    }
    const bool parallel_mode = split_modes && (sent++ % 2 == 1);
    const net::QueryRequestWire& request =
        parallel_mode ? parallel_request : serial_request;
    const Clock::time_point begin = Clock::now();
    auto response = client->Query(request);
    const double millis =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();
    if (response.ok()) {
      ++out->ok;
      out->latencies_ms.push_back(millis);
      if (split_modes) {
        (parallel_mode ? out->parallel_ms : out->serial_ms)
            .push_back(millis);
      }
    } else if (response.status().code() == StatusCode::kUnavailable) {
      // The typed overload reply. Honor the hint (bounded) and keep going.
      ++out->retry_later;
      if (per_worker_interval_s <= 0.0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(250, 1 + out->retry_later)));
      }
    } else {
      ++out->errors;
      if (out->first_error.empty()) {
        out->first_error = response.status().ToString();
      }
      if (!client->connected()) break;
    }
  }
}

// %.17g round-trips doubles exactly — the same rendering bench_util's
// export uses, so bench_diff parses both identically.
std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double MeanMs(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

// bench_diff refuses exports without the shared BM_Calibrate_Xorshift64
// entry it normalizes by. Time the identical serially dependent xorshift64
// chain the bench_* binaries register (the compiler cannot vectorize or
// reassociate it, so ns/op tracks scalar core speed), min over the outer
// reps like bench_util's "_ns" collapse.
double CalibrateXorshiftNs() {
  uint64_t x = 88172645463325252ull;
  double best = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < (1 << 16); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ns < best) best = ns;
  }
  volatile uint64_t sink = x;  // keep the chain observable
  (void)sink;
  return best;
}

// --json: the run as an arsp-bench-v1 export. One "loadgen/query" entry
// whose ns_per_op is the mean ok-request latency (the statistic bench_diff
// gates on), with throughput and the tail percentiles as counters; under
// --threads-per-query the per-mode splits become their own entries. A
// load-test latency regression then fails CI through the exact pipeline a
// kernel regression does.
bool WriteBenchJson(const LoadgenConfig& config, WorkerResult* total,
                    double elapsed_s, double qps,
                    const std::vector<double>& p) {
  std::ofstream out(config.json_out);
  if (!out) {
    std::fprintf(stderr, "loadgen: cannot write --json file %s\n",
                 config.json_out.c_str());
    return false;
  }
  const char* rev = std::getenv("ARSP_GIT_REV");
  out << "{\"schema\":\"arsp-bench-v1\",\"arch\":\"" << simd::ActiveArchName()
      << "\",\"scale\":1,\"git_rev\":\"" << (rev != nullptr ? rev : "unknown")
      << "\"}\n";
  auto entry = [&out](const std::string& name, double mean_ms,
                      int64_t iterations,
                      const std::vector<std::pair<std::string, double>>&
                          counters) {
    out << "{\"name\":\"" << name
        << "\",\"ns_per_op\":" << JsonNumber(mean_ms * 1e6)
        << ",\"iterations\":" << iterations << ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << key << "\":" << JsonNumber(value);
    }
    out << "}}\n";
  };
  entry("BM_Calibrate_Xorshift64", CalibrateXorshiftNs() * 1e-6, 200, {});
  entry("loadgen/query", MeanMs(total->latencies_ms), total->ok,
        {{"qps", qps},
         {"p50_ms", p[0]},
         {"p95_ms", p[1]},
         {"p99_ms", p[2]},
         {"p999_ms", p[3]},
         {"retry_later", static_cast<double>(total->retry_later)},
         {"errors", static_cast<double>(total->errors)},
         {"connections", static_cast<double>(config.connections)},
         {"duration_s", elapsed_s}});
  if (config.threads_per_query >= 2) {
    const std::vector<double> qs = {0.50, 0.95, 0.99, 0.999};
    const std::vector<double> ps = Percentiles(&total->serial_ms, qs);
    const std::vector<double> pp = Percentiles(&total->parallel_ms, qs);
    entry("loadgen/serial", MeanMs(total->serial_ms),
          static_cast<int64_t>(total->serial_ms.size()),
          {{"p50_ms", ps[0]},
           {"p95_ms", ps[1]},
           {"p99_ms", ps[2]},
           {"p999_ms", ps[3]}});
    entry("loadgen/parallel", MeanMs(total->parallel_ms),
          static_cast<int64_t>(total->parallel_ms.size()),
          {{"p50_ms", pp[0]},
           {"p95_ms", pp[1]},
           {"p99_ms", pp[2]},
           {"p999_ms", pp[3]},
           {"threads_per_query",
            static_cast<double>(config.threads_per_query)}});
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  bool have_connect = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      PrintUsage();
      return 0;
    } else if (flag == "--cache") {
      config.use_cache = true;
      continue;
    } else if ((v = next()) == nullptr) {
      return PrintUsage(), 2;
    } else if (flag == "--connect") {
      auto parsed = net::ParseHostPort(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --connect '%s'\n", v);
        return PrintUsage(), 2;
      }
      config.host = parsed->first;
      config.port = parsed->second;
      have_connect = true;
    } else if (flag == "--name") {
      config.name = v;
    } else if (flag == "--constraints") {
      config.constraint_spec = v;
    } else if (flag == "--load") {
      if (std::strncmp(v, "gen:", 4) != 0) {
        std::fprintf(stderr, "--load takes gen:SPEC, got '%s'\n", v);
        return PrintUsage(), 2;
      }
      config.load_spec = v + 4;
    } else if (flag == "--solver") {
      config.solver = v;
    } else if (flag == "--connections") {
      if (!cli::internal::ParseIntStrict(v, &config.connections) ||
          config.connections < 1) {
        std::fprintf(stderr, "bad --connections '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--duration") {
      if (!cli::internal::ParseDoubleStrict(v, &config.duration_s) ||
          config.duration_s <= 0) {
        std::fprintf(stderr, "bad --duration '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--topk") {
      if (!cli::internal::ParseIntStrict(v, &config.topk) ||
          config.topk < 0) {
        std::fprintf(stderr, "bad --topk '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--threshold") {
      if (!cli::internal::ParseDoubleStrict(v, &config.threshold) ||
          config.threshold < 0 || config.threshold > 1) {
        std::fprintf(stderr, "bad --threshold '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--target-qps") {
      if (!cli::internal::ParseDoubleStrict(v, &config.target_qps) ||
          config.target_qps < 0) {
        std::fprintf(stderr, "bad --target-qps '%s'\n", v);
        return PrintUsage(), 2;
      }
    } else if (flag == "--threads-per-query") {
      if (!cli::internal::ParseIntStrict(v, &config.threads_per_query) ||
          config.threads_per_query < 2) {
        std::fprintf(stderr, "--threads-per-query needs an integer >= 2\n");
        return PrintUsage(), 2;
      }
    } else if (flag == "--json") {
      config.json_out = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return PrintUsage(), 2;
    }
  }
  if (!have_connect || config.name.empty() || config.constraint_spec.empty()) {
    std::fprintf(stderr,
                 "--connect, --name, and --constraints are required\n");
    return PrintUsage(), 2;
  }
  if (config.topk >= 0 && config.threshold >= 0.0) {
    std::fprintf(stderr, "--topk and --threshold are mutually exclusive\n");
    return PrintUsage(), 2;
  }

  if (!config.load_spec.empty()) {
    auto client = net::ArspClient::Connect(config.host, config.port);
    if (!client.ok()) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    net::LoadDatasetRequest load;
    load.name = config.name;
    load.source = net::LoadSource::kGenerator;
    load.payload = config.load_spec;
    auto loaded = client->LoadDataset(load);
    if (!loaded.ok()) {
      std::fprintf(stderr, "loadgen: load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("loadgen loaded %s: %d objects / %d instances, d=%d\n",
                loaded->name.c_str(), loaded->num_objects,
                loaded->num_instances, loaded->dim);
  }

  const double per_worker_interval_s =
      config.target_qps > 0.0
          ? static_cast<double>(config.connections) / config.target_qps
          : 0.0;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.duration_s));

  std::vector<WorkerResult> results(
      static_cast<size_t>(config.connections));
  std::vector<std::thread> workers;
  workers.reserve(results.size());
  for (WorkerResult& result : results) {
    workers.emplace_back([&config, deadline, per_worker_interval_s,
                          &result] {
      RunWorker(config, deadline, per_worker_interval_s, &result);
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  for (WorkerResult& result : results) {
    total.ok += result.ok;
    total.retry_later += result.retry_later;
    total.errors += result.errors;
    if (total.first_error.empty()) total.first_error = result.first_error;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              result.latencies_ms.begin(),
                              result.latencies_ms.end());
    total.serial_ms.insert(total.serial_ms.end(), result.serial_ms.begin(),
                           result.serial_ms.end());
    total.parallel_ms.insert(total.parallel_ms.end(),
                             result.parallel_ms.begin(),
                             result.parallel_ms.end());
  }
  const std::vector<double> p =
      Percentiles(&total.latencies_ms, {0.50, 0.95, 0.99, 0.999});
  const double qps =
      elapsed_s > 0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;
  std::printf(
      "loadgen: %lld ok, %lld retry-later, %lld errors in %.1fs  |  "
      "%.1f QPS, p50/p95/p99/p99.9 = %.2f/%.2f/%.2f/%.2f ms\n",
      static_cast<long long>(total.ok),
      static_cast<long long>(total.retry_later),
      static_cast<long long>(total.errors), elapsed_s, qps, p[0], p[1], p[2],
      p[3]);
  if (config.threads_per_query >= 2) {
    // Coordinator-side view of the intra-query speedup: both modes ran
    // interleaved on every connection, so the split is load-matched.
    const std::vector<double> ps =
        Percentiles(&total.serial_ms, {0.50, 0.95});
    const std::vector<double> pp =
        Percentiles(&total.parallel_ms, {0.50, 0.95});
    std::printf(
        "loadgen: serial p50/p95 = %.2f/%.2f ms  |  parallel(x%d) "
        "p50/p95 = %.2f/%.2f ms (%zu/%zu samples)\n",
        ps[0], ps[1], config.threads_per_query, pp[0], pp[1],
        total.serial_ms.size(), total.parallel_ms.size());
  }
  if (!config.json_out.empty()) {
    if (!WriteBenchJson(config, &total, elapsed_s, qps, p)) return 1;
    std::printf("loadgen: wrote %s\n", config.json_out.c_str());
  }
  if (total.errors > 0) {
    std::fprintf(stderr, "loadgen: first error: %s\n",
                 total.first_error.c_str());
    return 1;
  }
  return 0;
}
